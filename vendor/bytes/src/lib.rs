//! Offline stand-in for the `bytes` crate.
//!
//! This workspace builds in environments without crates.io access, so the
//! handful of registry dependencies are vendored as small API-compatible
//! shims under `vendor/`. Only the surface the workspace actually uses is
//! implemented: [`Bytes`] as a cheaply cloneable, sliceable, immutable
//! byte buffer backed by `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones share the same backing allocation; [`Bytes::slice`] produces a
/// zero-copy view. Unlike the real crate there is no `from_static`
/// zero-copy path — static data is copied once on construction, which is
/// irrelevant for the test-scale payloads used here.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Create from a static slice (copies; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed");
        assert!(end <= len, "slice out of bounds: {end} > {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, *b"hello");
        assert_eq!(&a[..], b"hello");
    }

    #[test]
    fn slices_share_storage() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(a.slice(..).len(), 6);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
