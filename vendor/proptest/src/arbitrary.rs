//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform over the type's whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn covers_byte_domain() {
        let mut rng = new_rng(12);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[any::<u8>().generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "u8 domain not covered");
    }
}
