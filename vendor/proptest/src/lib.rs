//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of proptest this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `boxed`, integer-range and regex-literal strategies,
//! tuples, [`collection::vec`], [`option::of`], `any::<T>()`, the
//! `proptest!`, `prop_oneof!`, and `prop_assert*!` macros, and a
//! deterministic per-case RNG.
//!
//! Differences from the real crate, deliberate for an offline shim:
//! * **No shrinking.** A failing case reports its seed and inputs but is
//!   not minimized.
//! * Regex strategies support only the subset appearing in this repo:
//!   character classes with ranges plus `{n}` / `{n,m}` quantifiers.
//! * Failure messages include the per-case RNG seed so a case can be
//!   replayed with `PROPTEST_SEED`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob import used by test modules.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            let msg = format!($($fmt)*);
            $crate::prop_assert!(false, "assertion failed: `{:?}` != `{:?}`: {}", l, r, msg);
        }
    }};
}

/// Fail the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Choose among strategies, optionally weighted (`w => strat`). All arms
/// must share one value type; each arm is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::effective_cases(config.cases);
            let base = $crate::test_runner::base_seed(stringify!($name));
            for case in 0..cases {
                let case_seed = $crate::test_runner::case_seed(base, case);
                let mut rng = $crate::test_runner::new_rng(case_seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed (replay with PROPTEST_SEED={}): {}\ninputs: {}",
                        case + 1,
                        cases,
                        case_seed,
                        e,
                        concat!($(stringify!($arg), " "),+),
                    );
                }
            }
        }
    )*};
}
