//! Tiny regex-to-generator: supports the pattern subset used by this
//! workspace's tests — character classes with ranges (`[a-z/]`,
//! `[ -~]`), literal characters, and `{n}` / `{min,max}` quantifiers.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    /// Flattened set of candidate characters from a `[...]` class.
    Class(Vec<char>),
    /// A single literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
            i = close + 1;
            Atom::Class(set)
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            Atom::Literal(chars[i - 1])
        } else {
            i += 1;
            Atom::Literal(chars[i - 1])
        };

        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier min"),
                    hi.trim().parse().expect("bad quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "quantifier min > max in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generate a string matching `pattern` (within the supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let reps = rng.gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            match &piece.atom {
                Atom::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn class_with_range_and_bounded_repeat() {
        let mut rng = new_rng(5);
        for _ in 0..500 {
            let s = generate_matching("[a-z/]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '/'));
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = new_rng(6);
        for _ in 0..500 {
            let s = generate_matching("[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn bare_class_emits_one_char() {
        let mut rng = new_rng(7);
        for _ in 0..200 {
            let s = generate_matching("[a-c]", &mut rng);
            assert_eq!(s.len(), 1);
            assert!(matches!(s.chars().next().unwrap(), 'a'..='c'));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = new_rng(8);
        let s = generate_matching("ab[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
