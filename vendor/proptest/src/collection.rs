//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        SizeRange { min, max }
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)` — size may be an exact
/// `usize`, a `Range`, or a `RangeInclusive`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn lengths_honor_all_size_forms() {
        let mut rng = new_rng(4);
        for _ in 0..200 {
            assert_eq!(vec(0u8..10, 3).generate(&mut rng).len(), 3);
            let v = vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            let w = vec(0u8..10, 2..=6).generate(&mut rng);
            assert!((2..=6).contains(&w.len()));
        }
    }
}
