//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `Some(value)` or `None` (see [`of`]).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Real proptest defaults to Some with high probability; an even
        // split keeps both arms well-exercised at our case counts.
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `proptest::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn emits_both_variants() {
        let s = of(0u32..100);
        let mut rng = new_rng(2);
        let draws: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_some()));
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().flatten().all(|v| *v < 100));
    }
}
