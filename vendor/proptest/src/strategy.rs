//! The [`Strategy`] trait, combinators, and impls for ranges, tuples,
//! and regex string literals.

use crate::test_runner::TestRng;
use rand::Rng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// `generate` produces a finished value directly, and a failing case is
/// replayed by seed rather than minimized.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (for dependent inputs).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Reject values failing `keep`, retrying with fresh draws.
    fn prop_filter<F>(self, reason: impl Into<String>, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            keep,
        }
    }

    /// Type-erase into a clonable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies — the engine behind
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights need not sum to
    /// anything in particular but must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: String,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

impl<T: rand::SampleUniform + 'static> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String literals are regex strategies producing matching `String`s
/// (subset — see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = new_rng(9);
        for _ in 0..1_000 {
            let (a, b, c) = (1u64..30, 0usize..=4, -3i32..3).generate(&mut rng);
            assert!((1..30).contains(&a));
            assert!(b <= 4);
            assert!((-3..3).contains(&c));
        }
    }

    #[test]
    fn union_respects_zero_weight_paths() {
        let u = Union::new(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        let mut rng = new_rng(3);
        for _ in 0..100 {
            assert_eq!(u.generate(&mut rng), 2);
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = new_rng(11);
        for _ in 0..200 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let s = (2usize..=5).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)));
        let mut rng = new_rng(17);
        for _ in 0..500 {
            let (n, i) = s.generate(&mut rng);
            assert!(i < n);
        }
    }

    #[test]
    fn boxed_is_clonable_and_reusable() {
        let b = (1u8..=6).prop_map(|v| v * 2).boxed();
        let b2 = b.clone();
        let mut rng = new_rng(1);
        for _ in 0..50 {
            let v = b.generate(&mut rng);
            assert!(v % 2 == 0 && (2..=12).contains(&v));
            let w = b2.generate(&mut rng);
            assert!(w % 2 == 0 && (2..=12).contains(&w));
        }
    }
}
