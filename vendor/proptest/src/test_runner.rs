//! Deterministic case driving: config, per-case seeds, and the error
//! type returned by `prop_assert*!`.

use std::fmt;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::SmallRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed assertion inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Cases to actually run: `PROPTEST_CASES` overrides the config, and a
/// pinned `PROPTEST_SEED` replays exactly one case.
pub fn effective_cases(configured: u32) -> u32 {
    if std::env::var("PROPTEST_SEED").is_ok() {
        return 1;
    }
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// Stable base seed for a property, derived from its name (FNV-1a).
pub fn base_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Seed for one case; `PROPTEST_SEED` pins it for replay.
pub fn case_seed(base: u64, case: u32) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = v.parse::<u64>() {
            return seed;
        }
    }
    // SplitMix64 step over (base + case) decorrelates adjacent cases.
    let mut z = base
        .wrapping_add(case as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the per-case RNG.
pub fn new_rng(seed: u64) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed)
}
