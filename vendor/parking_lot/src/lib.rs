//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! [`Mutex`] and [`Condvar`] with parking_lot's ergonomics — `lock()`
//! returns the guard directly, poisoning is transparently ignored —
//! implemented over `std::sync`. Performance characteristics differ from
//! the real crate but the workspace only needs correctness.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock()` never returns a poison error
/// (a panicked holder simply releases the lock, like parking_lot).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_for can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let res = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!res.timed_out(), "missed wakeup");
        }
        t.join().unwrap();
    }
}
