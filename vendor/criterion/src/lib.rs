//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros with a simple
//! calibrated-loop timer. Numbers are printed per benchmark; there is no
//! statistical analysis, plotting, or baseline comparison — enough for
//! `cargo bench` to build, run, and report plausible per-iteration times.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, auto-scaling the iteration count to ~50 ms of
    /// wall-clock (capped at 1M iterations).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that runs long
        // enough to be measurable.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || n >= 1_000_000 {
                self.total = elapsed;
                self.iters = n;
                return;
            }
            n = (n * 4).min(1_000_000);
        }
    }
}

fn report(name: &str, total: Duration, iters: u64) {
    let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    let (value, unit) = if per_iter < 1_000.0 {
        (per_iter, "ns")
    } else if per_iter < 1_000_000.0 {
        (per_iter / 1_000.0, "µs")
    } else {
        (per_iter / 1_000_000.0, "ms")
    };
    println!("bench {name:<50} {value:>10.2} {unit}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim auto-scales instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.total, b.iters);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.total, b.iters);
        self
    }

    /// Finish the group (no-op beyond matching the real API).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, b.total, b.iters);
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
