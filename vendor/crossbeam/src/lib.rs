//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` and the
//! receive error types are provided, implemented over `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer channels (single-consumer in this shim — the
    //! workspace never clones receivers).

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))?;
            self.depth.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        /// Messages currently queued (approximate under concurrency).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True when no messages are queued (approximate).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let v = self.inner.recv().map_err(|_| RecvError)?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let v = self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let v = self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Messages currently queued (approximate under concurrency).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True when no messages are queued (approximate).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drain-everything iterator (blocks like `recv` between items).
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter().inspect(|_| {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            })
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                depth: Arc::clone(&depth),
            },
            Receiver { inner: rx, depth },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            let tx2 = tx.clone();
            tx2.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert!(rx.is_empty());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn depth_tracks_queue_occupancy() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            assert_eq!(tx.len(), 5);
            assert_eq!(rx.iter().take(3).count(), 3);
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
            assert_eq!(rx.len(), 1);
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
