//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides [`rngs::SmallRng`] (an xoshiro256++ generator), the
//! [`SeedableRng`] and [`Rng`] traits, and uniform range sampling for the
//! integer and float types this workspace draws. Determinism is the only
//! property the workspace relies on: every simulator run is keyed by a
//! `u64` seed and must replay bit-for-bit.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

mod splitmix {
    pub fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleUniform` far enough for
/// `Rng::gen_range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The largest value strictly below `high` (for half-open ranges).
    fn prev(high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1) as u128;
                if span == 0 {
                    // Full u128-wide span cannot occur for <=64-bit types
                    // except [MIN, MAX]; fall back to raw bits.
                    return rng.next_u64() as $t;
                }
                // Multiply-shift rejection-free mapping is fine here: the
                // simulator needs determinism, not cryptographic-grade
                // uniformity, and spans are tiny relative to 2^64.
                let r = rng.next_u64() as u128;
                (low as u128).wrapping_add((r * span) >> 64) as $t
            }
            fn prev(high: Self) -> Self {
                high - 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn prev(high: Self) -> Self {
        // Half-open float ranges: the unit sampler above never returns
        // exactly 1.0 for high > low, so treat the bound as-is.
        high
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
    fn prev(high: Self) -> Self {
        high
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, T::prev(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm the real `SmallRng` uses on 64-bit
    /// platforms. Small state, fast, and deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix::next(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = SmallRng::seed_from_u64(42);
        let other: Vec<u64> = (0..8).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let neg = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "p=0.3 gave {heads}/10000");
    }
}
