//! The quorum-replication scenario (§IV-B): a replicated register with
//! `Nw + Nr > N` quorums expressed as read/write stability predicates,
//! on the CloudLab topology of Fig. 3.
//!
//! Run with: `cargo run --example quorum_register`

use stabilizer::quorum::{build_quorum, cloudlab_cfg, QuorumSetup};
use stabilizer_netsim::{NetTopology, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = QuorumSetup::fig3();
    println!("write predicate: {}", setup.write_predicate());
    println!("read  predicate: {}", setup.read_predicate());
    assert!(setup.overlaps(), "Nr + Nw must exceed N");

    let cfg = cloudlab_cfg();
    let mut sim = build_quorum(&cfg, NetTopology::cloudlab_table2(), setup.clone(), 3)?;
    for i in 0..5 {
        sim.actor_mut(i).set_value_size(4096);
    }

    // The writer (Utah2) commits three versions.
    let mut last = 0;
    for _ in 0..3 {
        last = sim.with_ctx(setup.writer, |a, ctx| a.write_in(ctx, 4096))?;
    }
    sim.run_until_idle();
    let committed = sim
        .actor(setup.writer)
        .write_committed_at(last)
        .expect("write quorum reached");
    println!("version {last} write-committed at t={committed} (2nd-fastest member acked)");

    // A non-concurrent read from Utah1 must return it.
    let deadline = sim.now() + SimDuration::from_secs(10);
    sim.with_ctx(setup.reader, |a, ctx| a.chase_version(ctx, last, deadline));
    sim.run_until(deadline);
    let read = sim
        .actor(setup.reader)
        .reads
        .first()
        .expect("read completed");
    println!(
        "first read after commit returned version {} at t={} (overlap guarantee: >= {last})",
        read.version, read.at
    );
    assert!(read.version >= last);
    Ok(())
}
