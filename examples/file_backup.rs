//! The Dropbox-like backup scenario (§V-A): store files in the
//! geo-replicated K/V store with user-selected durability, and show the
//! §IV-A topology-aware predicate that traditional mechanisms cannot
//! express ("fully replicated in my availability zone AND on at least
//! one remote site").
//!
//! Run with: `cargo run --example file_backup`

use bytes::Bytes;
use stabilizer::kvstore::build_kv_cluster;
use stabilizer::{ClusterConfig, NodeId};
use stabilizer_netsim::NetTopology;

const CHUNK: usize = 8192;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ClusterConfig::parse(
        "
        az North_California n1 n2
        az North_Virginia   n3 n4 n5 n6
        az Oregon           n7
        az Ohio             n8

        predicate MajorityRegions KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
    ",
    )?;
    let mut sim = build_kv_cluster(&cfg, NetTopology::ec2_fig2(), 7)?;

    // The §IV-A use case — "fully replicated within the sender's
    // availability zone AND on at least one remote site" — registered at
    // the primary only ($MYAZWNODES is relative to the registering node;
    // at a single-node AZ like Oregon the first MIN would be empty).
    sim.with_ctx(0, |kv, ctx| {
        kv.register_predicate_in(
            ctx,
            "AzPlusRemote",
            "MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
        )
    })?;

    // A 100 KiB "photo" uploaded at the North California primary.
    let photo: Vec<u8> = (0..100 * 1024).map(|i| (i * 31 % 251) as u8).collect();
    let mut last_seq = 0;
    for (i, chunk) in photo.chunks(CHUNK).enumerate() {
        last_seq = sim.with_ctx(0, |kv, ctx| {
            kv.put_in(
                ctx,
                &format!("photos/beach.jpg/{i}"),
                Bytes::copy_from_slice(chunk),
            )
        })?;
    }
    println!(
        "uploaded {} chunks; waiting for the chosen durability level...",
        last_seq
    );

    // Backup SLA 1: a majority of remote regions hold the file.
    let majority = sim.with_ctx(0, |kv, ctx| kv.waitfor_in(ctx, "MajorityRegions", last_seq))?;
    // Backup SLA 2: survive the primary's data center *and* the region.
    let az_remote = sim.with_ctx(0, |kv, ctx| kv.waitfor_in(ctx, "AzPlusRemote", last_seq))?;

    sim.run_until_idle();
    for (name, token) in [("MajorityRegions", majority), ("AzPlusRemote", az_remote)] {
        let (at, _) = sim
            .actor(0)
            .completed_waits()
            .iter()
            .find(|(_, t)| *t == token)
            .expect("backup completed");
        println!("{name:>16}: durable after {:.2} ms", at.as_millis_f64());
    }

    // Any mirror serves reads; verify the file survives byte-for-byte at
    // Ohio (n8), the far side of the continent.
    let mut restored = Vec::new();
    for i in 0..photo.chunks(CHUNK).len() {
        restored.extend_from_slice(
            &sim.actor(7)
                .get(NodeId(0), &format!("photos/beach.jpg/{i}"))
                .expect("chunk mirrored"),
        );
    }
    assert_eq!(restored, photo);
    println!(
        "restored {} bytes from the Ohio mirror — contents identical",
        restored.len()
    );
    Ok(())
}
