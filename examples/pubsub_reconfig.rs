//! The dynamic-reconfiguration scenario (§VI-D): a reliable-broadcast
//! pub/sub publisher that drops the slowest site from its stability
//! predicate while that site has no subscribers, cutting end-to-end
//! latency — then restores it when the subscriber returns.
//!
//! Run with: `cargo run --example pubsub_reconfig`

use stabilizer::pubsub::{build_brokers, pubsub_cfg, PublishLoad};
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = pubsub_cfg();
    let mut sim = build_brokers(&cfg, NetTopology::cloudlab_table2(), 11)?;
    for i in 1..5 {
        sim.actor_mut(i).subscribe();
    }

    // Track "every site with subscribers has the message".
    sim.with_ctx(0, |b, ctx| {
        b.set_predicate(ctx, "track", "MIN($ALLWNODES-$MYWNODE)", false)
    })?;
    sim.with_ctx(0, |b, ctx| {
        b.start_publishing(
            ctx,
            PublishLoad {
                count: 800,
                interval: SimDuration::from_millis(12),
                size: 8192,
            },
        )
    });

    // After 3 seconds the Clemson subscriber leaves: the broker switches
    // to a three-sites predicate and stops waiting for the slowest site.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    sim.actor_mut(3).unsubscribe();
    sim.with_ctx(0, |b, ctx| {
        b.set_predicate(ctx, "track", "KTH_MAX(3, $ALLWNODES-$MYWNODE)", true)
    })?;
    println!("t=3s: Clemson unsubscribed; predicate narrowed to three sites");

    // At 6 seconds it comes back.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));
    sim.actor_mut(3).subscribe();
    sim.with_ctx(0, |b, ctx| {
        b.set_predicate(ctx, "track", "MIN($ALLWNODES-$MYWNODE)", true)
    })?;
    println!("t=6s: Clemson re-subscribed; predicate widened to all sites");
    sim.run_until_idle();

    // Reconstruct per-message latency from the frontier log.
    let broker = sim.actor(0);
    let mut cover: Vec<Option<SimTime>> = vec![None; broker.send_times.len()];
    let mut done = 0usize;
    for (t, key, seq) in &broker.frontier_log {
        if key != "track" {
            continue;
        }
        while done < (*seq as usize).min(cover.len()) {
            cover[done] = Some(*t);
            done += 1;
        }
    }
    // Average latency per second of the run.
    let secs = 1 + broker
        .send_times
        .last()
        .map(|t| t.as_secs_f64() as usize)
        .unwrap_or(0);
    let mut buckets = vec![(0.0f64, 0u32); secs + 1];
    for (i, sent) in broker.send_times.iter().enumerate() {
        if let Some(Some(c)) = cover.get(i) {
            let b = sent.as_secs_f64() as usize;
            buckets[b].0 += c.since(*sent).as_millis_f64();
            buckets[b].1 += 1;
        }
    }
    println!("\nsecond  avg latency (ms)");
    for (sec, (sum, n)) in buckets.iter().enumerate() {
        if *n > 0 {
            println!("{sec:>6}  {:>8.2}", sum / *n as f64);
        }
    }
    println!("\nExpected shape: ~51 ms (Clemson-gated) in seconds 0-2 and 6+,");
    println!("dropping to ~48 ms (Massachusetts-gated) in seconds 3-5.");
    Ok(())
}
