//! Run a real three-node Stabilizer cluster over TCP on localhost: the
//! same protocol the simulator exercises, on actual sockets with the
//! blocking §III-D API (`publish`, `waitfor`,
//! `monitor_stability_frontier`, `change_predicate`).
//!
//! Run with: `cargo run --example real_cluster`

use bytes::Bytes;
use stabilizer::transport::spawn_local_cluster;
use stabilizer::{ClusterConfig, NodeId};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ClusterConfig::parse(
        "
        az East e1 e2
        az West w1
        predicate AllRemote MIN($ALLWNODES-$MYWNODE)
        predicate OneRemote MAX($ALLWNODES-$MYWNODE)
    ",
    )?;
    let cluster = spawn_local_cluster(&cfg)?;
    let publisher = cluster[0].handle();

    // A monitor lambda fires on every frontier advance (§III-D).
    publisher.monitor_stability_frontier(NodeId(0), "AllRemote", |u| {
        println!(
            "  monitor: AllRemote frontier -> {} (generation {})",
            u.seq, u.generation
        );
    });
    // A remote subscriber sees deliveries in order.
    cluster[2].handle().on_deliver(|origin, seq, payload| {
        println!(
            "  w1 delivered {origin}/{seq}: {:?}",
            std::str::from_utf8(payload).unwrap()
        );
    });

    for text in ["alpha", "bravo", "charlie"] {
        let seq = publisher.publish(Bytes::from(text.to_owned()), Duration::from_secs(1))?;
        println!("published {text:?} as seq {seq}");
    }
    let last = publisher.last_published();
    assert!(publisher.waitfor(NodeId(0), "AllRemote", last, Duration::from_secs(10))?);
    println!("all {last} messages fully replicated");

    // Swap the consistency model at runtime.
    publisher.change_predicate(NodeId(0), "OneRemote", "MIN($ALLWNODES-$MYWNODE)")?;
    println!("OneRemote strengthened to all-remotes at runtime");

    for node in &cluster {
        node.handle().shutdown();
    }
    Ok(())
}
