//! Quickstart: define a consistency model in the DSL, publish data, and
//! watch its stability frontier advance across a simulated WAN.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use stabilizer::core::sim_driver::build_cluster;
use stabilizer::{ClusterConfig, NodeId};
use stabilizer_netsim::NetTopology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the deployment: the paper's Fig. 2 topology — four AWS
    //    regions, eight data centers — plus three consistency models of
    //    increasing strength, written as stability-frontier predicates.
    let cfg = ClusterConfig::parse(
        "
        az North_California n1 n2
        az North_Virginia   n3 n4 n5 n6
        az Oregon           n7
        az Ohio             n8

        # 'Some remote node has a copy.'
        predicate OneWNode  MAX($ALLWNODES-$MYWNODE)
        # 'A majority of remote regions have a copy.'
        predicate MajorityRegions KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
        # 'Every node everywhere has a copy.'
        predicate AllWNodes MIN($ALLWNODES-$MYWNODE)
    ",
    )?;

    // 2. Boot the cluster on the emulated EC2 WAN (Table I link
    //    characteristics, deterministic virtual time).
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 42)?;

    // 3. Publish a record at the primary (n1). It is locally stable
    //    immediately; remote stability arrives with the WAN.
    let seq = sim.with_ctx(0, |node, ctx| {
        node.publish_in(ctx, Bytes::from_static(b"checkpoint #1"))
    })?;
    println!("published message {seq} at n1");

    // 4. Run the world and observe when each consistency model was
    //    satisfied — weaker models stabilize sooner.
    sim.run_until_idle();
    for key in ["OneWNode", "MajorityRegions", "AllWNodes"] {
        let at = sim
            .actor(0)
            .frontier_log
            .iter()
            .find(|(_, u)| u.key == key && u.seq >= seq)
            .map(|(t, _)| *t)
            .expect("predicate satisfied");
        println!("{key:>16} satisfied after {:.2} ms", at.as_millis_f64());
    }

    // 5. The application blocks on exactly the level it needs:
    let seq2 = sim.with_ctx(0, |node, ctx| {
        node.publish_in(ctx, Bytes::from_static(b"checkpoint #2"))
    })?;
    let token = sim.with_ctx(0, |node, ctx| {
        node.waitfor_in(ctx, NodeId(0), "MajorityRegions", seq2)
    })?;
    sim.run_until_idle();
    let (done_at, _) = sim
        .actor(0)
        .completed_waits
        .iter()
        .find(|(_, t)| *t == token)
        .expect("waitfor completed");
    println!("waitfor(MajorityRegions, {seq2}) completed at t={done_at}");
    Ok(())
}
