//! The paper's §I motivation, made concrete: one deployment, three
//! applications with different consistency/performance needs — a
//! banking ledger (stronger safety, tolerates latency), a shopping cart
//! (responsiveness first), and a backup service selling SLA tiers —
//! each expressed as a stability-frontier predicate over the same data
//! plane.
//!
//! Run with: `cargo run --example sla_tiers`

use bytes::Bytes;
use stabilizer::core::sim_driver::build_cluster;
use stabilizer::ClusterConfig;
use stabilizer_netsim::NetTopology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ClusterConfig::parse(
        "
        az North_California n1 n2
        az North_Virginia   n3 n4 n5 n6
        az Oregon           n7
        az Ohio             n8

        # Banking: every replica everywhere, at the *persisted* level.
        predicate Ledger MIN(($ALLWNODES-$MYWNODE).persisted)
        # Shopping cart: fire-and-forget responsiveness; any single copy.
        predicate Cart MAX($ALLWNODES-$MYWNODE)
        # Backup SLA bronze/silver/gold: one region / majority / all.
        predicate Bronze MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
        predicate Silver KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
        predicate Gold   MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
    ",
    )?;
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 3)?;
    let seq = sim.with_ctx(0, |n, ctx| {
        n.publish_in(ctx, Bytes::from_static(b"txn|cart|backup"))
    })?;
    sim.run_until_idle();

    println!("one write, five consistency contracts:\n");
    for key in ["Cart", "Bronze", "Silver", "Gold", "Ledger"] {
        let at = sim
            .actor(0)
            .frontier_log
            .iter()
            .find(|(_, u)| u.key == key && u.seq >= seq)
            .map(|(t, _)| t.as_millis_f64())
            .expect("satisfied");
        println!("  {key:>7}: confirmed after {at:7.2} ms");
    }
    println!("\nThe application picks the contract per operation — no");
    println!("system-wide consistency level to compromise on (§I).");
    Ok(())
}
