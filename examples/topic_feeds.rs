//! Multi-topic pub/sub (the paper's deferred extension, implemented):
//! brokers gossip subscriptions over their own Stabilizer streams, and
//! each publisher maintains a per-topic stability predicate over exactly
//! the sites that subscribe — so a topic with nearby subscribers
//! stabilizes fast while one with far subscribers waits only for them.
//!
//! Run with: `cargo run --example topic_feeds`

use bytes::Bytes;
use stabilizer::pubsub::{build_topic_brokers, pubsub_cfg};
use stabilizer_netsim::NetTopology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CloudLab sites: UT1(0) UT2(1) WI(2) CLEM(3) MA(4).
    let mut sim = build_topic_brokers(&pubsub_cfg(), NetTopology::cloudlab_table2(), 5)?;

    // "markets" interests the LAN neighbor; "alerts" interests everyone.
    sim.with_ctx(1, |b, ctx| b.subscribe_in(ctx, "markets"))?;
    for site in 1..5 {
        sim.with_ctx(site, |b, ctx| b.subscribe_in(ctx, "alerts"))?;
    }
    sim.run_until_idle(); // let subscriptions gossip

    let publisher = 0usize;
    println!(
        "subscribers(markets) = {:?}",
        sim.actor(publisher).subscribers("markets")
    );
    println!(
        "subscribers(alerts)  = {:?}",
        sim.actor(publisher).subscribers("alerts")
    );

    let m = sim.with_ctx(publisher, |b, ctx| {
        b.publish_in(ctx, "markets", Bytes::from_static(b"SPX 5000"))
    })?;
    let a = sim.with_ctx(publisher, |b, ctx| {
        b.publish_in(ctx, "alerts", Bytes::from_static(b"quake!"))
    })?;
    sim.run_until_idle();

    let p = sim.actor(publisher);
    for (topic, seq) in [("markets", m), ("alerts", a)] {
        let covered = p
            .frontier_log
            .iter()
            .find(|(_, t, s)| t == topic && *s >= seq)
            .map(|(at, _, _)| *at)
            .expect("topic stabilized");
        let sent = p.send_times[seq as usize - 1];
        println!(
            "{topic:>8}: all subscribers have it after {:.2} ms",
            covered.since(sent).as_millis_f64()
        );
    }
    println!("\nmarkets stabilizes in ~0.1 ms (LAN subscriber only);");
    println!("alerts waits ~51 ms for Clemson, its slowest subscriber.");
    Ok(())
}
