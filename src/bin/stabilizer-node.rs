//! `stabilizer-node` — run one WAN node of a real Stabilizer deployment
//! from the command line, with an interactive console for publishing and
//! inspecting stability frontiers.
//!
//! ```text
//! stabilizer-node <config-file> <my-node-name> <listen-addr> \
//!     [<peer-name>=<addr> ...] [--serve <addr>]
//! ```
//!
//! Example (three shells on one machine):
//!
//! ```text
//! stabilizer-node cluster.cfg e1 127.0.0.1:7001 e2=127.0.0.1:7002 w1=127.0.0.1:7003
//! stabilizer-node cluster.cfg e2 127.0.0.1:7002 e1=127.0.0.1:7001 w1=127.0.0.1:7003
//! stabilizer-node cluster.cfg w1 127.0.0.1:7003 e1=127.0.0.1:7001 e2=127.0.0.1:7002
//! ```
//!
//! Console commands: `pub <text>`, `frontier <predicate>`,
//! `wait <predicate> <seq>`, `register <key> <predicate...>`,
//! `change <key> <predicate...>`, `catchup`, `metrics`, `help`, `quit`.
//!
//! With `option transfer_millis` set in the config, a node that boots
//! late (or restarts after a crash long enough to be evicted from its
//! peers' send buffers) automatically requests §III-E state transfer at
//! startup; `catchup` re-requests it by hand.
//!
//! With `--serve <addr>`, the node attaches a telemetry hub and exposes
//! it live over HTTP — `/metrics` (Prometheus text with exemplars),
//! `/metrics.json`, `/trace` (event-ring JSONL tail), and `/stall`
//! (frontier blame diagnosis). Point `stabtop` at it.

use bytes::Bytes;
use stabilizer::telemetry::Telemetry;
use stabilizer::transport::{spawn_node_with, SpawnOptions};
use stabilizer::{AckTypeRegistry, ClusterConfig};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let serve_addr = match args.iter().position(|a| a == "--serve") {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err("--serve needs an address".into());
            }
            args.remove(i);
            Some(args.remove(i))
        }
        None => None,
    };
    if args.len() < 3 {
        return Err(
            "usage: stabilizer-node <config> <name> <listen-addr> [peer=addr ...] [--serve <addr>]"
                .into(),
        );
    }
    let cfg_text = std::fs::read_to_string(&args[0])?;
    let cfg = ClusterConfig::parse(&cfg_text)?;
    let me = cfg
        .topology()
        .node(&args[1])
        .ok_or_else(|| format!("node {:?} not in the configuration", args[1]))?;
    let listener = TcpListener::bind(&args[2])?;

    let mut peer_addrs = Vec::new();
    for spec in &args[3..] {
        let (name, addr) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad peer spec {spec:?}"))?;
        let id = cfg
            .topology()
            .node(name)
            .ok_or_else(|| format!("peer {name:?} not in the configuration"))?;
        peer_addrs.push((id, addr.parse()?));
    }
    for peer in cfg.peers(me) {
        if !peer_addrs.iter().any(|(id, _)| *id == peer) {
            return Err(format!(
                "missing address for peer {}",
                cfg.topology().node_name(peer)
            )
            .into());
        }
    }

    let telemetry = serve_addr.as_ref().map(|_| Telemetry::new_wall_clock());
    let opts = SpawnOptions {
        observer: telemetry
            .as_ref()
            .map(|t| Box::new(t.observer(me)) as Box<dyn stabilizer::core::RuntimeObserver>),
        telemetry: telemetry.clone(),
        serve_addr,
        ..SpawnOptions::default()
    };
    let node = spawn_node_with(
        cfg.clone(),
        me,
        Arc::new(AckTypeRegistry::new()),
        listener,
        peer_addrs,
        opts,
    )?;
    let h = node.handle();
    println!("node {} up, listening on {}", args[1], args[2]);
    if let Some(addr) = h.serve_addr() {
        println!("telemetry: http://{addr} — /metrics /metrics.json /trace /stall");
    }

    // Echo deliveries and frontier advances to the console.
    {
        let topo = Arc::clone(cfg.topology());
        h.on_deliver(move |origin, seq, payload| {
            println!(
                "<- {}/{}: {}",
                topo.node_name(origin),
                seq,
                String::from_utf8_lossy(payload)
            );
        });
    }
    for (key, _) in cfg.predicates() {
        h.monitor_stability_frontier(me, key, {
            let key = key.to_owned();
            move |u| println!(".. {key} -> {} (gen {})", u.seq, u.generation)
        });
    }
    // §III-E: if state transfer is configured, ask the stream origins
    // for snapshot + retained-log catch-up right away — a node booting
    // into an already-running cluster recovers whatever it missed.
    if cfg.options().transfer_millis > 0 {
        h.begin_catch_up();
        println!("state transfer armed; requesting catch-up from peers");
    }

    let stdin = std::io::stdin();
    print!("> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("pub") => {
                let text = line.split_once(' ').map(|x| x.1).unwrap_or("").to_owned();
                let len = text.len();
                match h.publish(Bytes::from(text), Duration::from_secs(5)) {
                    Ok(seq) => {
                        if let Some(t) = &telemetry {
                            t.note_publish_now(me, seq, len);
                        }
                        println!("published as seq {seq}");
                    }
                    Err(e) => println!("publish failed: {e}"),
                }
            }
            Some("frontier") => match parts.next() {
                Some(key) => match h.stability_frontier(me, key) {
                    Some((seq, generation)) => println!("{key} = {seq} (gen {generation})"),
                    None => println!("unknown predicate {key:?}"),
                },
                None => println!("usage: frontier <predicate>"),
            },
            Some("wait") => {
                let (Some(key), Some(seq)) = (parts.next(), parts.next()) else {
                    println!("usage: wait <predicate> <seq>");
                    print!("> ");
                    std::io::stdout().flush().ok();
                    continue;
                };
                match seq.parse::<u64>() {
                    Ok(seq) => match h.waitfor(me, key, seq, Duration::from_secs(30)) {
                        Ok(true) => println!("{key} reached {seq}"),
                        Ok(false) => println!("timed out"),
                        Err(e) => println!("error: {e}"),
                    },
                    Err(_) => println!("bad sequence number"),
                }
            }
            Some(cmd @ ("register" | "change")) => {
                let key = parts.next();
                let rest: Vec<&str> = parts.collect();
                match (key, rest.is_empty()) {
                    (Some(key), false) => {
                        let src = rest.join(" ");
                        let r = if cmd == "register" {
                            h.register_predicate(me, key, &src)
                        } else {
                            h.change_predicate(me, key, &src)
                        };
                        match r {
                            Ok(()) => println!(
                                "{} {key}",
                                if cmd == "register" {
                                    "registered"
                                } else {
                                    "changed"
                                }
                            ),
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    _ => println!("usage: {cmd} <key> <predicate...>"),
                }
            }
            Some("catchup") => {
                h.begin_catch_up();
                println!("catch-up requested from all stream origins");
            }
            Some("metrics") => {
                let m = h.metrics();
                println!(
                    "data: {} msgs / {} bytes out, {} delivered; control: {} msgs, {} acks out, {} acks in ({} stale)",
                    m.data_msgs_sent,
                    m.data_bytes_sent,
                    m.deliveries,
                    m.control_msgs_sent,
                    m.acks_sent,
                    m.acks_received,
                    m.acks_stale
                );
            }
            Some("help") => {
                println!("commands: pub <text> | frontier <key> | wait <key> <seq> | register <key> <pred> | change <key> <pred> | catchup | metrics | quit");
            }
            Some("quit") | Some("exit") => break,
            Some(other) => println!("unknown command {other:?} (try `help`)"),
            None => {}
        }
        print!("> ");
        std::io::stdout().flush().ok();
    }
    h.shutdown();
    Ok(())
}
