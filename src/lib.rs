//! # Stabilizer
//!
//! A from-scratch Rust reproduction of *Stabilizer: Geo-Replication with
//! User-defined Consistency* (ICDCS 2022): a geo-replication library in
//! which applications define their consistency model as a **stability
//! frontier predicate** over per-node acknowledgment counters, written
//! in a small compiled DSL.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`dsl`] | the predicate language: parser, resolver, bytecode compiler, VM |
//! | [`netsim`] | deterministic discrete-event WAN simulator (Table I/II testbeds) |
//! | [`core`] | the Stabilizer library: data plane, control plane, sans-IO node |
//! | [`shard`] | per-core stream shards with an aggregated stability frontier |
//! | [`transport`] | threaded TCP runtime for real deployments (plain + sharded) |
//! | [`kvstore`] | geo-replicated K/V store (§V-A) |
//! | [`quorum`] | quorum replication via predicates (§IV-B) |
//! | [`paxos`] | multi-Paxos baseline (PhxPaxos stand-in) |
//! | [`pubsub`] | pub/sub prototype and Pulsar-like baseline (§V-B) |
//! | [`filebackup`] | Dropbox-like backup service and trace generator (§VI-B) |
//!
//! See `examples/quickstart.rs` for a five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the experiment index.

pub use stabilizer_core as core;
pub use stabilizer_dsl as dsl;
pub use stabilizer_filebackup as filebackup;
pub use stabilizer_kvstore as kvstore;
pub use stabilizer_netsim as netsim;
pub use stabilizer_paxos as paxos;
pub use stabilizer_pubsub as pubsub;
pub use stabilizer_quorum as quorum;
pub use stabilizer_shard as shard;
pub use stabilizer_telemetry as telemetry;
pub use stabilizer_transport as transport;

// The most commonly used items, at the crate root.
pub use stabilizer_core::{
    Action, ClusterConfig, CoreError, FrontierUpdate, Options, StabilizerNode, WireMsg,
};
pub use stabilizer_dsl::{
    AckTypeId, AckTypeRegistry, AckView, DslError, NodeId, Predicate, SeqNo, Topology,
};
