//! The §IV use cases, verified end to end through the facade: the
//! AWS-regions predicate (§IV-A) and the quorum predicates (§IV-B)
//! behave exactly as the paper narrates.

use bytes::Bytes;
use stabilizer::core::sim_driver::build_cluster;
use stabilizer::{ClusterConfig, NodeId};
use stabilizer_netsim::NetTopology;

#[test]
fn section_4a_regional_predicate_means_what_the_paper_says() {
    // "the event is fully replicated within the availability zone of the
    // sender, and is also geo-replicated to at least one remote site".
    let cfg = ClusterConfig::parse(
        "az North_California n1 n2\n\
         az North_Virginia n3 n4 n5 n6\n\
         az Oregon n7\n\
         az Ohio n8\n",
    )
    .unwrap();
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 1).unwrap();
    sim.with_ctx(0, |n, ctx| {
        n.register_predicate_in(
            ctx,
            NodeId(0),
            "AzPlusRemote",
            "MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
        )
    })
    .unwrap();
    let seq = sim
        .with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 1024])))
        .unwrap();

    // Drive manually: deliver within the AZ only -> not satisfied (no
    // remote site yet). The AZ peer (n2) acks at ~1.85 ms one-way + ack.
    sim.run_for(stabilizer_netsim::SimDuration::from_millis(10));
    let (f, _) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "AzPlusRemote")
        .unwrap();
    assert_eq!(f, 0, "AZ-only replication must not satisfy the predicate");

    // Once the fastest remote region (Oregon, 23.29 ms RTT) acks, both
    // conjuncts hold.
    sim.run_for(stabilizer_netsim::SimDuration::from_millis(20));
    let (f, _) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "AzPlusRemote")
        .unwrap();
    assert_eq!(f, seq);
}

#[test]
fn section_4b_quorum_predicates_overlap() {
    // "a successful read returns ... at least Nr replicas ... a
    // successful write must write to at least Nw replicas ... Nw + Nr > N".
    let setup = stabilizer::quorum::QuorumSetup::fig3();
    assert!(setup.overlaps());
    // Varying it, as the paper suggests: write quorum = all, read = any 1.
    let all_write = stabilizer::quorum::QuorumSetup {
        writer: 1,
        reader: 0,
        members: vec![0, 2, 3],
        nr: 1,
        nw: 3,
    };
    assert!(all_write.overlaps());
    assert_eq!(all_write.write_predicate(), "KTH_MAX(3, $1, $3, $4)");
    assert_eq!(all_write.read_predicate(), "KTH_MAX(1, $1, $3, $4)");
}
