//! Cross-crate integration tests through the `stabilizer` facade: the
//! same consistency models exercised across the DSL, the simulator, the
//! K/V store, and the TCP runtime, and consistency between the two
//! runtimes.

use bytes::Bytes;
use stabilizer::core::sim_driver::build_cluster;
use stabilizer::dsl::{AckTypeRegistry, Predicate};
use stabilizer::{ClusterConfig, NodeId, Topology};
use stabilizer_netsim::NetTopology;
use std::time::Duration;

const CFG: &str = "
az East e1 e2
az West w1 w2
predicate AllRemote MIN($ALLWNODES-$MYWNODE)
predicate Majority KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)
";

#[test]
fn the_same_predicate_compiles_everywhere() {
    // One predicate source, four consumers: raw DSL, core config, the
    // simulated cluster, and the TCP runtime all accept it identically.
    let topo = Topology::builder()
        .az("East", &["e1", "e2"])
        .az("West", &["w1", "w2"])
        .build()
        .unwrap();
    let acks = AckTypeRegistry::new();
    let p = Predicate::compile(
        "KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)",
        &topo,
        &acks,
        NodeId(0),
    )
    .unwrap();
    assert_eq!(p.dependencies().len(), 4);

    let cfg = ClusterConfig::parse(CFG).unwrap();
    assert_eq!(cfg.predicates().count(), 2);
    build_cluster(
        &cfg,
        NetTopology::full_mesh(4, stabilizer_netsim::SimDuration::from_millis(5), 1e9),
        1,
    )
    .unwrap();
    let cluster = stabilizer::transport::spawn_local_cluster(&cfg).unwrap();
    for n in &cluster {
        n.handle().shutdown();
    }
}

#[test]
fn simulated_and_tcp_runtimes_agree_on_frontier_semantics() {
    let cfg = ClusterConfig::parse(CFG).unwrap();

    // Simulated run: publish 5, frontier must reach 5 under both models.
    let net = NetTopology::full_mesh(4, stabilizer_netsim::SimDuration::from_millis(5), 1e9);
    let mut sim = build_cluster(&cfg, net, 2).unwrap();
    for _ in 0..5 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from_static(b"x")))
            .unwrap();
    }
    sim.run_until_idle();
    let sim_frontiers: Vec<u64> = ["AllRemote", "Majority"]
        .iter()
        .map(|k| {
            sim.actor(0)
                .inner()
                .stability_frontier(NodeId(0), k)
                .unwrap()
                .0
        })
        .collect();

    // TCP run on localhost: same publishes, same final frontiers.
    let cluster = stabilizer::transport::spawn_local_cluster(&cfg).unwrap();
    let h = cluster[0].handle();
    let mut last = 0;
    for _ in 0..5 {
        last = h
            .publish(Bytes::from_static(b"x"), Duration::from_secs(1))
            .unwrap();
    }
    assert!(h
        .waitfor(NodeId(0), "AllRemote", last, Duration::from_secs(10))
        .unwrap());
    assert!(h
        .waitfor(NodeId(0), "Majority", last, Duration::from_secs(10))
        .unwrap());
    let tcp_frontiers: Vec<u64> = ["AllRemote", "Majority"]
        .iter()
        .map(|k| h.stability_frontier(NodeId(0), k).unwrap().0)
        .collect();
    assert_eq!(sim_frontiers, tcp_frontiers);
    assert_eq!(sim_frontiers, vec![5, 5]);
    for n in &cluster {
        n.handle().shutdown();
    }
}

#[test]
fn kv_store_and_raw_core_report_identical_stability() {
    let cfg = ClusterConfig::parse(CFG).unwrap();
    let net = || NetTopology::full_mesh(4, stabilizer_netsim::SimDuration::from_millis(5), 1e9);

    let mut kv = stabilizer::kvstore::build_kv_cluster(&cfg, net(), 3).unwrap();
    let kv_seq = kv
        .with_ctx(0, |n, ctx| n.put_in(ctx, "k", Bytes::from_static(b"v")))
        .unwrap();
    kv.run_until_idle();
    let kv_cover = kv
        .actor(0)
        .frontier_log()
        .iter()
        .find(|(_, u)| u.key == "AllRemote" && u.seq >= kv_seq)
        .map(|(t, _)| *t)
        .unwrap();

    let mut core = build_cluster(&cfg, net(), 3).unwrap();
    // Publish the same wire bytes the KV layer would.
    let payload = stabilizer::kvstore::KvOp::Put {
        key: "k".into(),
        value: Bytes::from_static(b"v"),
        timestamp: 0,
    }
    .to_bytes();
    let core_seq = core
        .with_ctx(0, |n, ctx| n.publish_in(ctx, payload))
        .unwrap();
    core.run_until_idle();
    let core_cover = core
        .actor(0)
        .frontier_log
        .iter()
        .find(|(_, u)| u.key == "AllRemote" && u.seq >= core_seq)
        .map(|(t, _)| *t)
        .unwrap();

    assert_eq!(kv_seq, core_seq);
    assert_eq!(kv_cover, core_cover, "KV layering changed stability timing");
}

#[test]
fn facade_reexports_cover_the_public_api() {
    // Spot-check that the documented entry points exist through the
    // facade (a compile-time test, essentially).
    let _ = stabilizer::dsl::parse("MAX($1)").unwrap();
    let _ = stabilizer::netsim::NetTopology::ec2_fig2();
    let _ = stabilizer::filebackup::DropboxTrace::generate(1, 0.1);
    let _ = stabilizer::paxos::Ballot::ZERO;
    let _ = stabilizer::quorum::QuorumSetup::fig3();
    let _ = stabilizer::pubsub::Fig8Mode::Changing;
}
