//! Integration test for the `stabilizer-node` CLI: two real processes
//! form a cluster over TCP, publish, and observe each other.

use std::io::Write;
use std::process::{Command, Stdio};
use std::time::Duration;

const CFG: &str = "az A a b\npredicate AllRemote MIN($ALLWNODES-$MYWNODE)\n";

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

#[test]
fn two_cli_processes_replicate_and_report_frontiers() {
    let dir = std::env::temp_dir();
    let cfg_path = dir.join(format!("stabilizer-cli-test-{}.cfg", std::process::id()));
    std::fs::write(&cfg_path, CFG).unwrap();
    let (pa, pb) = (free_port(), free_port());
    let bin = env!("CARGO_BIN_EXE_stabilizer-node");

    let mut node_a = Command::new(bin)
        .args([
            cfg_path.to_str().unwrap(),
            "a",
            &format!("127.0.0.1:{pa}"),
            &format!("b=127.0.0.1:{pb}"),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn node a");
    let mut node_b = Command::new(bin)
        .args([
            cfg_path.to_str().unwrap(),
            "b",
            &format!("127.0.0.1:{pb}"),
            &format!("a=127.0.0.1:{pa}"),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn node b");

    // Drive node a: publish, wait for full stability, quit.
    {
        let stdin = node_a.stdin.as_mut().unwrap();
        std::thread::sleep(Duration::from_millis(300)); // let both boot
        writeln!(stdin, "pub hello from process a").unwrap();
        writeln!(stdin, "wait AllRemote 1").unwrap();
        writeln!(stdin, "frontier AllRemote").unwrap();
        writeln!(stdin, "metrics").unwrap();
        writeln!(stdin, "quit").unwrap();
    }
    {
        let stdin = node_b.stdin.as_mut().unwrap();
        std::thread::sleep(Duration::from_millis(1500));
        writeln!(stdin, "quit").unwrap();
    }

    let out_a = node_a.wait_with_output().expect("node a exits");
    let out_b = node_b.wait_with_output().expect("node b exits");
    let a = String::from_utf8_lossy(&out_a.stdout);
    let b = String::from_utf8_lossy(&out_b.stdout);
    std::fs::remove_file(&cfg_path).ok();

    assert!(a.contains("published as seq 1"), "node a output:\n{a}");
    assert!(a.contains("AllRemote reached 1"), "node a output:\n{a}");
    assert!(a.contains("AllRemote = 1"), "node a output:\n{a}");
    assert!(a.contains("data: 1 msgs"), "node a output:\n{a}");
    assert!(
        b.contains("<- a/1: hello from process a"),
        "node b output:\n{b}"
    );
}
