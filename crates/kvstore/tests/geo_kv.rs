//! Integration tests for the geo-replicated K/V store over the simulated
//! EC2 WAN: mirroring, read-your-writes at the primary, get_by_time on
//! mirrors, stability frontiers gating reads, and tombstones.

use bytes::Bytes;
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_kvstore::build_kv_cluster;
use stabilizer_netsim::NetTopology;

fn cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az North_California n1 n2\n\
         az North_Virginia n3 n4 n5 n6\n\
         az Oregon n7\n\
         az Ohio n8\n\
         predicate AllWNodes MIN($ALLWNODES-$MYWNODE)\n\
         predicate OneWNode MAX($ALLWNODES-$MYWNODE)\n",
    )
    .unwrap()
}

#[test]
fn put_is_locally_stable_and_mirrors_everywhere() {
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 1).unwrap();
    let seq = sim
        .with_ctx(0, |kv, ctx| {
            kv.put_in(ctx, "user/alice", Bytes::from_static(b"v1"))
        })
        .unwrap();
    // Locally stable on return (read-your-writes at the primary).
    assert_eq!(
        sim.actor(0).get(NodeId(0), "user/alice"),
        Some(Bytes::from_static(b"v1"))
    );
    // Remote mirrors do not have it yet (WAN latency).
    assert_eq!(sim.actor(7).get(NodeId(0), "user/alice"), None);
    sim.run_until_idle();
    for i in 0..8 {
        assert_eq!(
            sim.actor(i).get(NodeId(0), "user/alice"),
            Some(Bytes::from_static(b"v1")),
            "mirror {i} missing the value"
        );
    }
    let (frontier, _) = sim.actor(0).get_stability_frontier("AllWNodes").unwrap();
    assert_eq!(frontier, seq);
}

#[test]
fn pools_are_per_owner_and_do_not_collide() {
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 2).unwrap();
    sim.with_ctx(0, |kv, ctx| {
        kv.put_in(ctx, "k", Bytes::from_static(b"from-n1"))
    })
    .unwrap();
    sim.with_ctx(6, |kv, ctx| {
        kv.put_in(ctx, "k", Bytes::from_static(b"from-n7"))
    })
    .unwrap();
    sim.run_until_idle();
    for i in 0..8 {
        assert_eq!(
            sim.actor(i).get(NodeId(0), "k"),
            Some(Bytes::from_static(b"from-n1"))
        );
        assert_eq!(
            sim.actor(i).get(NodeId(6), "k"),
            Some(Bytes::from_static(b"from-n7"))
        );
    }
}

#[test]
fn get_by_time_on_a_mirror_sees_origin_timestamps() {
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 3).unwrap();
    sim.with_ctx(0, |kv, ctx| {
        kv.put_in(ctx, "cfg", Bytes::from_static(b"old"))
    })
    .unwrap();
    let t_between = {
        sim.run_until_idle();
        sim.now().as_nanos() + 1
    };
    sim.run_for(stabilizer_netsim::SimDuration::from_millis(10));
    sim.with_ctx(0, |kv, ctx| {
        kv.put_in(ctx, "cfg", Bytes::from_static(b"new"))
    })
    .unwrap();
    sim.run_until_idle();
    let mirror = sim.actor(5);
    assert_eq!(
        mirror.get(NodeId(0), "cfg"),
        Some(Bytes::from_static(b"new"))
    );
    assert_eq!(
        mirror.get_by_time(NodeId(0), "cfg", t_between),
        Some(Bytes::from_static(b"old"))
    );
}

#[test]
fn deletes_propagate_as_tombstones() {
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 4).unwrap();
    sim.with_ctx(0, |kv, ctx| {
        kv.put_in(ctx, "gone", Bytes::from_static(b"x"))
    })
    .unwrap();
    sim.run_until_idle();
    assert_eq!(
        sim.actor(3).get(NodeId(0), "gone"),
        Some(Bytes::from_static(b"x"))
    );
    sim.with_ctx(0, |kv, ctx| kv.delete_in(ctx, "gone"))
        .unwrap();
    sim.run_until_idle();
    for i in 0..8 {
        assert_eq!(
            sim.actor(i).get(NodeId(0), "gone"),
            None,
            "mirror {i} kept deleted key"
        );
    }
}

#[test]
fn waitfor_gates_on_the_chosen_consistency_model() {
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 5).unwrap();
    let seq = sim
        .with_ctx(0, |kv, ctx| kv.put_in(ctx, "doc", Bytes::from_static(b"d")))
        .unwrap();
    let t_one = sim
        .with_ctx(0, |kv, ctx| kv.waitfor_in(ctx, "OneWNode", seq))
        .unwrap();
    let t_all = sim
        .with_ctx(0, |kv, ctx| kv.waitfor_in(ctx, "AllWNodes", seq))
        .unwrap();
    sim.run_until_idle();
    let waits = sim.actor(0).completed_waits();
    let at = |tok| {
        waits
            .iter()
            .find(|(_, t)| *t == tok)
            .map(|(at, _)| *at)
            .unwrap()
    };
    assert!(
        at(t_one) <= at(t_all),
        "weaker consistency must not wait longer"
    );
}

#[test]
fn runtime_registered_predicate_over_kv() {
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 6).unwrap();
    // §IV-A's topology-aware predicate: AZ-replicated plus one remote site.
    sim.with_ctx(0, |kv, ctx| {
        kv.register_predicate_in(
            ctx,
            "AzPlusRemote",
            "MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
        )
    })
    .unwrap();
    let seq = sim
        .with_ctx(0, |kv, ctx| {
            kv.put_in(ctx, "backup", Bytes::from(vec![1u8; 4096]))
        })
        .unwrap();
    sim.run_until_idle();
    let log = sim.actor(0).frontier_log();
    let reached = log
        .iter()
        .find(|(_, u)| u.key == "AzPlusRemote" && u.seq >= seq)
        .unwrap()
        .0;
    // Gated by the slower of: intra-AZ RTT (3.7ms) and fastest remote
    // region RTT (Oregon, 23.29ms) -> about 23-25 ms.
    let ms = reached.as_millis_f64();
    assert!(
        (20.0..30.0).contains(&ms),
        "AzPlusRemote stabilized at {ms}ms"
    );
}

#[test]
fn primary_crash_restart_with_wal_and_snapshot() {
    // Full §III-E recovery at the K/V layer: persist the pools' WALs and
    // the control-plane snapshot, crash the primary, rebuild it from
    // both, and resume writing.
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 31).unwrap();
    sim.with_ctx(0, |kv, ctx| {
        kv.put_in(ctx, "cfg/a", Bytes::from_static(b"1"))
    })
    .unwrap();
    sim.with_ctx(0, |kv, ctx| {
        kv.put_in(ctx, "cfg/b", Bytes::from_static(b"2"))
    })
    .unwrap();
    sim.run_until_idle();

    // "Persist" everything the storage system would.
    let dir = std::env::temp_dir();
    let snapshot_bytes = sim.actor(0).stabilizer().snapshot().to_bytes();
    let mut wal_paths = Vec::new();
    for origin in 0..8u16 {
        let path = dir.join(format!("geo-recovery-{}-{origin}.wal", std::process::id()));
        stabilizer_kvstore::save_wal(sim.actor(0).pool(NodeId(origin)), &path).unwrap();
        wal_paths.push(path);
    }
    let acks = std::sync::Arc::clone(sim.actor(0).stabilizer().ack_types());

    // Crash + rebuild from the persisted artifacts.
    let snapshot = stabilizer_core::Snapshot::from_bytes(&snapshot_bytes).unwrap();
    let pools: Vec<_> = wal_paths
        .iter()
        .map(|p| stabilizer_kvstore::load_wal(p).unwrap())
        .collect();
    let restored =
        stabilizer_kvstore::GeoKvNode::restore(cfg(), NodeId(0), acks, snapshot, pools).unwrap();
    sim.replace_actor(0, restored);
    for p in &wal_paths {
        std::fs::remove_file(p).ok();
    }

    // State survived...
    assert_eq!(
        sim.actor(0).get(NodeId(0), "cfg/a"),
        Some(Bytes::from_static(b"1"))
    );
    // ...and the stream resumes at the right sequence number.
    let seq = sim
        .with_ctx(0, |kv, ctx| {
            kv.put_in(ctx, "cfg/c", Bytes::from_static(b"3"))
        })
        .unwrap();
    assert_eq!(seq, 3);
    sim.run_until_idle();
    for i in 1..8 {
        assert_eq!(
            sim.actor(i).get(NodeId(0), "cfg/c"),
            Some(Bytes::from_static(b"3")),
            "mirror {i} missed the post-restart write"
        );
    }
    let (frontier, _) = sim.actor(0).get_stability_frontier("AllWNodes").unwrap();
    assert_eq!(frontier, 3);
}
