//! The geo K/V store over real TCP sockets: put at a primary, read at a
//! mirror, durability gated by a predicate — the §V-A stack end to end.

use bytes::Bytes;
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_kvstore::GeoKvHandle;
use stabilizer_transport::spawn_local_cluster;
use std::time::Duration;

#[test]
fn put_mirrors_and_waits_over_tcp() {
    let cfg =
        ClusterConfig::parse("az A a b\naz B c\npredicate AllRemote MIN($ALLWNODES-$MYWNODE)\n")
            .unwrap();
    let n = cfg.num_nodes();
    let cluster = spawn_local_cluster(&cfg).unwrap();
    let kvs: Vec<GeoKvHandle> = cluster
        .iter()
        .map(|node| GeoKvHandle::attach(node.handle(), n))
        .collect();

    let seq = kvs[0]
        .put(
            "user/7",
            Bytes::from_static(b"profile-v1"),
            Duration::from_secs(1),
        )
        .unwrap();
    assert_eq!(
        kvs[0].get(NodeId(0), "user/7"),
        Some(Bytes::from_static(b"profile-v1"))
    );
    assert!(kvs[0]
        .wait_sync("AllRemote", seq, Duration::from_secs(10))
        .unwrap());
    // After full stability every mirror serves the read.
    for kv in &kvs[1..] {
        assert_eq!(
            kv.get(NodeId(0), "user/7"),
            Some(Bytes::from_static(b"profile-v1"))
        );
    }

    // Overwrite + delete propagate too.
    kvs[0]
        .put(
            "user/7",
            Bytes::from_static(b"profile-v2"),
            Duration::from_secs(1),
        )
        .unwrap();
    let del = kvs[0].delete("user/7", Duration::from_secs(1)).unwrap();
    assert!(kvs[0]
        .wait_sync("AllRemote", del, Duration::from_secs(10))
        .unwrap());
    for kv in &kvs {
        assert_eq!(kv.get(NodeId(0), "user/7"), None);
    }
    // History survives tombstoning (get_by_time still sees v2's era from
    // the primary's pool timestamps).
    for node in &cluster {
        node.handle().shutdown();
    }
}
