//! Property tests for the K/V substrate: record-codec fuzzing,
//! version-history semantics of the local store, and mirror convergence
//! (every mirror's pool equals the primary's after the network drains).

use bytes::Bytes;
use proptest::prelude::*;
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_kvstore::{build_kv_cluster, KvOp, LocalStore};
use stabilizer_netsim::{LinkSpec, NetTopology};

fn arb_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (
            "[a-z/]{0,24}",
            proptest::collection::vec(any::<u8>(), 0..256),
            any::<u64>()
        )
            .prop_map(|(key, value, timestamp)| KvOp::Put {
                key,
                value: Bytes::from(value),
                timestamp
            }),
        ("[a-z/]{0,24}", any::<u64>()).prop_map(|(key, timestamp)| KvOp::Delete { key, timestamp }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kv_records_roundtrip(op in arb_op()) {
        prop_assert_eq!(KvOp::decode(&op.to_bytes()).unwrap(), op);
    }

    #[test]
    fn kv_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = KvOp::decode(&bytes);
    }

    #[test]
    fn local_store_history_is_a_faithful_journal(
        ops in proptest::collection::vec(("[a-c]", proptest::option::of(0u8..255)), 1..60)
    ) {
        // Apply puts/deletes with increasing timestamps; then every
        // `get_by_time(t)` equals a naive replay of the prefix up to `t`,
        // and `replay(log)` rebuilds the exact store.
        let mut store = LocalStore::new();
        let mut journal: Vec<(String, Option<u8>, u64)> = Vec::new();
        for (i, (key, val)) in ops.iter().enumerate() {
            let ts = (i as u64 + 1) * 10;
            match val {
                Some(v) => { store.put(key, Bytes::from(vec![*v]), ts); }
                None => { store.delete(key, ts); }
            }
            journal.push((key.clone(), *val, ts));
        }
        for probe in [0u64, 5, 15, 100, 305, u64::MAX] {
            for key in ["a", "b", "c"] {
                let expected = journal
                    .iter().rfind(|(k, _, ts)| k == key && *ts <= probe)
                    .and_then(|(_, v, _)| v.map(|b| Bytes::from(vec![b])));
                prop_assert_eq!(store.get_by_time(key, probe), expected, "key {} at {}", key, probe);
            }
        }
        let replayed = LocalStore::replay(store.log());
        for key in ["a", "b", "c"] {
            prop_assert_eq!(replayed.get(key), store.get(key));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mirrors_converge_to_the_primary_pool(
        writes in proptest::collection::vec(("[a-d]", 0u8..255), 1..25),
        lat in 1u64..50,
        seed in 0u64..100,
    ) {
        let cfg = ClusterConfig::parse("az A p m1\naz B m2\n").unwrap();
        let mut net = NetTopology::new(&["p", "m1", "m2"]);
        for a in 0..3 {
            for b in (a + 1)..3 {
                net.set_symmetric(a, b, LinkSpec::from_rtt_mbit(lat as f64, 100.0));
            }
        }
        let mut sim = build_kv_cluster(&cfg, net, seed).unwrap();
        for (key, val) in &writes {
            sim.with_ctx(0, |kv, ctx| kv.put_in(ctx, key, Bytes::from(vec![*val]))).unwrap();
        }
        sim.run_until_idle();
        for key in ["a", "b", "c", "d"] {
            let primary = sim.actor(0).get(NodeId(0), key);
            for mirror in 1..3 {
                let mirrored = sim.actor(mirror).get(NodeId(0), key);
                prop_assert_eq!(&mirrored, &primary, "mirror {} diverged on {}", mirror, key);
            }
        }
        // Version histories match entry for entry.
        for mirror in 1..3 {
            prop_assert_eq!(
                sim.actor(mirror).pool(NodeId(0)).log().len(),
                sim.actor(0).pool(NodeId(0)).log().len()
            );
        }
    }
}
