//! The telemetry hub wired through the geo K/V store: publishes are
//! stamped, deliveries and frontier advances feed per-node counters,
//! and the origin's stability-latency histograms fill in.

use bytes::Bytes;
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_kvstore::build_kv_cluster_with_telemetry;
use stabilizer_netsim::NetTopology;
use stabilizer_telemetry::Telemetry;

fn cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az North_California n1 n2\n\
         az North_Virginia n3 n4 n5 n6\n\
         az Oregon n7\n\
         az Ohio n8\n\
         predicate AllWNodes MIN($ALLWNODES-$MYWNODE)\n\
         predicate OneWNode MAX($ALLWNODES-$MYWNODE)\n",
    )
    .unwrap()
}

#[test]
fn kv_run_populates_the_hub() {
    let hub = Telemetry::new_sim();
    let mut sim =
        build_kv_cluster_with_telemetry(&cfg(), NetTopology::ec2_fig2(), 7, Some(hub.clone()))
            .unwrap();
    for i in 0..5 {
        sim.with_ctx(0, |kv, ctx| {
            kv.put_in(ctx, &format!("k{i}"), Bytes::from_static(b"v"))
        })
        .unwrap();
    }
    sim.with_ctx(0, |kv, ctx| kv.delete_in(ctx, "k0")).unwrap();
    sim.run_until_idle();

    let snap = hub.registry().snapshot();
    let counter = |name: &str, node: &str| {
        snap.counters
            .get(&(name.to_owned(), format!("node=\"{node}\"")))
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(counter("stab_publishes_total", "0"), 6);
    assert!(counter("stab_published_bytes_total", "0") > 0);
    // Every mirror delivered all six records.
    for node in 1..8 {
        assert_eq!(
            counter("stab_deliveries_total", &node.to_string()),
            6,
            "node {node} deliveries"
        );
    }
    assert!(counter("stab_frontier_advances_total", "0") > 0);

    // Stability latency folded at the origin for each configured key.
    for key in ["AllWNodes", "OneWNode"] {
        let h = hub.stability_latency(key).expect("histogram exists");
        assert_eq!(h.count, 6, "{key} covers every publish");
    }
}

#[test]
fn detached_hub_changes_nothing() {
    // The same run without telemetry still works (guards are no-ops).
    let mut sim =
        build_kv_cluster_with_telemetry(&cfg(), NetTopology::ec2_fig2(), 7, None).unwrap();
    sim.with_ctx(0, |kv, ctx| kv.put_in(ctx, "k", Bytes::from_static(b"v")))
        .unwrap();
    sim.run_until_idle();
    assert_eq!(
        sim.actor(7).get(NodeId(0), "k"),
        Some(Bytes::from_static(b"v"))
    );
}
