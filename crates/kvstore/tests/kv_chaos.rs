//! The chaos invariant checker reused, unchanged, over the K/V store:
//! `GeoKvNode` exposes its embedded `SimNode` driver, so the same
//! `ChaosObservable` view the bare-cluster harness uses applies here.

use bytes::Bytes;
use stabilizer_chaos::{ChaosObservable, InvariantChecker, NodeView};
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_kvstore::build_kv_cluster;
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};

fn cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az North_California n1 n2\n\
         az North_Virginia n3 n4 n5 n6\n\
         az Oregon n7\n\
         az Ohio n8\n\
         predicate AllWNodes MIN($ALLWNODES-$MYWNODE)\n\
         predicate OneWNode MAX($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 500\n",
    )
    .unwrap()
}

#[test]
fn kv_workload_upholds_every_invariant_per_step() {
    let mut sim = build_kv_cluster(&cfg(), NetTopology::ec2_fig2(), 31).unwrap();
    let n = 8;
    let mut checker = InvariantChecker::new(n, sim.actor(0).stabilizer().recorder().num_types());
    // Writes from three different owners, interleaved with a lossy link
    // (the K/V layer rides on the same retransmission machinery).
    sim.set_link_loss(0, 7, 0.2);
    for round in 0..6 {
        for owner in [0usize, 3, 6] {
            sim.with_ctx(owner, |kv, ctx| {
                kv.put_in(
                    ctx,
                    &format!("key/{round}"),
                    Bytes::from(vec![owner as u8; 128]),
                )
            })
            .unwrap();
        }
        // Step the cluster manually, checking after every event.
        let deadline = sim.now() + SimDuration::from_millis(120);
        while sim.next_event_time().is_some_and(|t| t <= deadline) {
            sim.step();
            let now = sim.now();
            let views: Vec<NodeView<'_>> =
                (0..n).map(|i| sim.actor(i).driver().chaos_view()).collect();
            checker
                .check(now, &views)
                .expect("K/V workload violated a chaos invariant");
        }
    }
    sim.set_link_loss(0, 7, 0.0);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
    // Final sweep plus an end-to-end sanity check: mirrors converged.
    let views: Vec<NodeView<'_>> = (0..n).map(|i| sim.actor(i).driver().chaos_view()).collect();
    let now = sim.now();
    checker.check(now, &views).expect("final state is clean");
    for i in 0..n {
        assert_eq!(
            sim.actor(i).get(NodeId(3), "key/5"),
            Some(Bytes::from(vec![3u8; 128])),
            "mirror {i} did not converge"
        );
    }
}
