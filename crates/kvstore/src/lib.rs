//! # Geo-replicated K/V store (§V-A)
//!
//! The paper's first application: the Derecho object store extended with
//! Stabilizer into a WAN K/V system. [`LocalStore`] is the local
//! versioned object store (put / get / get_by_time, write-ahead log);
//! [`GeoKvNode`] integrates it with Stabilizer so every WAN node owns a
//! writable pool and mirrors every other pool read-only, with
//! `get_stability_frontier`, `register_predicate`, and
//! `change_predicate` exposing user-defined consistency.
//!
//! ```
//! use stabilizer_kvstore::build_kv_cluster;
//! use stabilizer_core::{ClusterConfig, NodeId};
//! use stabilizer_netsim::{NetTopology, SimDuration};
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ClusterConfig::parse("
//!     az East e1 e2
//!     az West w1
//!     predicate AllRemote MIN($ALLWNODES-$MYWNODE)
//! ")?;
//! let net = NetTopology::full_mesh(3, SimDuration::from_millis(10), 1e9);
//! let mut sim = build_kv_cluster(&cfg, net, 1)?;
//! sim.with_ctx(0, |kv, ctx| kv.put_in(ctx, "answer", Bytes::from_static(b"42")))?;
//! sim.run_until_idle();
//! assert_eq!(sim.actor(2).get(NodeId(0), "answer"), Some(Bytes::from_static(b"42")));
//! # Ok(()) }
//! ```

pub mod geo;
pub mod local;
pub mod record;
pub mod tcp;
pub mod wal;

pub use geo::{build_kv_cluster, build_kv_cluster_with_telemetry, GeoKvNode, KvHooks};
pub use local::{LocalStore, LogRecord, Version};
pub use record::KvOp;
pub use tcp::GeoKvHandle;
pub use wal::{load_wal, save_wal};
