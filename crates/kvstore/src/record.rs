//! The replicated K/V operation record: what a primary publishes on its
//! Stabilizer stream, and what mirrors apply to their read-only pools.

use bytes::Bytes;
use stabilizer_core::CoreError;

/// A single K/V mutation, as carried in a Stabilizer data message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Write `value` under `key`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: Bytes,
        /// Origin-side timestamp (nanos), used for `get_by_time`.
        timestamp: u64,
    },
    /// Delete `key` (tombstone).
    Delete {
        /// The key.
        key: String,
        /// Origin-side timestamp (nanos).
        timestamp: u64,
    },
}

impl KvOp {
    const TAG_PUT: u8 = 0;
    const TAG_DELETE: u8 = 1;

    /// The key this operation mutates.
    pub fn key(&self) -> &str {
        match self {
            KvOp::Put { key, .. } | KvOp::Delete { key, .. } => key,
        }
    }

    /// The origin timestamp.
    pub fn timestamp(&self) -> u64 {
        match self {
            KvOp::Put { timestamp, .. } | KvOp::Delete { timestamp, .. } => *timestamp,
        }
    }

    /// Serialize to a payload for `publish`.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            KvOp::Put {
                key,
                value,
                timestamp,
            } => {
                out.push(Self::TAG_PUT);
                out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(&timestamp.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            KvOp::Delete { key, timestamp } => {
                out.push(Self::TAG_DELETE);
                out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(&timestamp.to_le_bytes());
            }
        }
        Bytes::from(out)
    }

    /// Deserialize a payload produced by [`KvOp::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on truncation, bad UTF-8 keys, unknown tags,
    /// or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<KvOp, CoreError> {
        let fail = |m: &str| CoreError::Wire(format!("kv record: {m}"));
        let tag = *buf.first().ok_or_else(|| fail("empty"))?;
        let mut at = 1usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], CoreError> {
            if *at + n > buf.len() {
                return Err(fail("truncated"));
            }
            let s = &buf[*at..*at + n];
            *at += n;
            Ok(s)
        };
        let key_len = u16::from_le_bytes(take(&mut at, 2)?.try_into().unwrap()) as usize;
        let key = std::str::from_utf8(take(&mut at, key_len)?)
            .map_err(|_| fail("key not UTF-8"))?
            .to_owned();
        let timestamp = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
        let op = match tag {
            Self::TAG_PUT => {
                let vlen = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
                let value = Bytes::copy_from_slice(take(&mut at, vlen)?);
                KvOp::Put {
                    key,
                    value,
                    timestamp,
                }
            }
            Self::TAG_DELETE => KvOp::Delete { key, timestamp },
            _ => return Err(fail("unknown tag")),
        };
        if at != buf.len() {
            return Err(fail("trailing bytes"));
        }
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_roundtrips() {
        let op = KvOp::Put {
            key: "user/7".into(),
            value: Bytes::from_static(b"v"),
            timestamp: 99,
        };
        assert_eq!(KvOp::decode(&op.to_bytes()).unwrap(), op);
        assert_eq!(op.key(), "user/7");
        assert_eq!(op.timestamp(), 99);
    }

    #[test]
    fn delete_roundtrips() {
        let op = KvOp::Delete {
            key: "k".into(),
            timestamp: 1,
        };
        assert_eq!(KvOp::decode(&op.to_bytes()).unwrap(), op);
    }

    #[test]
    fn empty_key_and_value_roundtrip() {
        let op = KvOp::Put {
            key: String::new(),
            value: Bytes::new(),
            timestamp: 0,
        };
        assert_eq!(KvOp::decode(&op.to_bytes()).unwrap(), op);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = KvOp::Put {
            key: "abc".into(),
            value: Bytes::from_static(b"xyz"),
            timestamp: 5,
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(KvOp::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_tag_and_trailing_rejected() {
        assert!(KvOp::decode(&[9, 0, 0]).is_err());
        let mut bytes = KvOp::Delete {
            key: "k".into(),
            timestamp: 1,
        }
        .to_bytes()
        .to_vec();
        bytes.push(7);
        assert!(KvOp::decode(&bytes).is_err());
    }
}
