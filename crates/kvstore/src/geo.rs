//! The geo-replicated K/V store of §V-A: the local object store enhanced
//! with Stabilizer so each WAN node "can originate K/V updates to local
//! data, but read K/V data from any WAN node".
//!
//! Each node owns one *pool* (its primary keys) and holds read-only
//! mirrored pools of every other node. A `put` is locally stable on
//! return; clients seeking stronger guarantees consult
//! `get_stability_frontier` / `waitfor` with a predicate matching their
//! consistency model, or register new predicates at runtime.

use crate::local::LocalStore;
use crate::record::KvOp;
use bytes::Bytes;
use stabilizer_core::sim_driver::{AppHooks, SimNode};
use stabilizer_core::{
    Action, ClusterConfig, CoreError, FrontierUpdate, NodeId, SeqNo, StabilizerNode, WaitToken,
    WireMsg,
};
use stabilizer_dsl::AckTypeRegistry;
use stabilizer_netsim::{Actor, Ctx, NetTopology, SimTime, Simulation, TimerId};
use stabilizer_telemetry::{MetricsObserver, Telemetry};
use std::sync::Arc;

/// Driver hooks for the K/V node: forwards delivery/frontier/wait
/// events to an optional telemetry observer (no-op when detached).
#[derive(Default)]
pub struct KvHooks {
    observer: Option<MetricsObserver>,
}

impl AppHooks for KvHooks {
    fn on_deliver(&mut self, now: SimTime, origin: NodeId, seq: SeqNo, payload: &Bytes) {
        if let Some(obs) = &mut self.observer {
            obs.on_deliver(now, origin, seq, payload);
        }
    }

    fn on_frontier(&mut self, now: SimTime, update: &FrontierUpdate) {
        if let Some(obs) = &mut self.observer {
            obs.on_frontier(now, update);
        }
    }

    fn on_wait_done(&mut self, now: SimTime, token: WaitToken) {
        if let Some(obs) = &mut self.observer {
            obs.on_wait_done(now, token);
        }
    }

    fn on_suspected(&mut self, now: SimTime, node: NodeId) {
        if let Some(obs) = &mut self.observer {
            obs.on_suspected(now, node);
        }
    }
}

/// A geo-replicated K/V node running in the simulator.
///
/// Internally this wraps the core [`SimNode`] driver and applies every
/// delivered record to the mirrored pool of its origin.
pub struct GeoKvNode {
    sim: SimNode<KvHooks>,
    pools: Vec<LocalStore>,
    telemetry: Option<Arc<Telemetry>>,
}

impl GeoKvNode {
    /// Build the node `me` of `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and predicate-compile errors.
    pub fn new(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
    ) -> Result<Self, CoreError> {
        let node = StabilizerNode::new(cfg.clone(), me, acks)?;
        Ok(GeoKvNode {
            sim: SimNode::new(node, KvHooks::default()).without_delivery_log(),
            pools: (0..cfg.num_nodes()).map(|_| LocalStore::new()).collect(),
            telemetry: None,
        })
    }

    /// Attach a telemetry hub: publishes are stamped for stability
    /// latency, and deliveries / frontier advances / completed waits
    /// feed the hub's per-node counters and histograms.
    #[must_use]
    pub fn with_telemetry(mut self, hub: &Arc<Telemetry>) -> Self {
        self.sim.hooks.observer = Some(hub.observer(self.me()));
        self.telemetry = Some(Arc::clone(hub));
        self
    }

    /// Rebuild a K/V node after a primary crash (§III-E): the
    /// control-plane [`Snapshot`](stabilizer_core::Snapshot) restores the
    /// ACK table and sequence counter, and the per-origin pools are
    /// replayed from their persisted write-ahead logs.
    ///
    /// # Errors
    ///
    /// Propagates configuration and predicate-compile errors.
    pub fn restore(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
        snapshot: stabilizer_core::Snapshot,
        pools: Vec<LocalStore>,
    ) -> Result<Self, CoreError> {
        assert_eq!(pools.len(), cfg.num_nodes(), "one pool per origin");
        let node = StabilizerNode::restore(cfg, me, acks, snapshot)?;
        Ok(GeoKvNode {
            sim: SimNode::new(node, KvHooks::default()).without_delivery_log(),
            pools,
            telemetry: None,
        })
    }

    /// Write `value` under `key` in this node's own pool and start the
    /// asynchronous WAN mirror transfer. On return the write is *locally
    /// stable* (the paper's `put` semantics); use
    /// [`GeoKvNode::waitfor_in`] for stronger guarantees.
    ///
    /// # Errors
    ///
    /// Backpressure or payload-size errors from the data plane.
    pub fn put_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        key: &str,
        value: Bytes,
    ) -> Result<SeqNo, CoreError> {
        let timestamp = ctx.now().as_nanos();
        let op = KvOp::Put {
            key: key.to_owned(),
            value: value.clone(),
            timestamp,
        };
        let payload = op.to_bytes();
        let payload_len = payload.len();
        let seq = self.sim.publish_in(ctx, payload)?;
        if let Some(t) = &self.telemetry {
            t.note_publish(timestamp, self.me(), seq, payload_len);
        }
        let me = self.me().0 as usize;
        self.pools[me].put(key, value, timestamp);
        Ok(seq)
    }

    /// Tombstone `key` in this node's own pool, mirrored like a put.
    ///
    /// # Errors
    ///
    /// Backpressure errors from the data plane.
    pub fn delete_in(&mut self, ctx: &mut Ctx<'_, WireMsg>, key: &str) -> Result<SeqNo, CoreError> {
        let timestamp = ctx.now().as_nanos();
        let op = KvOp::Delete {
            key: key.to_owned(),
            timestamp,
        };
        let payload = op.to_bytes();
        let payload_len = payload.len();
        let seq = self.sim.publish_in(ctx, payload)?;
        if let Some(t) = &self.telemetry {
            t.note_publish(timestamp, self.me(), seq, payload_len);
        }
        let me = self.me().0 as usize;
        self.pools[me].delete(key, timestamp);
        Ok(seq)
    }

    /// Read the latest mirrored value of `key` from `owner`'s pool.
    pub fn get(&self, owner: NodeId, key: &str) -> Option<Bytes> {
        self.pools[owner.0 as usize].get(key)
    }

    /// Read `key` from `owner`'s pool as of `timestamp` (the Derecho
    /// `get_by_time` API the paper preserves).
    pub fn get_by_time(&self, owner: NodeId, key: &str, timestamp: u64) -> Option<Bytes> {
        self.pools[owner.0 as usize].get_by_time(key, timestamp)
    }

    /// The mirrored pool of `owner` (read-only).
    pub fn pool(&self, owner: NodeId) -> &LocalStore {
        &self.pools[owner.0 as usize]
    }

    /// Current `(frontier, generation)` of a predicate over this node's
    /// own stream — the paper's added `get_stability_frontier` API.
    pub fn get_stability_frontier(&self, key: &str) -> Option<(SeqNo, u32)> {
        self.sim.inner().stability_frontier(self.me(), key)
    }

    /// Register a predicate over this node's own stream (§V-A
    /// `register_predicate`).
    ///
    /// # Errors
    ///
    /// DSL compile errors.
    pub fn register_predicate_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        let me = self.me();
        self.sim.register_predicate_in(ctx, me, key, source)
    }

    /// Switch a registered predicate (§V-A `change_predicate`).
    ///
    /// # Errors
    ///
    /// Unknown key or DSL compile errors.
    pub fn change_predicate_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        let me = self.me();
        self.sim.change_predicate_in(ctx, me, key, source)
    }

    /// Wait until `predicate` covers `seq` on this node's stream.
    ///
    /// # Errors
    ///
    /// Unknown predicate key.
    pub fn waitfor_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        predicate: &str,
        seq: SeqNo,
    ) -> Result<WaitToken, CoreError> {
        let me = self.me();
        self.sim.waitfor_in(ctx, me, predicate, seq)
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.sim.inner().me()
    }

    /// Timestamped frontier log (for experiments).
    pub fn frontier_log(&self) -> &[(SimTime, FrontierUpdate)] {
        &self.sim.frontier_log
    }

    /// Completed `waitfor` tokens with completion times.
    pub fn completed_waits(&self) -> &[(SimTime, WaitToken)] {
        &self.sim.completed_waits
    }

    /// The wrapped Stabilizer state machine.
    pub fn stabilizer(&self) -> &StabilizerNode {
        self.sim.inner()
    }

    /// The embedded simulator driver, exposed read-only so external
    /// observers (e.g. the chaos harness's invariant checker) can view
    /// this node exactly as they view a bare `SimNode` cluster.
    pub fn driver(&self) -> &SimNode<KvHooks> {
        &self.sim
    }

    fn apply_delivery(&mut self, origin: NodeId, payload: &Bytes) {
        // Malformed records are dropped; in a real deployment this would
        // be an integration bug worth surfacing loudly, so debug builds
        // assert.
        match KvOp::decode(payload) {
            Ok(KvOp::Put {
                key,
                value,
                timestamp,
            }) => {
                self.pools[origin.0 as usize].put(&key, value, timestamp);
            }
            Ok(KvOp::Delete { key, timestamp }) => {
                self.pools[origin.0 as usize].delete(&key, timestamp);
            }
            Err(e) => debug_assert!(false, "undecodable KV record from {origin}: {e}"),
        }
    }
}

impl Actor for GeoKvNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.sim.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, WireMsg>, from: usize, msg: WireMsg) {
        // Feed the state machine directly so `Deliver` actions can be
        // applied to the mirrored pools before the driver consumes them.
        self.sim
            .inner_mut()
            .on_message(ctx.now().as_nanos(), NodeId(from as u16), msg);
        let actions = self.sim.inner_mut().take_actions();
        for action in &actions {
            if let Action::Deliver {
                origin, payload, ..
            } = action
            {
                self.apply_delivery(*origin, payload);
            }
        }
        self.sim.process_actions(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WireMsg>, timer: TimerId, tag: u64) {
        self.sim.on_timer(ctx, timer, tag);
    }
}

/// Build a simulated geo-replicated K/V deployment: one [`GeoKvNode`]
/// per site over `net`.
///
/// # Errors
///
/// Propagates configuration and predicate-compile errors.
///
/// # Panics
///
/// Panics if the network and cluster sizes differ.
pub fn build_kv_cluster(
    cfg: &ClusterConfig,
    net: NetTopology,
    seed: u64,
) -> Result<Simulation<GeoKvNode>, CoreError> {
    build_kv_cluster_with_telemetry(cfg, net, seed, None)
}

/// [`build_kv_cluster`] with every node reporting into a shared
/// telemetry hub (per-node counters, stability-latency histograms).
///
/// # Errors
///
/// Propagates configuration and predicate-compile errors.
///
/// # Panics
///
/// Panics if the network and cluster sizes differ.
pub fn build_kv_cluster_with_telemetry(
    cfg: &ClusterConfig,
    net: NetTopology,
    seed: u64,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<Simulation<GeoKvNode>, CoreError> {
    assert_eq!(net.len(), cfg.num_nodes());
    let acks = Arc::new(AckTypeRegistry::new());
    let mut nodes = Vec::with_capacity(cfg.num_nodes());
    for i in 0..cfg.num_nodes() {
        let mut node = GeoKvNode::new(cfg.clone(), NodeId(i as u16), Arc::clone(&acks))?;
        if let Some(hub) = &telemetry {
            node = node.with_telemetry(hub);
        }
        nodes.push(node);
    }
    Ok(Simulation::new(net, nodes, seed))
}
