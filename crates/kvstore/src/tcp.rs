//! The geo-replicated K/V store over the real TCP runtime: the same
//! §V-A integration as [`crate::geo`], attached to a
//! [`NodeHandle`] instead of the
//! simulator — `put` publishes a [`KvOp`] record, the delivery upcall
//! applies mirrored records to per-origin pools, and stability queries
//! go through the blocking §III-D API.

use crate::local::LocalStore;
use crate::record::KvOp;
use bytes::Bytes;
use parking_lot::Mutex;
use stabilizer_core::{CoreError, NodeId, SeqNo};
use stabilizer_transport::NodeHandle;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A geo K/V node running on the TCP runtime. Clone-cheap.
#[derive(Clone)]
pub struct GeoKvHandle {
    handle: NodeHandle,
    pools: Arc<Mutex<Vec<LocalStore>>>,
}

impl GeoKvHandle {
    /// Attach K/V semantics to a running Stabilizer node: mirrored
    /// records are applied to per-origin pools as they are delivered.
    pub fn attach(handle: NodeHandle, num_nodes: usize) -> Self {
        let pools = Arc::new(Mutex::new(
            (0..num_nodes)
                .map(|_| LocalStore::new())
                .collect::<Vec<_>>(),
        ));
        {
            let pools = Arc::clone(&pools);
            handle.on_deliver(move |origin, _seq, payload| match KvOp::decode(payload) {
                Ok(KvOp::Put {
                    key,
                    value,
                    timestamp,
                }) => {
                    pools.lock()[origin.0 as usize].put(&key, value, timestamp);
                }
                Ok(KvOp::Delete { key, timestamp }) => {
                    pools.lock()[origin.0 as usize].delete(&key, timestamp);
                }
                Err(_) => debug_assert!(false, "undecodable KV record from {origin}"),
            });
        }
        GeoKvHandle { handle, pools }
    }

    /// The underlying Stabilizer handle (predicates, waitfor, monitors).
    pub fn stabilizer(&self) -> &NodeHandle {
        &self.handle
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.handle.id()
    }

    /// Write `value` under `key` in this node's pool; locally stable on
    /// return, mirrored asynchronously.
    ///
    /// # Errors
    ///
    /// Backpressure (after `timeout`) or payload-size errors.
    pub fn put(&self, key: &str, value: Bytes, timeout: Duration) -> Result<SeqNo, CoreError> {
        let timestamp = now_nanos();
        let op = KvOp::Put {
            key: key.to_owned(),
            value: value.clone(),
            timestamp,
        };
        let seq = self.handle.publish(op.to_bytes(), timeout)?;
        self.pools.lock()[self.id().0 as usize].put(key, value, timestamp);
        Ok(seq)
    }

    /// Tombstone `key` in this node's pool.
    ///
    /// # Errors
    ///
    /// Backpressure or payload-size errors.
    pub fn delete(&self, key: &str, timeout: Duration) -> Result<SeqNo, CoreError> {
        let timestamp = now_nanos();
        let op = KvOp::Delete {
            key: key.to_owned(),
            timestamp,
        };
        let seq = self.handle.publish(op.to_bytes(), timeout)?;
        self.pools.lock()[self.id().0 as usize].delete(key, timestamp);
        Ok(seq)
    }

    /// Latest mirrored value of `key` from `owner`'s pool.
    pub fn get(&self, owner: NodeId, key: &str) -> Option<Bytes> {
        self.pools.lock()[owner.0 as usize].get(key)
    }

    /// `key` from `owner`'s pool as of `timestamp` nanos.
    pub fn get_by_time(&self, owner: NodeId, key: &str, timestamp: u64) -> Option<Bytes> {
        self.pools.lock()[owner.0 as usize].get_by_time(key, timestamp)
    }

    /// Block until `predicate` covers `seq` on this node's stream
    /// (the `get_stability_frontier`-driven wait of §V-A).
    ///
    /// # Errors
    ///
    /// Unknown predicate key.
    pub fn wait_sync(
        &self,
        predicate: &str,
        seq: SeqNo,
        timeout: Duration,
    ) -> Result<bool, CoreError> {
        self.handle.waitfor(self.id(), predicate, seq, timeout)
    }
}

impl std::fmt::Debug for GeoKvHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeoKvHandle")
            .field("me", &self.id())
            .finish()
    }
}

fn now_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
