//! The local object store: a stand-in for the Derecho object store the
//! paper integrates with (§V-A) — a versioned in-process K/V store with
//! `put`, `get`, `get_by_version`, and `get_by_time`, backed by a
//! write-ahead log that supports replay-based recovery.

use bytes::Bytes;
use std::collections::HashMap;

/// A single version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// Monotonic per-store version number (1-based).
    pub version: u64,
    /// Logical timestamp supplied by the caller (virtual nanos in
    /// simulations, wall-clock nanos in deployments).
    pub timestamp: u64,
    /// The value; `None` is a tombstone.
    pub value: Option<Bytes>,
}

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The key written.
    pub key: String,
    /// The version it produced.
    pub version: Version,
}

/// A versioned in-memory K/V store with full version history per key and
/// a write-ahead log.
#[derive(Debug, Default)]
pub struct LocalStore {
    map: HashMap<String, Vec<Version>>,
    log: Vec<LogRecord>,
    next_version: u64,
}

impl LocalStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `value` under `key` at `timestamp`; returns the new version
    /// number. Versions are totally ordered per store.
    pub fn put(&mut self, key: &str, value: Bytes, timestamp: u64) -> u64 {
        self.apply(key, Some(value), timestamp)
    }

    /// Write a tombstone for `key`; subsequent `get` returns `None`.
    pub fn delete(&mut self, key: &str, timestamp: u64) -> u64 {
        self.apply(key, None, timestamp)
    }

    fn apply(&mut self, key: &str, value: Option<Bytes>, timestamp: u64) -> u64 {
        self.next_version += 1;
        let v = Version {
            version: self.next_version,
            timestamp,
            value,
        };
        self.log.push(LogRecord {
            key: key.to_owned(),
            version: v.clone(),
        });
        self.map.entry(key.to_owned()).or_default().push(v);
        self.next_version
    }

    /// Latest value of `key` (`None` if absent or tombstoned).
    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.map.get(key)?.last()?.value.clone()
    }

    /// Latest version entry of `key`, including tombstones.
    pub fn get_version_entry(&self, key: &str) -> Option<&Version> {
        self.map.get(key)?.last()
    }

    /// Value of `key` as of store version `version` (the newest entry
    /// with `entry.version <= version`).
    pub fn get_by_version(&self, key: &str, version: u64) -> Option<Bytes> {
        let versions = self.map.get(key)?;
        versions
            .iter()
            .rev()
            .find(|v| v.version <= version)?
            .value
            .clone()
    }

    /// Value of `key` as of `timestamp` (the newest entry with
    /// `entry.timestamp <= timestamp`) — the paper's `get_by_time`.
    pub fn get_by_time(&self, key: &str, timestamp: u64) -> Option<Bytes> {
        let versions = self.map.get(key)?;
        versions
            .iter()
            .rev()
            .find(|v| v.timestamp <= timestamp)?
            .value
            .clone()
    }

    /// All versions of `key`, oldest first.
    pub fn history(&self, key: &str) -> &[Version] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys (including tombstoned ones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no key was ever written.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Highest version number issued.
    pub fn current_version(&self) -> u64 {
        self.next_version
    }

    /// The write-ahead log, oldest first.
    pub fn log(&self) -> &[LogRecord] {
        &self.log
    }

    /// Live (non-tombstoned) keys starting with `prefix`, sorted — the
    /// scan primitive applications like the file-backup manifest use.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .map
            .iter()
            .filter(|(k, versions)| {
                k.starts_with(prefix) && versions.last().map(|v| v.value.is_some()).unwrap_or(false)
            })
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Rebuild a store by replaying a write-ahead log (crash recovery).
    pub fn replay(log: &[LogRecord]) -> Self {
        let mut store = LocalStore::new();
        for rec in log {
            match &rec.version.value {
                Some(v) => store.put(&rec.key, v.clone(), rec.version.timestamp),
                None => store.delete(&rec.key, rec.version.timestamp),
            };
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = LocalStore::new();
        let v1 = s.put("k", Bytes::from_static(b"a"), 100);
        assert_eq!(v1, 1);
        assert_eq!(s.get("k"), Some(Bytes::from_static(b"a")));
        let v2 = s.put("k", Bytes::from_static(b"b"), 200);
        assert_eq!(v2, 2);
        assert_eq!(s.get("k"), Some(Bytes::from_static(b"b")));
        assert_eq!(s.history("k").len(), 2);
    }

    #[test]
    fn get_missing_is_none() {
        let s = LocalStore::new();
        assert_eq!(s.get("nope"), None);
        assert_eq!(s.get_by_time("nope", u64::MAX), None);
        assert!(s.history("nope").is_empty());
    }

    #[test]
    fn tombstones_hide_values_but_keep_history() {
        let mut s = LocalStore::new();
        s.put("k", Bytes::from_static(b"a"), 100);
        s.delete("k", 200);
        assert_eq!(s.get("k"), None);
        assert_eq!(s.get_by_time("k", 150), Some(Bytes::from_static(b"a")));
        assert_eq!(s.get_by_time("k", 250), None);
    }

    #[test]
    fn get_by_time_picks_newest_at_or_before() {
        let mut s = LocalStore::new();
        s.put("k", Bytes::from_static(b"a"), 100);
        s.put("k", Bytes::from_static(b"b"), 200);
        s.put("k", Bytes::from_static(b"c"), 300);
        assert_eq!(s.get_by_time("k", 99), None);
        assert_eq!(s.get_by_time("k", 100), Some(Bytes::from_static(b"a")));
        assert_eq!(s.get_by_time("k", 299), Some(Bytes::from_static(b"b")));
        assert_eq!(s.get_by_time("k", u64::MAX), Some(Bytes::from_static(b"c")));
    }

    #[test]
    fn get_by_version_tracks_store_versions() {
        let mut s = LocalStore::new();
        s.put("a", Bytes::from_static(b"1"), 0); // version 1
        s.put("b", Bytes::from_static(b"2"), 0); // version 2
        s.put("a", Bytes::from_static(b"3"), 0); // version 3
        assert_eq!(s.get_by_version("a", 2), Some(Bytes::from_static(b"1")));
        assert_eq!(s.get_by_version("a", 3), Some(Bytes::from_static(b"3")));
        assert_eq!(s.get_by_version("b", 1), None);
    }

    #[test]
    fn keys_with_prefix_scans_live_keys() {
        let mut s = LocalStore::new();
        s.put("file/1/0", Bytes::from_static(b"a"), 0);
        s.put("file/1/1", Bytes::from_static(b"b"), 0);
        s.put("file/2/0", Bytes::from_static(b"c"), 0);
        s.put("other", Bytes::from_static(b"d"), 0);
        s.delete("file/1/1", 1);
        assert_eq!(s.keys_with_prefix("file/1/"), vec!["file/1/0".to_owned()]);
        assert_eq!(s.keys_with_prefix("file/").len(), 2);
        assert!(s.keys_with_prefix("zzz").is_empty());
    }

    #[test]
    fn replay_reconstructs_state() {
        let mut s = LocalStore::new();
        s.put("a", Bytes::from_static(b"1"), 10);
        s.put("b", Bytes::from_static(b"2"), 20);
        s.delete("a", 30);
        let replayed = LocalStore::replay(s.log());
        assert_eq!(replayed.get("a"), None);
        assert_eq!(replayed.get("b"), Some(Bytes::from_static(b"2")));
        assert_eq!(replayed.current_version(), s.current_version());
        assert_eq!(replayed.log(), s.log());
    }

    #[test]
    fn len_counts_keys_not_versions() {
        let mut s = LocalStore::new();
        s.put("a", Bytes::from_static(b"1"), 0);
        s.put("a", Bytes::from_static(b"2"), 0);
        s.put("b", Bytes::from_static(b"3"), 0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
