//! Write-ahead-log file persistence for [`LocalStore`]: the durability
//! half of the Derecho-object-store substitute, enabling the §III-E
//! recovery flow (restart → replay WAL → re-join → Stabilizer resumes
//! from a persisted snapshot).
//!
//! Format: `KVWL` magic + u16 version, then length-prefixed records
//! `(key_len u16, key, timestamp u64, tag u8, [value_len u32, value])`.

use crate::local::{LocalStore, LogRecord};
use bytes::Bytes;
use stabilizer_core::CoreError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"KVWL";
const VERSION: u16 = 1;
const TAG_PUT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// Serialize a store's write-ahead log to `path` (atomic via temp file +
/// rename).
///
/// # Errors
///
/// Propagates I/O errors as [`CoreError::Wire`].
pub fn save_wal(store: &LocalStore, path: &Path) -> Result<(), CoreError> {
    let io = |e: std::io::Error| CoreError::Wire(format!("wal write: {e}"));
    let tmp = path.with_extension("wal.tmp");
    {
        let file = std::fs::File::create(&tmp).map_err(io)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC).map_err(io)?;
        w.write_all(&VERSION.to_le_bytes()).map_err(io)?;
        w.write_all(&(store.log().len() as u64).to_le_bytes())
            .map_err(io)?;
        for rec in store.log() {
            w.write_all(&(rec.key.len() as u16).to_le_bytes())
                .map_err(io)?;
            w.write_all(rec.key.as_bytes()).map_err(io)?;
            w.write_all(&rec.version.timestamp.to_le_bytes())
                .map_err(io)?;
            match &rec.version.value {
                Some(v) => {
                    w.write_all(&[TAG_PUT]).map_err(io)?;
                    w.write_all(&(v.len() as u32).to_le_bytes()).map_err(io)?;
                    w.write_all(v).map_err(io)?;
                }
                None => w.write_all(&[TAG_DELETE]).map_err(io)?,
            }
        }
        w.flush().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)
}

/// Rebuild a store by replaying the WAL at `path`.
///
/// # Errors
///
/// [`CoreError::Wire`] on I/O errors or a corrupt/truncated log.
pub fn load_wal(path: &Path) -> Result<LocalStore, CoreError> {
    let io = |e: std::io::Error| CoreError::Wire(format!("wal read: {e}"));
    let bad = |m: &str| CoreError::Wire(format!("wal corrupt: {m}"));
    let file = std::fs::File::open(path).map_err(io)?;
    let mut r = BufReader::new(file);

    let mut hdr = [0u8; 4 + 2 + 8];
    r.read_exact(&mut hdr).map_err(io)?;
    if &hdr[0..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    if u16::from_le_bytes(hdr[4..6].try_into().unwrap()) != VERSION {
        return Err(bad("unsupported version"));
    }
    let count = u64::from_le_bytes(hdr[6..14].try_into().unwrap());

    let mut log = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let mut klen = [0u8; 2];
        r.read_exact(&mut klen).map_err(io)?;
        let mut key = vec![0u8; u16::from_le_bytes(klen) as usize];
        r.read_exact(&mut key).map_err(io)?;
        let key = String::from_utf8(key).map_err(|_| bad("key not UTF-8"))?;
        let mut ts = [0u8; 8];
        r.read_exact(&mut ts).map_err(io)?;
        let timestamp = u64::from_le_bytes(ts);
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag).map_err(io)?;
        let value = match tag[0] {
            TAG_PUT => {
                let mut vlen = [0u8; 4];
                r.read_exact(&mut vlen).map_err(io)?;
                let mut v = vec![0u8; u32::from_le_bytes(vlen) as usize];
                r.read_exact(&mut v).map_err(io)?;
                Some(Bytes::from(v))
            }
            TAG_DELETE => None,
            t => return Err(bad(&format!("unknown tag {t}"))),
        };
        log.push(LogRecord {
            key,
            version: crate::local::Version {
                version: 0,
                timestamp,
                value,
            },
        });
    }
    let mut rest = Vec::new();
    r.read_to_end(&mut rest).map_err(io)?;
    if !rest.is_empty() {
        return Err(bad("trailing bytes"));
    }
    Ok(LocalStore::replay(&log))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("stabilizer-wal-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn wal_roundtrips_through_a_file() {
        let mut store = LocalStore::new();
        store.put("a", Bytes::from_static(b"1"), 10);
        store.put("b", Bytes::from_static(b"22"), 20);
        store.delete("a", 30);
        store.put("a", Bytes::from_static(b"333"), 40);

        let path = tmp("roundtrip");
        save_wal(&store, &path).unwrap();
        let restored = load_wal(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.get("a"), Some(Bytes::from_static(b"333")));
        assert_eq!(restored.get("b"), Some(Bytes::from_static(b"22")));
        assert_eq!(restored.get_by_time("a", 35), None); // tombstone era
        assert_eq!(restored.current_version(), store.current_version());
    }

    #[test]
    fn empty_store_roundtrips() {
        let path = tmp("empty");
        save_wal(&LocalStore::new(), &path).unwrap();
        let restored = load_wal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(restored.is_empty());
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = tmp("corrupt");
        let mut store = LocalStore::new();
        store.put("k", Bytes::from_static(b"v"), 1);
        save_wal(&store, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncations fail.
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        assert!(load_wal(&path).is_err());
        // Bad magic fails.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(load_wal(&path).is_err());
        // Trailing garbage fails.
        let mut trailing = bytes;
        trailing.push(7);
        std::fs::write(&path, &trailing).unwrap();
        assert!(load_wal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error_not_a_panic() {
        assert!(load_wal(std::path::Path::new("/nonexistent/stabilizer.wal")).is_err());
    }
}
