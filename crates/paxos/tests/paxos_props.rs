//! Property tests for Paxos safety under randomized conditions:
//! agreement (no two nodes learn different values for a slot) and
//! stability (a learned value never changes) must hold for arbitrary
//! link latencies, proposer sets, partitions, and value sizes.

use proptest::prelude::*;
use stabilizer_netsim::{LinkSpec, NetTopology, SimDuration};
use stabilizer_paxos::build_paxos;

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    lat_ms: Vec<u64>,
    proposers: Vec<usize>,
    proposals_each: usize,
    cut: Option<(usize, usize)>,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (3usize..=7).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u64..50, n),
            proptest::collection::vec(0..n, 1..=3),
            1usize..=3,
            proptest::option::of((0..n, 0..n)),
            0u64..10_000,
        )
            .prop_map(
                move |(lat_ms, proposers, proposals_each, cut, seed)| Scenario {
                    n,
                    lat_ms,
                    proposers,
                    proposals_each,
                    cut,
                    seed,
                },
            )
    })
}

fn topology(lat_ms: &[u64]) -> NetTopology {
    let n = lat_ms.len();
    let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut t = NetTopology::new(&refs);
    for i in 0..n {
        for j in (i + 1)..n {
            t.set_symmetric(
                i,
                j,
                LinkSpec::from_rtt_mbit((lat_ms[i] + lat_ms[j]) as f64, 300.0),
            );
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn agreement_holds_under_contention_and_partitions(s in arb_scenario()) {
        let mut sim = build_paxos(topology(&s.lat_ms), s.seed);
        // Optionally cut one directed link for the whole run (a minority
        // partition cannot block a majority).
        if let Some((a, b)) = s.cut {
            if a != b {
                sim.set_link_up(a, b, false);
            }
        }
        for &p in &s.proposers {
            for _ in 0..s.proposals_each {
                sim.with_ctx(p, |node, ctx| { node.propose_in(ctx, 512); });
            }
        }
        // Bound the run: contention with a cut link can retry a few times.
        sim.run_until(stabilizer_netsim::SimTime::ZERO + SimDuration::from_secs(120));

        // Agreement: for every slot, all learners agree.
        for slot in 1..=64u64 {
            let mut learned: Option<u64> = None;
            for i in 0..s.n {
                if let Some(v) = sim.actor(i).log.get(&slot) {
                    match learned {
                        None => learned = Some(v.id),
                        Some(prev) => prop_assert_eq!(prev, v.id, "slot {} diverged", slot),
                    }
                }
            }
        }
    }

    #[test]
    fn logs_are_gapless_prefixes_at_the_leader(s in arb_scenario()) {
        // Single proposer, no partition: the leader's log must be a
        // gapless prefix containing every proposal exactly once.
        let mut sim = build_paxos(topology(&s.lat_ms), s.seed);
        let p = s.proposers[0];
        let mut ids = Vec::new();
        for _ in 0..s.proposals_each {
            ids.push(sim.with_ctx(p, |node, ctx| node.propose_in(ctx, 128)));
        }
        sim.run_until_idle();
        let leader = sim.actor(p);
        prop_assert_eq!(leader.commit_point() as usize, s.proposals_each);
        for id in ids {
            prop_assert!(leader.log.values().filter(|v| v.id == id).count() == 1);
        }
    }
}
