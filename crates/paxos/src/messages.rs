//! Paxos message types and wire-size model.

use stabilizer_netsim::MsgSize;

/// A ballot number: `(round, proposer)` ordered lexicographically so
/// every proposer owns an unbounded, disjoint ballot sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// Monotonic round counter.
    pub round: u64,
    /// Proposer node index (tie breaker).
    pub node: u16,
}

impl Ballot {
    /// The null ballot, smaller than any real one.
    pub const ZERO: Ballot = Ballot { round: 0, node: 0 };

    /// The next ballot owned by `node` that exceeds `self`.
    pub fn next_for(self, node: u16) -> Ballot {
        Ballot {
            round: self.round + 1,
            node,
        }
    }
}

/// A proposed value. Payload content is irrelevant to the protocol and
/// the network model; only identity and size matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value {
    /// Unique id (0 is the no-op used for gap filling).
    pub id: u64,
    /// Payload size in bytes.
    pub size: usize,
}

impl Value {
    /// The gap-filling no-op.
    pub const NOOP: Value = Value { id: 0, size: 0 };

    /// True if this is the no-op.
    pub fn is_noop(&self) -> bool {
        self.id == 0
    }
}

/// The messages of multi-Paxos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaxosMsg {
    /// Phase 1a: leader candidate solicits promises.
    Prepare {
        /// The candidate's ballot.
        ballot: Ballot,
    },
    /// Phase 1b: acceptor promises not to accept lower ballots and
    /// reports everything it has accepted so far (for value recovery).
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// Previously accepted `(slot, ballot, value)` triples.
        accepted: Vec<(u64, Ballot, Value)>,
    },
    /// Phase 2a: leader asks acceptors to accept `value` at `slot`.
    Accept {
        /// The leader's ballot.
        ballot: Ballot,
        /// Log position.
        slot: u64,
        /// Proposed value.
        value: Value,
    },
    /// Phase 2b: acceptor accepted.
    Accepted {
        /// Echoed ballot.
        ballot: Ballot,
        /// Echoed slot.
        slot: u64,
    },
    /// Rejection: the acceptor has promised `promised > ballot`.
    Nack {
        /// The rejected ballot.
        ballot: Ballot,
        /// The higher promise that caused the rejection.
        promised: Ballot,
    },
    /// Commit notification to learners.
    Learn {
        /// Decided slot.
        slot: u64,
        /// Decided value.
        value: Value,
    },
}

impl MsgSize for PaxosMsg {
    fn wire_size(&self) -> usize {
        const HDR: usize = 64;
        match self {
            PaxosMsg::Prepare { .. } | PaxosMsg::Accepted { .. } | PaxosMsg::Nack { .. } => HDR,
            PaxosMsg::Promise { accepted, .. } => HDR + accepted.len() * 32,
            // Accept and Learn carry the payload.
            PaxosMsg::Accept { value, .. } | PaxosMsg::Learn { value, .. } => HDR + value.size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballots_order_by_round_then_node() {
        let a = Ballot { round: 1, node: 5 };
        let b = Ballot { round: 2, node: 0 };
        assert!(a < b);
        assert!(Ballot::ZERO < a);
        let c = a.next_for(2);
        assert!(c > a);
        assert_eq!(c, Ballot { round: 2, node: 2 });
        assert!(Ballot { round: 1, node: 1 } < Ballot { round: 1, node: 2 });
    }

    #[test]
    fn value_sizes_drive_wire_size() {
        let v = Value { id: 7, size: 8192 };
        assert_eq!(
            PaxosMsg::Accept {
                ballot: Ballot::ZERO,
                slot: 1,
                value: v
            }
            .wire_size(),
            64 + 8192
        );
        assert_eq!(
            PaxosMsg::Prepare {
                ballot: Ballot::ZERO
            }
            .wire_size(),
            64
        );
        assert_eq!(
            PaxosMsg::Promise {
                ballot: Ballot::ZERO,
                accepted: vec![(1, Ballot::ZERO, v); 3]
            }
            .wire_size(),
            64 + 96
        );
    }

    #[test]
    fn noop_identification() {
        assert!(Value::NOOP.is_noop());
        assert!(!Value { id: 3, size: 0 }.is_noop());
    }
}
