//! The combined proposer/acceptor/learner node.

use crate::messages::{Ballot, PaxosMsg, Value};
use stabilizer_netsim::{Actor, Ctx, NetTopology, SimDuration, SimTime, Simulation};
use std::collections::{BTreeMap, HashMap, HashSet};

const TAG_RETRY_PREPARE: u64 = 1;

/// One Paxos participant. Every node is acceptor and learner; any node
/// can campaign for leadership with [`PaxosNode::start_leadership_in`].
pub struct PaxosNode {
    me: u16,
    n: usize,
    // --- Acceptor state ---
    promised: Ballot,
    accepted: BTreeMap<u64, (Ballot, Value)>,
    // --- Leader/proposer state ---
    ballot: Ballot,
    preparing: bool,
    prepared: bool,
    promises: HashSet<u16>,
    recovered: BTreeMap<u64, (Ballot, Value)>,
    next_slot: u64,
    queue: Vec<Value>,
    accept_votes: HashMap<u64, HashSet<u16>>,
    in_flight: HashMap<u64, Value>,
    next_value_id: u64,
    // --- Learner state ---
    /// Committed log: slot -> value.
    pub log: BTreeMap<u64, Value>,
    /// When each slot committed at this node (leader: on majority
    /// Accepted; others: on Learn).
    pub commit_times: BTreeMap<u64, SimTime>,
    /// When each value id was first proposed (for latency measurement).
    pub proposed_at: HashMap<u64, SimTime>,
}

impl PaxosNode {
    /// Node `me` of an `n`-node ensemble.
    pub fn new(me: u16, n: usize) -> Self {
        PaxosNode {
            me,
            n,
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
            ballot: Ballot::ZERO,
            preparing: false,
            prepared: false,
            promises: HashSet::new(),
            recovered: BTreeMap::new(),
            next_slot: 1,
            queue: Vec::new(),
            accept_votes: HashMap::new(),
            in_flight: HashMap::new(),
            next_value_id: 1,
            log: BTreeMap::new(),
            commit_times: BTreeMap::new(),
            proposed_at: HashMap::new(),
        }
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Campaign for leadership: run phase 1 with a ballot above anything
    /// seen so far.
    pub fn start_leadership_in(&mut self, ctx: &mut Ctx<'_, PaxosMsg>) {
        self.ballot = self.promised.max(self.ballot).next_for(self.me);
        self.preparing = true;
        self.prepared = false;
        self.promises.clear();
        self.recovered.clear();
        let ballot = self.ballot;
        self.broadcast_and_self(ctx, PaxosMsg::Prepare { ballot });
    }

    /// Propose a client value of `size` bytes; returns its value id. If
    /// this node is not yet a prepared leader, it campaigns first and the
    /// value is queued.
    pub fn propose_in(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, size: usize) -> u64 {
        let id = (self.me as u64) << 48 | self.next_value_id;
        self.next_value_id += 1;
        let value = Value { id, size };
        self.proposed_at.insert(id, ctx.now());
        if self.prepared {
            self.send_accept(ctx, value);
        } else {
            self.queue.push(value);
            if !self.preparing {
                self.start_leadership_in(ctx);
            }
        }
        id
    }

    /// Commit time of the value with `id`, if this node learned it.
    pub fn commit_time_of(&self, id: u64) -> Option<SimTime> {
        let (slot, _) = self.log.iter().find(|(_, v)| v.id == id)?;
        self.commit_times.get(slot).copied()
    }

    /// True if this node currently believes it is the prepared leader.
    pub fn is_leader(&self) -> bool {
        self.prepared
    }

    /// Highest contiguous committed slot (commit point).
    pub fn commit_point(&self) -> u64 {
        let mut p = 0;
        while self.log.contains_key(&(p + 1)) {
            p += 1;
        }
        p
    }

    fn send_accept(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, value: Value) {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.in_flight.insert(slot, value);
        self.accept_votes.insert(slot, HashSet::new());
        let ballot = self.ballot;
        self.broadcast_and_self(
            ctx,
            PaxosMsg::Accept {
                ballot,
                slot,
                value,
            },
        );
    }

    fn broadcast_and_self(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, msg: PaxosMsg) {
        for peer in 0..self.n {
            if peer != self.me as usize {
                ctx.send(peer, msg.clone());
            }
        }
        // Loopback: the proposer is also an acceptor.
        ctx.send(ctx.me(), msg);
    }

    fn on_prepare(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, from: usize, ballot: Ballot) {
        if ballot > self.promised {
            self.promised = ballot;
            // Losing leadership: a higher ballot exists.
            if ballot.node != self.me {
                self.prepared = false;
                self.preparing = false;
            }
            let accepted: Vec<(u64, Ballot, Value)> = self
                .accepted
                .iter()
                .map(|(s, (b, v))| (*s, *b, *v))
                .collect();
            ctx.send(from, PaxosMsg::Promise { ballot, accepted });
        } else {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    ballot,
                    promised: self.promised,
                },
            );
        }
    }

    fn on_promise(
        &mut self,
        ctx: &mut Ctx<'_, PaxosMsg>,
        from: usize,
        ballot: Ballot,
        accepted: Vec<(u64, Ballot, Value)>,
    ) {
        if !self.preparing || ballot != self.ballot {
            return; // stale
        }
        self.promises.insert(from as u16);
        for (slot, b, v) in accepted {
            let replace = self
                .recovered
                .get(&slot)
                .map(|(rb, _)| b > *rb)
                .unwrap_or(true);
            if replace {
                self.recovered.insert(slot, (b, v));
            }
        }
        if self.promises.len() >= self.majority() {
            self.preparing = false;
            self.prepared = true;
            // Value recovery: re-propose the highest-ballot accepted value
            // for every slot reported, and fill gaps below with no-ops.
            let max_slot = self.recovered.keys().max().copied().unwrap_or(0);
            let recovered = std::mem::take(&mut self.recovered);
            for slot in 1..=max_slot {
                if self.log.contains_key(&slot) {
                    continue; // already learned
                }
                let value = recovered.get(&slot).map(|(_, v)| *v).unwrap_or(Value::NOOP);
                self.in_flight.insert(slot, value);
                self.accept_votes.insert(slot, HashSet::new());
                let b = self.ballot;
                self.broadcast_and_self(
                    ctx,
                    PaxosMsg::Accept {
                        ballot: b,
                        slot,
                        value,
                    },
                );
            }
            self.next_slot = self.next_slot.max(max_slot + 1);
            // Drain queued client proposals.
            for value in std::mem::take(&mut self.queue) {
                self.send_accept(ctx, value);
            }
        }
    }

    fn on_accept(
        &mut self,
        ctx: &mut Ctx<'_, PaxosMsg>,
        from: usize,
        ballot: Ballot,
        slot: u64,
        value: Value,
    ) {
        if ballot >= self.promised {
            self.promised = ballot;
            if ballot.node != self.me {
                self.prepared = false;
                self.preparing = false;
            }
            self.accepted.insert(slot, (ballot, value));
            ctx.send(from, PaxosMsg::Accepted { ballot, slot });
        } else {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    ballot,
                    promised: self.promised,
                },
            );
        }
    }

    fn on_accepted(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, from: usize, ballot: Ballot, slot: u64) {
        if ballot != self.ballot || !self.in_flight.contains_key(&slot) {
            return; // stale
        }
        let Some(votes) = self.accept_votes.get_mut(&slot) else {
            return;
        };
        votes.insert(from as u16);
        if votes.len() >= self.majority() {
            let value = self.in_flight.remove(&slot).expect("in flight");
            self.accept_votes.remove(&slot);
            self.learn(ctx.now(), slot, value);
            let msg = PaxosMsg::Learn { slot, value };
            for peer in 0..self.n {
                if peer != self.me as usize {
                    ctx.send(peer, msg.clone());
                }
            }
        }
    }

    fn on_nack(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, promised: Ballot) {
        if promised <= self.ballot {
            return; // stale
        }
        // Preempted: back off and retry phase 1 with a higher ballot,
        // re-queueing in-flight proposals.
        self.prepared = false;
        self.preparing = false;
        self.ballot = promised;
        for (_, value) in std::mem::take(&mut self.in_flight) {
            if !value.is_noop() {
                self.queue.push(value);
            }
        }
        self.accept_votes.clear();
        if !self.queue.is_empty() {
            let jitter = 1 + (self.me as u64) * 7;
            ctx.set_timer(SimDuration::from_millis(jitter), TAG_RETRY_PREPARE);
        }
    }

    fn learn(&mut self, now: SimTime, slot: u64, value: Value) {
        if let Some(existing) = self.log.get(&slot) {
            assert_eq!(
                existing.id, value.id,
                "SAFETY VIOLATION: slot {slot} relearned differently"
            );
            return;
        }
        self.log.insert(slot, value);
        self.commit_times.insert(slot, now);
    }
}

impl Actor for PaxosNode {
    type Msg = PaxosMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, from: usize, msg: PaxosMsg) {
        match msg {
            PaxosMsg::Prepare { ballot } => self.on_prepare(ctx, from, ballot),
            PaxosMsg::Promise { ballot, accepted } => self.on_promise(ctx, from, ballot, accepted),
            PaxosMsg::Accept {
                ballot,
                slot,
                value,
            } => self.on_accept(ctx, from, ballot, slot, value),
            PaxosMsg::Accepted { ballot, slot } => self.on_accepted(ctx, from, ballot, slot),
            PaxosMsg::Nack { promised, .. } => self.on_nack(ctx, promised),
            PaxosMsg::Learn { slot, value } => self.learn(ctx.now(), slot, value),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, PaxosMsg>, _t: stabilizer_netsim::TimerId, tag: u64) {
        if tag == TAG_RETRY_PREPARE && !self.prepared && !self.preparing {
            self.start_leadership_in(ctx);
        }
    }
}

/// Build an `n`-node Paxos ensemble over `net`.
///
/// # Panics
///
/// Panics if `net` is empty.
pub fn build_paxos(net: NetTopology, seed: u64) -> Simulation<PaxosNode> {
    let n = net.len();
    assert!(n > 0);
    let nodes = (0..n).map(|i| PaxosNode::new(i as u16, n)).collect();
    Simulation::new(net, nodes, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: usize) -> NetTopology {
        NetTopology::full_mesh(n, SimDuration::from_millis(10), 1e9)
    }

    #[test]
    fn single_leader_commits_values_in_order() {
        let mut sim = build_paxos(mesh(5), 1);
        let ids: Vec<u64> = (0..5)
            .map(|_| sim.with_ctx(0, |p, ctx| p.propose_in(ctx, 1024)))
            .collect();
        sim.run_until_idle();
        let leader = sim.actor(0);
        assert!(leader.is_leader());
        assert_eq!(leader.commit_point(), 5);
        for (slot, id) in ids.iter().enumerate() {
            assert_eq!(leader.log.get(&(slot as u64 + 1)).unwrap().id, *id);
        }
        // Everyone learned the same log.
        for i in 1..5 {
            assert_eq!(sim.actor(i).log, leader.log);
        }
    }

    #[test]
    fn commit_latency_is_one_round_trip_after_prepare() {
        let mut sim = build_paxos(mesh(5), 2);
        // Prepare once up front.
        sim.with_ctx(0, |p, ctx| p.start_leadership_in(ctx));
        sim.run_until_idle();
        let id = sim.with_ctx(0, |p, ctx| p.propose_in(ctx, 100));
        let t0 = sim.now();
        sim.run_until_idle();
        let dt = sim.actor(0).commit_time_of(id).unwrap().since(t0);
        // Accept out (10ms) + Accepted back (10ms) = 20ms.
        assert!(
            (19.0..22.0).contains(&dt.as_millis_f64()),
            "commit took {dt}"
        );
    }

    #[test]
    fn dueling_proposers_preserve_agreement() {
        let mut sim = build_paxos(mesh(5), 3);
        sim.with_ctx(0, |p, ctx| {
            p.propose_in(ctx, 10);
        });
        sim.with_ctx(4, |p, ctx| {
            p.propose_in(ctx, 10);
        });
        sim.run_until_idle();
        // Both values commit somewhere, and all logs agree slot by slot.
        let reference = sim.actor(0).log.clone();
        assert!(!reference.is_empty());
        for i in 1..5 {
            for (slot, v) in &sim.actor(i).log {
                assert_eq!(
                    reference.get(slot).map(|r| r.id),
                    Some(v.id),
                    "slot {slot} diverged"
                );
            }
        }
    }

    #[test]
    fn leader_failover_recovers_accepted_values() {
        let mut sim = build_paxos(mesh(5), 4);
        sim.with_ctx(0, |p, ctx| p.start_leadership_in(ctx));
        sim.run_until_idle();
        let id = sim.with_ctx(0, |p, ctx| p.propose_in(ctx, 64));
        // Let the Accept reach acceptors but cut the leader off before it
        // can learn/broadcast the commit.
        sim.run_for(SimDuration::from_millis(10));
        for i in 1..5 {
            sim.set_link_up(0, i, false);
            sim.set_link_up(i, 0, false);
        }
        sim.run_until_idle();
        // New leader recovers the accepted value.
        sim.with_ctx(1, |p, ctx| p.start_leadership_in(ctx));
        sim.run_until_idle();
        let new_leader = sim.actor(1);
        assert!(new_leader.is_leader());
        assert!(
            new_leader.log.values().any(|v| v.id == id),
            "accepted value lost on failover: log {:?}",
            new_leader.log
        );
    }

    #[test]
    fn three_node_minimum_ensemble_works() {
        let mut sim = build_paxos(mesh(3), 5);
        let id = sim.with_ctx(2, |p, ctx| p.propose_in(ctx, 8192));
        sim.run_until_idle();
        assert!(sim.actor(2).commit_time_of(id).is_some());
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use crate::messages::{Ballot, PaxosMsg, Value};

    fn mesh(n: usize) -> NetTopology {
        NetTopology::full_mesh(n, SimDuration::from_millis(5), 1e9)
    }

    #[test]
    fn promise_recovery_prefers_the_highest_ballot_value() {
        // Hand-craft divergent acceptor states: slot 1 was accepted under
        // two different ballots at different acceptors; a new leader must
        // re-propose the higher-ballot value.
        let mut sim = build_paxos(mesh(3), 9);
        let low = Value { id: 111, size: 8 };
        let high = Value { id: 222, size: 8 };
        sim.with_ctx(1, |p, ctx| {
            p.on_message(
                ctx,
                0,
                PaxosMsg::Accept {
                    ballot: Ballot { round: 1, node: 0 },
                    slot: 1,
                    value: low,
                },
            );
        });
        sim.with_ctx(2, |p, ctx| {
            p.on_message(
                ctx,
                0,
                PaxosMsg::Accept {
                    ballot: Ballot { round: 2, node: 0 },
                    slot: 1,
                    value: high,
                },
            );
        });
        // Discard the Accepted replies heading to node 0.
        sim.set_link_up(1, 0, false);
        sim.set_link_up(2, 0, false);
        sim.run_until_idle();
        sim.set_link_up(1, 0, true);
        sim.set_link_up(2, 0, true);
        // Keep node 0 out of the promise quorum so node 1's majority is
        // {1, 2}: Paxos then must re-propose node 2's higher-ballot value
        // (a quorum of {0, 1} would legitimately choose 111 instead,
        // since neither value was chosen by a full accept quorum).
        sim.set_link_up(0, 1, false);
        sim.with_ctx(1, |p, ctx| p.start_leadership_in(ctx));
        sim.run_until_idle();
        assert_eq!(sim.actor(1).log.get(&1).map(|v| v.id), Some(222));
    }

    #[test]
    fn preempted_proposer_retries_and_its_value_still_commits() {
        let mut sim = build_paxos(mesh(5), 10);
        // Node 4 grabs a high ballot first.
        sim.with_ctx(4, |p, ctx| p.start_leadership_in(ctx));
        sim.run_until_idle();
        // Node 0 proposes with a stale ballot; it gets NACKed, backs off,
        // re-prepares with a higher ballot, and the value commits.
        let id = sim.with_ctx(0, |p, ctx| p.propose_in(ctx, 32));
        sim.run_until_idle();
        let committed_somewhere = (0..5).any(|i| sim.actor(i).log.values().any(|v| v.id == id));
        assert!(committed_somewhere, "preempted value lost");
        // Agreement still holds everywhere.
        let reference = sim.actor(0).log.clone();
        for i in 1..5 {
            for (slot, v) in &sim.actor(i).log {
                assert_eq!(reference.get(slot).map(|r| r.id), Some(v.id));
            }
        }
    }
}
