//! # Multi-Paxos baseline
//!
//! A from-scratch multi-decree Paxos implementation standing in for
//! PhxPaxos, the "state-of-the-art industrial implementation of the
//! Paxos protocol" the paper compares against in Fig. 6. The comparison
//! needs the protocol's latency *structure* — a leader commits a log
//! entry when a majority of acceptors (⌈(N+1)/2⌉, topology-blind) have
//! accepted it — which any correct majority-quorum multi-Paxos shares.
//!
//! The implementation is complete rather than minimal: prepare/promise
//! with value recovery, accept/accepted, commit learning, ballot
//! preemption with NACKs, gap filling with no-ops on leader change, and
//! dueling-proposer safety (exercised by the property tests in
//! `tests/paxos_props.rs`).

//! ```
//! use stabilizer_paxos::build_paxos;
//! use stabilizer_netsim::{NetTopology, SimDuration};
//!
//! let net = NetTopology::full_mesh(3, SimDuration::from_millis(5), 1e9);
//! let mut sim = build_paxos(net, 1);
//! let id = sim.with_ctx(0, |p, ctx| p.propose_in(ctx, 1024));
//! sim.run_until_idle();
//! assert!(sim.actor(0).commit_time_of(id).is_some());
//! ```

pub mod messages;
pub mod node;

pub use messages::{Ballot, PaxosMsg, Value};
pub use node::{build_paxos, PaxosNode};
