//! Synthetic Dropbox sync trace (Fig. 4 substitute).
//!
//! The paper drives its backup experiments with a real Dropbox trace
//! from Li et al. (IMC'14): sync activity from 16:40:45 to 16:57:08 on
//! 2012-09-20 (983 seconds) totalling ≈3.87 GB, where "most of the sync
//! requests in each day are concentrated within one hour or several
//! minutes" and three huge files dominate Fig. 4's size plot. The trace
//! itself is not redistributable, so this generator reproduces its
//! aggregate statistics: the duration, the total volume, a heavy-tailed
//! small-file size distribution, bursty arrivals, and three large-file
//! spikes — the properties Figs. 4–6 actually depend on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stabilizer_netsim::SimDuration;

/// One sync request: a file of `size` bytes submitted at `offset` from
/// the trace start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Offset from trace start.
    pub offset: SimDuration,
    /// File size in bytes.
    pub size: u64,
}

/// A generated trace, sorted by offset.
#[derive(Debug, Clone)]
pub struct DropboxTrace {
    records: Vec<TraceRecord>,
}

/// Trace duration: 16:40:45 → 16:57:08.
pub const TRACE_SECONDS: u64 = 983;
/// Total volume ≈ 3.87 GiB.
pub const TRACE_TOTAL_BYTES: u64 = (3.87 * 1024.0 * 1024.0 * 1024.0) as u64;
/// The chunk size the backup service splits files into (§VI-B).
pub const CHUNK_BYTES: u64 = 8192;

/// The three Fig. 4 spikes: `(offset seconds, size bytes)`.
const SPIKES: [(u64, u64); 3] = [
    (235, 125 * 1024 * 1024),
    (500, 150 * 1024 * 1024),
    (860, 100 * 1024 * 1024),
];

impl DropboxTrace {
    /// Generate the Fig. 4-statistics trace deterministically from
    /// `seed`, scaled by `scale` in `(0, 1]` (1.0 = the paper's full
    /// 3.87 GB; smaller values shrink every file proportionally, which
    /// keeps the arrival process and the spike structure intact while
    /// shortening simulation runs).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut records = Vec::new();

        // The three large-file spikes.
        let mut large_total = 0u64;
        for (at, size) in SPIKES {
            records.push(TraceRecord {
                offset: SimDuration::from_secs(at),
                size,
            });
            large_total += size;
        }

        // Bursty small files: arrivals cluster into episodes (users sync
        // directories, not single files). Heavy-tailed sizes via a
        // log-uniform draw across 4 KB..32 MB.
        let target_small = TRACE_TOTAL_BYTES - large_total;
        let mut raw: Vec<(u64, u64)> = Vec::new(); // (millis offset, size)
        let mut small_total = 0u64;
        while small_total < target_small {
            // An episode starts anywhere in the trace and lasts up to a
            // minute, containing up to a few dozen files.
            let episode_start = rng.gen_range(0..TRACE_SECONDS * 1000);
            let files = rng.gen_range(1..=40);
            for _ in 0..files {
                let at = episode_start + rng.gen_range(0..60_000);
                if at >= TRACE_SECONDS * 1000 {
                    continue;
                }
                let log_size = rng.gen_range(12.0..25.0); // 2^12 .. 2^25
                let size = (2f64.powf(log_size)) as u64;
                raw.push((at, size));
                small_total += size;
                if small_total >= target_small {
                    break;
                }
            }
        }
        // Trim overshoot from the last file so totals land on target.
        if small_total > target_small {
            let overshoot = small_total - target_small;
            if let Some(last) = raw.last_mut() {
                last.1 = last.1.saturating_sub(overshoot).max(CHUNK_BYTES);
            }
        }
        for (at, size) in raw {
            records.push(TraceRecord {
                offset: SimDuration::from_nanos(at * 1_000_000),
                size,
            });
        }

        records.sort_by_key(|r| r.offset);
        if scale < 1.0 {
            for r in &mut records {
                r.size = ((r.size as f64 * scale) as u64).max(CHUNK_BYTES);
            }
        }
        DropboxTrace { records }
    }

    /// The records, sorted by offset.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of sync requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace is empty (never, for valid parameters).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size).sum()
    }

    /// Total 8 KiB messages after chunking (the paper reports 517,294
    /// for the real trace).
    pub fn total_chunks(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.size.div_ceil(CHUNK_BYTES))
            .sum()
    }

    /// Duration from the first to the last request.
    pub fn duration(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(f), Some(l)) => l.offset - f.offset,
            _ => SimDuration::ZERO,
        }
    }

    /// Per-minute volume histogram (for the Fig. 4 harness).
    pub fn per_minute_mbytes(&self) -> Vec<f64> {
        let minutes = (TRACE_SECONDS / 60 + 1) as usize;
        let mut out = vec![0.0; minutes];
        for r in &self.records {
            let m = (r.offset.as_secs_f64() / 60.0) as usize;
            out[m.min(minutes - 1)] += r.size as f64 / 1e6;
        }
        out
    }

    /// The largest file size (Fig. 4's y-axis peak, ≈150 MB).
    pub fn max_file_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_statistics() {
        let t = DropboxTrace::generate(42, 1.0);
        // Total ≈ 3.87 GiB (within 1%).
        let total = t.total_bytes() as f64;
        assert!((total - TRACE_TOTAL_BYTES as f64).abs() / (TRACE_TOTAL_BYTES as f64) < 0.01);
        // Chunk count in the paper's ballpark (517,294 ± 5%).
        let chunks = t.total_chunks() as f64;
        assert!(
            (chunks - 517_294.0).abs() / 517_294.0 < 0.05,
            "chunks {chunks}"
        );
        // Duration fits the 983-second window.
        assert!(t.duration().as_secs_f64() <= TRACE_SECONDS as f64);
        // The 150 MB spike is the largest file.
        assert_eq!(t.max_file_bytes(), 150 * 1024 * 1024);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DropboxTrace::generate(7, 0.5);
        let b = DropboxTrace::generate(7, 0.5);
        assert_eq!(a.records(), b.records());
        let c = DropboxTrace::generate(8, 0.5);
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn records_are_sorted_and_nonempty() {
        let t = DropboxTrace::generate(1, 0.1);
        assert!(!t.is_empty());
        assert!(t.records().windows(2).all(|w| w[0].offset <= w[1].offset));
        assert!(t.records().iter().all(|r| r.size >= CHUNK_BYTES));
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let full = DropboxTrace::generate(3, 1.0);
        let half = DropboxTrace::generate(3, 0.5);
        assert_eq!(full.len(), half.len());
        let ratio = half.total_bytes() as f64 / full.total_bytes() as f64;
        assert!((ratio - 0.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn per_minute_histogram_shows_spikes() {
        let t = DropboxTrace::generate(42, 1.0);
        let hist = t.per_minute_mbytes();
        // Each spike's mass lands in its minute. (Comparing against the
        // mean would be wrong: the small-file background alone averages
        // ~240 MB/min, more than the 100 MB spike, so whether a spike
        // minute beats the mean is a coin flip of the background draw.)
        for (at, size) in SPIKES {
            let m = (at / 60) as usize;
            assert!(
                hist[m] >= size as f64 / 1e6,
                "minute {m} missing its {size}-byte spike"
            );
        }
        // The arrival process is bursty, not flat: the busiest minute
        // carries several times the quietest.
        let max = hist.iter().cloned().fold(0.0f64, f64::max);
        let min = hist.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 2.0 * min, "histogram too flat: max {max} min {min}");
    }
}
