//! The §VI-B experiments: Fig. 5 (trace-driven stability-frontier
//! latency) and Fig. 6 (single-file sync time vs size, predicates vs
//! Paxos).

use crate::service::{build_backup, ec2_backup_cfg, TABLE3_PREDICATES};
use crate::trace::{DropboxTrace, CHUNK_BYTES};
use stabilizer_netsim::{NetTopology, SimDuration};
use stabilizer_paxos::build_paxos;

/// Result of the trace-driven run: for each predicate, the per-message
/// frontier latency series (indexed by sequence number − 1).
#[derive(Debug)]
pub struct Fig5Result {
    /// `(predicate name, latencies)` in Table III order.
    pub series: Vec<(String, Vec<Option<SimDuration>>)>,
    /// Total messages sent.
    pub messages: u64,
}

/// Run the Fig. 5 trace-driven experiment at the given trace `scale`
/// (1.0 = the paper's full 3.87 GB / ≈517 k messages).
pub fn fig5_run(scale: f64, seed: u64) -> Fig5Result {
    fig5_run_on(NetTopology::ec2_fig2(), scale, seed)
}

/// [`fig5_run`] with per-message link jitter (the authors' physical
/// testbed had natural latency variance between the four North Virginia
/// servers, which is what separates MajorityWNodes from AllWNodes in
/// their Fig. 5; a jitter-free emulation collapses the two).
pub fn fig5_run_jittered(scale: f64, jitter_ms: f64, seed: u64) -> Fig5Result {
    let net = NetTopology::ec2_fig2()
        .with_jitter(stabilizer_netsim::SimDuration::from_millis_f64(jitter_ms));
    fig5_run_on(net, scale, seed)
}

/// [`fig5_run`] with every node reporting into `hub`: alongside the
/// returned latency series, the hub's `stab_stability_latency_ns{key}`
/// histograms hold the same distribution (per Table III predicate) and
/// the per-node counters account publishes/deliveries/frontier
/// advances — the telemetry-native view of the experiment.
pub fn fig5_run_with_telemetry(
    scale: f64,
    seed: u64,
    hub: &std::sync::Arc<stabilizer_telemetry::Telemetry>,
) -> Fig5Result {
    fig5_run_inner(NetTopology::ec2_fig2(), scale, seed, Some(hub.clone()))
}

fn fig5_run_on(net: NetTopology, scale: f64, seed: u64) -> Fig5Result {
    fig5_run_inner(net, scale, seed, None)
}

fn fig5_run_inner(
    net: NetTopology,
    scale: f64,
    seed: u64,
    telemetry: Option<std::sync::Arc<stabilizer_telemetry::Telemetry>>,
) -> Fig5Result {
    let cfg = ec2_backup_cfg();
    let mut sim =
        crate::service::build_backup_with_telemetry(&cfg, net, seed, telemetry).expect("cfg valid");
    let trace = DropboxTrace::generate(seed, scale);
    sim.with_ctx(0, |n, ctx| n.schedule_trace(ctx, &trace));
    sim.run_until_idle();
    let primary = sim.actor(0);
    let series = TABLE3_PREDICATES
        .iter()
        .map(|(key, _)| ((*key).to_owned(), primary.frontier_latencies(key)))
        .collect();
    Fig5Result {
        series,
        messages: primary.send_times.len() as u64,
    }
}

/// One Fig. 6 point: time to fully synchronize a single file.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// File size in bytes.
    pub size: u64,
    /// `(series name, sync time)` for the three predicates and Paxos.
    pub sync_times: Vec<(String, SimDuration)>,
}

/// The Fig. 6 series names, in plot order.
pub const FIG6_SERIES: [&str; 4] = ["MajorityRegions", "MajorityWNodes", "OneWNode", "PhxPaxos"];

/// Measure one Fig. 6 point: a single file of `size` bytes synchronized
/// alone (no queueing from other files), under each predicate and under
/// the multi-Paxos baseline on the same topology.
pub fn fig6_point(size: u64, seed: u64) -> Fig6Point {
    let cfg = ec2_backup_cfg();
    let mut sim = build_backup(&cfg, NetTopology::ec2_fig2(), seed).expect("cfg valid");
    let span = sim
        .with_ctx(0, |n, ctx| n.store_file(ctx, size))
        .expect("buffer fits one file");
    sim.run_until_idle();
    let primary = sim.actor(0);

    let mut sync_times = Vec::new();
    for key in ["MajorityRegions", "MajorityWNodes", "OneWNode"] {
        let t = primary.file_sync_times(key)[0].expect("file synchronized");
        sync_times.push((key.to_owned(), t));
    }
    sync_times.push(("PhxPaxos".to_owned(), paxos_sync_time(size, seed)));
    let _ = span;
    Fig6Point { size, sync_times }
}

/// Synchronize one file through the Paxos baseline: each 8 KiB chunk is
/// one log entry proposed at the leader (n1); the file is synchronized
/// when its last entry commits.
pub fn paxos_sync_time(size: u64, seed: u64) -> SimDuration {
    let mut sim = build_paxos(NetTopology::ec2_fig2(), seed);
    // Prepare the leader out of band (steady-state multi-Paxos).
    sim.with_ctx(0, |p, ctx| p.start_leadership_in(ctx));
    sim.run_until_idle();
    let start = sim.now();
    let chunks = size.div_ceil(CHUNK_BYTES).max(1);
    let mut last_id = 0;
    for i in 0..chunks {
        let chunk_size = if i + 1 == chunks && !size.is_multiple_of(CHUNK_BYTES) {
            (size % CHUNK_BYTES) as usize
        } else {
            CHUNK_BYTES as usize
        };
        last_id = sim.with_ctx(0, |p, ctx| p.propose_in(ctx, chunk_size));
    }
    sim.run_until_idle();
    sim.actor(0)
        .commit_time_of(last_id)
        .expect("file committed")
        .since(start)
}

/// Average improvement of `a` over `b` across Fig. 6 points, in percent
/// (the paper reports MajorityRegions improving 24.75% over PhxPaxos).
pub fn average_improvement(points: &[Fig6Point], a: &str, b: &str) -> f64 {
    let mut sum = 0.0;
    let mut n = 0.0;
    for p in points {
        let t = |name: &str| {
            p.sync_times
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, d)| d.as_secs_f64())
                .expect("series present")
        };
        sum += (t(b) - t(a)) / t(b) * 100.0;
        n += 1.0;
    }
    sum / n
}

/// The paper's Fig. 6 x-axis: file sizes from 1 KB to 100 MB.
pub fn fig6_sizes() -> Vec<u64> {
    vec![
        1 << 10,
        8 << 10,
        64 << 10,
        512 << 10,
        4 << 20,
        32 << 20,
        100 << 20,
    ]
}

/// Summarize a Fig. 5 series: mean and max latency plus the latency of
/// every `sample_every`-th message (for plotting).
pub fn summarize(latencies: &[Option<SimDuration>], sample_every: usize) -> Fig5Summary {
    let mut sum = 0.0;
    let mut n = 0u64;
    let mut max = SimDuration::ZERO;
    let mut samples = Vec::new();
    for (i, l) in latencies.iter().enumerate() {
        if let Some(l) = l {
            sum += l.as_secs_f64();
            n += 1;
            if *l > max {
                max = *l;
            }
            if i % sample_every == 0 {
                samples.push((i as u64, *l));
            }
        }
    }
    Fig5Summary {
        mean: if n > 0 {
            SimDuration::from_secs_f64(sum / n as f64)
        } else {
            SimDuration::ZERO
        },
        max,
        covered: n,
        samples,
    }
}

/// Aggregates of one Fig. 5 series.
#[derive(Debug, Clone)]
pub struct Fig5Summary {
    /// Mean frontier latency.
    pub mean: SimDuration,
    /// Worst (spike) latency.
    pub max: SimDuration,
    /// Messages covered by the predicate by the end of the run.
    pub covered: u64,
    /// `(seq, latency)` samples for plotting.
    pub samples: Vec<(u64, SimDuration)>,
}
