//! # Dropbox-like file backup service (§V-A, §VI-B)
//!
//! The paper's flagship application: a geo-replicated file backup
//! service layered over the Stabilizer-enhanced K/V store, driven by a
//! Dropbox sync trace. This crate provides the synthetic trace generator
//! (Fig. 4 statistics), the backup service with the six Table III
//! predicates, and the Fig. 5 / Fig. 6 experiment harnesses (including
//! the multi-Paxos baseline comparison).

//! ```
//! use stabilizer_filebackup::DropboxTrace;
//!
//! let trace = DropboxTrace::generate(42, 0.05);
//! assert!(trace.total_chunks() > 10_000);
//! assert!(trace.duration().as_secs_f64() < 983.0 + 1.0);
//! ```

pub mod experiments;
pub mod service;
pub mod trace;

pub use experiments::{
    average_improvement, fig5_run, fig5_run_jittered, fig5_run_with_telemetry, fig6_point,
    fig6_sizes, paxos_sync_time, summarize, Fig5Result, Fig5Summary, Fig6Point, FIG6_SERIES,
};
pub use service::{
    build_backup, build_backup_with_telemetry, ec2_backup_cfg, BackupNode, FileSpan,
    TABLE3_PREDICATES,
};
pub use trace::{DropboxTrace, TraceRecord, CHUNK_BYTES, TRACE_SECONDS, TRACE_TOTAL_BYTES};
