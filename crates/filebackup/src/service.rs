//! The Dropbox-like file backup service (§V-A / §VI-B).
//!
//! Files are split into 8 KiB chunks, each published as one Stabilizer
//! message; a file is *synchronized under predicate P* once P's frontier
//! covers its last chunk. The service registers the six Table III
//! predicates so one trace-driven run yields every Fig. 5 series.
//!
//! For the large trace-driven experiment the service publishes chunks
//! directly on its Stabilizer stream (chunk payloads are shared buffers;
//! their content is irrelevant to synchronization behaviour). The
//! K/V-layered variant — files stored under `file/<id>/<chunk>` keys in
//! the geo K/V store, exactly as §V-A describes — is exercised at small
//! scale in `tests/backup_kv.rs`.

use crate::trace::{DropboxTrace, CHUNK_BYTES};
use bytes::Bytes;
use stabilizer_core::{
    Action, ClusterConfig, CoreError, NodeId, RuntimeObserver, SeqNo, StabilizerNode, WireMsg,
};
use stabilizer_dsl::AckTypeRegistry;
use stabilizer_netsim::{Actor, Ctx, NetTopology, SimTime, Simulation, TimerId};
use stabilizer_telemetry::{MetricsObserver, Telemetry};
use std::sync::Arc;

/// The six predicates of Table III, keyed by their paper names.
pub const TABLE3_PREDICATES: [(&str, &str); 6] = [
    (
        "OneRegion",
        "MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
    ),
    (
        "MajorityRegions",
        "KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
    ),
    (
        "AllRegions",
        "MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
    ),
    ("OneWNode", "MAX($ALLWNODES-$MYWNODE)"),
    (
        "MajorityWNodes",
        "KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)",
    ),
    ("AllWNodes", "MIN($ALLWNODES-$MYWNODE)"),
];

/// The Fig. 2 / Table I deployment configuration.
pub fn ec2_backup_cfg() -> ClusterConfig {
    let mut text = String::from(
        "az North_California n1 n2\n\
         az North_Virginia n3 n4 n5 n6\n\
         az Oregon n7\n\
         az Ohio n8\n\
         option send_buffer_bytes 8589934592\n",
    );
    for (key, src) in TABLE3_PREDICATES {
        text.push_str(&format!("predicate {key} {src}\n"));
    }
    ClusterConfig::parse(&text).expect("static config parses")
}

/// A stored file's chunk span in the primary's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSpan {
    /// First chunk's sequence number.
    pub first_seq: SeqNo,
    /// Last chunk's sequence number.
    pub last_seq: SeqNo,
    /// When the sync request was submitted.
    pub submitted_at: SimTime,
    /// File size in bytes.
    pub size: u64,
}

/// One node of the backup deployment. Node `n1` (index 0) is the primary
/// that receives all user sync requests (§VI-B: "all user write requests
/// will be sent to server No. 1").
pub struct BackupNode {
    node: StabilizerNode,
    /// Send time per own-stream sequence number (1-based index `seq-1`).
    pub send_times: Vec<SimTime>,
    /// Frontier log: `(time, predicate key, frontier)`.
    pub frontier_log: Vec<(SimTime, String, SeqNo)>,
    /// Files stored at this node, in submission order.
    pub files: Vec<FileSpan>,
    /// Trace records scheduled for publication, keyed by timer tag.
    pending_trace: Vec<crate::trace::TraceRecord>,
    full_chunk: Bytes,
    telemetry: Option<Arc<Telemetry>>,
    observer: Option<MetricsObserver>,
}

impl BackupNode {
    /// Build node `me`.
    ///
    /// # Errors
    ///
    /// Propagates predicate-compile failures.
    pub fn new(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
    ) -> Result<Self, CoreError> {
        Ok(BackupNode {
            node: StabilizerNode::new(cfg, me, acks)?,
            send_times: Vec::new(),
            frontier_log: Vec::new(),
            files: Vec::new(),
            pending_trace: Vec::new(),
            full_chunk: Bytes::from(vec![0u8; CHUNK_BYTES as usize]),
            telemetry: None,
            observer: None,
        })
    }

    /// Attach a telemetry hub: each published chunk is stamped for
    /// stability latency, and frontier advances feed the hub's per-key
    /// `stab_stability_latency_ns` histograms (a telemetry-native view
    /// of the Fig. 5 series).
    #[must_use]
    pub fn with_telemetry(mut self, hub: &Arc<Telemetry>) -> Self {
        self.observer = Some(hub.observer(self.node.me()));
        self.telemetry = Some(Arc::clone(hub));
        self
    }

    /// Store a file of `size` bytes: split into 8 KiB chunks and publish
    /// each as one message. Returns the file's span.
    ///
    /// # Errors
    ///
    /// Backpressure if the send buffer cannot hold the file.
    pub fn store_file(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        size: u64,
    ) -> Result<FileSpan, CoreError> {
        let chunks = size.div_ceil(CHUNK_BYTES).max(1);
        let mut first = 0;
        let mut last = 0;
        for i in 0..chunks {
            let payload = if i + 1 == chunks && !size.is_multiple_of(CHUNK_BYTES) {
                // Final partial chunk: exact size for faithful bandwidth
                // accounting.
                self.full_chunk.slice(0..(size % CHUNK_BYTES) as usize)
            } else {
                self.full_chunk.clone()
            };
            let payload_len = payload.len();
            let seq = self.node.publish(payload)?;
            if let Some(t) = &self.telemetry {
                t.note_publish(ctx.now().as_nanos(), self.node.me(), seq, payload_len);
            }
            self.send_times.push(ctx.now());
            if i == 0 {
                first = seq;
            }
            last = seq;
        }
        self.drain(ctx);
        let span = FileSpan {
            first_seq: first,
            last_seq: last,
            submitted_at: ctx.now(),
            size,
        };
        self.files.push(span);
        Ok(span)
    }

    /// Schedule an entire trace for publication at its offsets (call once
    /// on the primary before running the simulation).
    pub fn schedule_trace(&mut self, ctx: &mut Ctx<'_, WireMsg>, trace: &DropboxTrace) {
        for rec in trace.records() {
            let tag = self.pending_trace.len() as u64;
            self.pending_trace.push(*rec);
            ctx.set_timer(rec.offset, tag);
        }
    }

    /// The embedded Stabilizer node.
    pub fn stabilizer(&self) -> &StabilizerNode {
        &self.node
    }

    /// For each own-stream sequence number (0-based `seq-1`), the first
    /// time `key`'s frontier covered it.
    pub fn coverage(&self, key: &str) -> Vec<Option<SimTime>> {
        let mut out = vec![None; self.send_times.len()];
        let mut covered = 0usize;
        for (t, k, seq) in &self.frontier_log {
            if k != key {
                continue;
            }
            let upto = (*seq as usize).min(out.len());
            while covered < upto {
                out[covered] = Some(*t);
                covered += 1;
            }
        }
        out
    }

    /// Per-message stability-frontier latency series for `key` (Fig. 5):
    /// `latency[seq-1] = cover_time - send_time`.
    pub fn frontier_latencies(&self, key: &str) -> Vec<Option<stabilizer_netsim::SimDuration>> {
        self.coverage(key)
            .iter()
            .zip(&self.send_times)
            .map(|(cover, sent)| cover.map(|c| c.since(*sent)))
            .collect()
    }

    /// Per-file synchronization time under `key` (Fig. 6): cover time of
    /// the file's last chunk minus its submission time.
    pub fn file_sync_times(&self, key: &str) -> Vec<Option<stabilizer_netsim::SimDuration>> {
        let cover = self.coverage(key);
        self.files
            .iter()
            .map(|f| {
                cover
                    .get(f.last_seq as usize - 1)
                    .copied()
                    .flatten()
                    .map(|c| c.since(f.submitted_at))
            })
            .collect()
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        for action in self.node.take_actions() {
            match action {
                Action::Send { to, msg } => ctx.send(to.0 as usize, msg),
                Action::Frontier(u) => {
                    if let Some(obs) = &mut self.observer {
                        obs.on_frontier(ctx.now().as_nanos(), &u);
                    }
                    self.frontier_log.push((ctx.now(), u.key, u.seq));
                }
                Action::Deliver {
                    origin,
                    seq,
                    payload,
                } => {
                    if let Some(obs) = &mut self.observer {
                        obs.on_deliver(ctx.now().as_nanos(), origin, seq, &payload);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for BackupNode {
    type Msg = WireMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, WireMsg>, from: usize, msg: WireMsg) {
        self.node
            .on_message(ctx.now().as_nanos(), NodeId(from as u16), msg);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WireMsg>, _t: TimerId, tag: u64) {
        if let Some(rec) = self.pending_trace.get(tag as usize).copied() {
            // Sync request arrives: store the file. The 8 GiB buffer is
            // sized so the trace never blocks; a failure here would be an
            // experiment-setup bug.
            self.store_file(ctx, rec.size)
                .expect("send buffer sized for the trace");
        }
    }
}

/// Build the Fig. 2 backup deployment over `net`.
///
/// # Errors
///
/// Propagates configuration and predicate-compile errors.
///
/// # Panics
///
/// Panics if sizes mismatch.
pub fn build_backup(
    cfg: &ClusterConfig,
    net: NetTopology,
    seed: u64,
) -> Result<Simulation<BackupNode>, CoreError> {
    build_backup_with_telemetry(cfg, net, seed, None)
}

/// [`build_backup`] with every node reporting into a shared telemetry
/// hub.
///
/// # Errors
///
/// Propagates configuration and predicate-compile errors.
///
/// # Panics
///
/// Panics if sizes mismatch.
pub fn build_backup_with_telemetry(
    cfg: &ClusterConfig,
    net: NetTopology,
    seed: u64,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<Simulation<BackupNode>, CoreError> {
    assert_eq!(net.len(), cfg.num_nodes());
    let acks = Arc::new(AckTypeRegistry::new());
    let mut nodes = Vec::with_capacity(cfg.num_nodes());
    for i in 0..cfg.num_nodes() {
        let mut node = BackupNode::new(cfg.clone(), NodeId(i as u16), Arc::clone(&acks))?;
        if let Some(hub) = &telemetry {
            node = node.with_telemetry(hub);
        }
        nodes.push(node);
    }
    Ok(Simulation::new(net, nodes, seed))
}
