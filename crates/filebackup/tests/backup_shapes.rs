//! Shape tests for the §VI-B experiments at reduced trace scale: the
//! Fig. 5 ordering and spike structure, and the Fig. 6 Paxos comparison.

use stabilizer_filebackup::{average_improvement, fig5_run, fig6_point, summarize};

#[test]
fn fig5_predicate_ordering_holds_under_the_trace() {
    let r = fig5_run(0.02, 42);
    assert!(r.messages > 1000, "trace too small: {}", r.messages);
    let mean = |name: &str| {
        let (_, lat) = r.series.iter().find(|(k, _)| k == name).unwrap();
        summarize(lat, 1000).mean.as_secs_f64()
    };
    // Weaker consistency stabilizes no later on average.
    assert!(mean("OneRegion") <= mean("MajorityRegions") + 1e-9);
    assert!(mean("MajorityRegions") <= mean("AllRegions") + 1e-9);
    assert!(mean("OneWNode") <= mean("MajorityWNodes") + 1e-9);
    assert!(mean("MajorityWNodes") <= mean("AllWNodes") + 1e-9);
    // The paper's §VI-B observation: MajorityWNodes is more vulnerable
    // to the load spikes than MajorityRegions.
    assert!(mean("MajorityRegions") < mean("MajorityWNodes"));
}

#[test]
fn fig5_every_message_is_eventually_covered() {
    let r = fig5_run(0.01, 7);
    for (key, lat) in &r.series {
        let s = summarize(lat, 1_000_000);
        assert_eq!(s.covered, r.messages, "{key} left messages uncovered");
    }
}

#[test]
fn fig5_spikes_appear_in_strong_predicates() {
    let r = fig5_run(0.02, 42);
    let (_, all_nodes) = r.series.iter().find(|(k, _)| k == "AllWNodes").unwrap();
    let s = summarize(all_nodes, 1000);
    // Large-file bursts back the WAN links up: worst-case latency is far
    // above the mean (the three spikes of Fig. 5).
    assert!(
        s.max.as_secs_f64() > 4.0 * s.mean.as_secs_f64(),
        "no spike: mean {} max {}",
        s.mean,
        s.max
    );
}

#[test]
fn fig6_majority_regions_beats_paxos_and_gap_grows() {
    let small = fig6_point(64 * 1024, 1);
    let large = fig6_point(8 * 1024 * 1024, 1);
    let get = |p: &stabilizer_filebackup::Fig6Point, name: &str| {
        p.sync_times
            .iter()
            .find(|(k, _)| k == name)
            .unwrap()
            .1
            .as_secs_f64()
    };
    // MajorityRegions < PhxPaxos at every size.
    assert!(get(&small, "MajorityRegions") < get(&small, "PhxPaxos"));
    assert!(get(&large, "MajorityRegions") < get(&large, "PhxPaxos"));
    // PhxPaxos ≈ MajorityWNodes (the curves "mostly overlap").
    let ratio = get(&large, "PhxPaxos") / get(&large, "MajorityWNodes");
    assert!(
        (0.7..1.4).contains(&ratio),
        "Paxos/MajorityWNodes ratio {ratio}"
    );
    // The absolute gap grows with file size (the paper: "this
    // difference becomes larger as the file becomes larger"; on its
    // log-log axes the nearly parallel curves diverge in absolute
    // seconds as transfers become bandwidth-bound).
    let abs_gap =
        |p: &stabilizer_filebackup::Fig6Point| get(p, "PhxPaxos") - get(p, "MajorityRegions");
    assert!(
        abs_gap(&large) > 10.0 * abs_gap(&small),
        "absolute gap did not grow: {} vs {}",
        abs_gap(&small),
        abs_gap(&large)
    );
    // OneWNode is fastest.
    assert!(get(&large, "OneWNode") < get(&large, "MajorityRegions"));
}

#[test]
fn fig6_average_improvement_is_in_the_papers_ballpark() {
    // The paper reports 24.75% average end-to-end improvement of
    // MajorityRegions over PhxPaxos across its file-size sweep. Exact
    // percentages depend on the testbed; we assert a substantial
    // improvement with the same sign and order of magnitude.
    let points: Vec<_> = [64 << 10, 512 << 10, 4 << 20, 16 << 20]
        .iter()
        .map(|s| fig6_point(*s, 2))
        .collect();
    let imp = average_improvement(&points, "MajorityRegions", "PhxPaxos");
    assert!((10.0..60.0).contains(&imp), "improvement {imp}%");
}

#[test]
fn jittered_trace_run_still_covers_everything() {
    let r = stabilizer_filebackup::fig5_run_jittered(0.01, 3.0, 11);
    for (key, lat) in &r.series {
        let s = stabilizer_filebackup::summarize(lat, usize::MAX);
        assert_eq!(
            s.covered, r.messages,
            "{key} left messages uncovered under jitter"
        );
    }
}
