//! The telemetry-native view of the Fig. 5 experiment: the hub's
//! stability-latency histograms agree with the returned series.

use stabilizer_filebackup::{fig5_run_with_telemetry, summarize, TABLE3_PREDICATES};
use stabilizer_telemetry::Telemetry;

#[test]
fn fig5_with_telemetry_fills_per_key_histograms() {
    let hub = Telemetry::new_sim();
    let r = fig5_run_with_telemetry(0.01, 7, &hub);
    assert!(r.messages > 0);
    for (key, series) in &r.series {
        let covered = summarize(series, usize::MAX).covered;
        let hist = hub
            .stability_latency(key)
            .unwrap_or_else(|| panic!("{key} histogram exists"));
        assert_eq!(
            hist.count, covered,
            "{key}: histogram samples match covered messages"
        );
    }
    assert_eq!(r.series.len(), TABLE3_PREDICATES.len());

    // The primary's publish counter saw every chunk.
    let snap = hub.registry().snapshot();
    let publishes = snap
        .counters
        .get(&("stab_publishes_total".to_owned(), "node=\"0\"".to_owned()))
        .copied()
        .unwrap_or(0);
    assert_eq!(publishes, r.messages);
}
