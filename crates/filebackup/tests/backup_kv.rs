//! Small-scale check of the §V-A layering: files stored as chunk records
//! in the geo-replicated K/V store under `file/<id>/<chunk>` keys, with
//! a stability predicate gating when the backup is considered durable.

use bytes::Bytes;
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_filebackup::CHUNK_BYTES;
use stabilizer_kvstore::build_kv_cluster;
use stabilizer_netsim::NetTopology;

#[test]
fn file_chunks_layer_over_the_kv_store() {
    let cfg = ClusterConfig::parse(
        "az North_California n1 n2\n\
         az North_Virginia n3 n4 n5 n6\n\
         az Oregon n7\n\
         az Ohio n8\n\
         predicate MajorityRegions KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))\n",
    )
    .unwrap();
    let mut sim = build_kv_cluster(&cfg, NetTopology::ec2_fig2(), 9).unwrap();

    // A 20 KiB file becomes three chunk records.
    let file: Vec<u8> = (0..20 * 1024).map(|i| (i % 251) as u8).collect();
    let chunks: Vec<&[u8]> = file.chunks(CHUNK_BYTES as usize).collect();
    let mut last_seq = 0;
    for (i, chunk) in chunks.iter().enumerate() {
        last_seq = sim
            .with_ctx(0, |kv, ctx| {
                kv.put_in(ctx, &format!("file/42/{i}"), Bytes::copy_from_slice(chunk))
            })
            .unwrap();
    }
    // Wait (in virtual time) for the chosen durability level.
    let token = sim
        .with_ctx(0, |kv, ctx| kv.waitfor_in(ctx, "MajorityRegions", last_seq))
        .unwrap();
    sim.run_until_idle();
    assert!(sim
        .actor(0)
        .completed_waits()
        .iter()
        .any(|(_, t)| *t == token));

    // Any mirror can reassemble the file byte-for-byte.
    let mirror = sim.actor(7);
    let mut reassembled = Vec::new();
    for i in 0..chunks.len() {
        reassembled.extend_from_slice(
            &mirror
                .get(NodeId(0), &format!("file/42/{i}"))
                .expect("chunk mirrored"),
        );
    }
    assert_eq!(reassembled, file);
}
