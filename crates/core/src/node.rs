//! The Stabilizer node: a sans-IO state machine combining the data plane
//! (sequencing, buffering, FIFO delivery) and the control plane (ACK
//! recorder, stability-frontier engine, failure suspicion).
//!
//! All I/O and time are injected: drivers feed [`StabilizerNode::on_message`]
//! and the timer callbacks, and collect [`Action`]s to execute (send a
//! message, deliver an upcall, report a frontier advance). The same state
//! machine therefore runs unchanged under the deterministic simulator
//! (`sim_driver`) and the threaded TCP runtime (`stabilizer-transport`) —
//! the control-plane/data-plane separation of §III-A is structural, not
//! an artifact of a particular runtime.

use crate::config::{AnalysisMode, ClusterConfig};
use crate::data_plane::{ReceiveState, SendBuffer};
use crate::error::CoreError;
use crate::frontier::{FrontierEngine, FrontierUpdate, WaitToken};
use crate::messages::{Ack, WireMsg};
use crate::recorder::AckRecorder;
use bytes::Bytes;
use stabilizer_analyze::{AckEmissions, Analyzer, Report};
use stabilizer_dsl::{
    AckTypeId, AckTypeRegistry, NodeId, Predicate, SeqNo, DELIVERED, PERSISTED, RECEIVED,
};
use stabilizer_place::PlacementMap;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Effects requested by the state machine, executed by the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Transmit `msg` to peer `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: WireMsg,
    },
    /// Deliver a mirrored payload to the local application (upcall).
    Deliver {
        /// Stream origin.
        origin: NodeId,
        /// Sequence number within the stream.
        seq: SeqNo,
        /// The payload.
        payload: Bytes,
    },
    /// A stability frontier advanced (or regenerated after a predicate
    /// change); drivers invoke `monitor_stability_frontier` lambdas here.
    Frontier(FrontierUpdate),
    /// A `waitfor` call completed.
    WaitDone {
        /// The token returned by [`StabilizerNode::waitfor`].
        token: WaitToken,
    },
    /// A peer has gone silent past the failure timeout (§III-E).
    Suspected {
        /// The suspect.
        node: NodeId,
    },
    /// A previously suspected peer produced traffic again and was
    /// un-suspected (and, under `auto_exclude_suspects`, reinstated into
    /// the predicates it had been excluded from).
    Recovered {
        /// The returning node.
        node: NodeId,
    },
    /// Auto-exclusion could not rewrite this predicate (it would become
    /// empty); the application must change or unregister it.
    PredicateBroken {
        /// Stream of the broken predicate.
        stream: NodeId,
        /// Its key.
        key: String,
    },
    /// A stream was fast-forwarded out of band (§III-E state transfer):
    /// local delivery resumes after `seq` without the skipped prefix
    /// passing through the normal upcall path. External checkers use
    /// this to adjust their delivery-prefix accounting; the sharded
    /// layer reads `app_mark` (the donor's opaque application-state
    /// hook) to fast-forward its global sequence mapping.
    CatchUp {
        /// The fast-forwarded stream.
        stream: NodeId,
        /// Delivery resumes after this sequence.
        seq: SeqNo,
        /// The donor's application-state mark (`0` when the jump did not
        /// come from a transfer snapshot).
        app_mark: u64,
    },
}

/// Donor-side state of one outbound catch-up session. Keyed by
/// requester: a donor only ever replays its *own* stream (it is the only
/// stream whose payloads it stores).
#[derive(Debug)]
struct OutboundTransfer {
    /// Chunks at or below this are acknowledged by the requester.
    acked: SeqNo,
    /// Next chunk to send.
    next: SeqNo,
    /// Last chunk of the session (the stream head at request time).
    high: SeqNo,
}

/// Requester-side state of one inbound catch-up session, keyed by the
/// stream (whose origin is also the donor).
#[derive(Debug)]
struct InboundTransfer {
    /// Session target (`SeqNo::MAX` until the snapshot arrives).
    high: SeqNo,
    /// Delivered position when progress was last observed.
    last_delivered: SeqNo,
    /// When progress was last observed; a stalled session re-issues its
    /// request on the transfer tick.
    last_nanos: u64,
}

/// A consistent snapshot of the control-plane state, for crash recovery
/// via the integrated storage system (§III-E: "the Derecho object store
/// can also persist the stability frontier information").
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The ACK table.
    pub recorder: AckRecorder,
    /// Highest sequence number this node assigned to its own stream.
    pub last_assigned: SeqNo,
}

/// The Stabilizer library instance for one WAN node.
#[derive(Debug)]
pub struct StabilizerNode {
    me: NodeId,
    cfg: ClusterConfig,
    acks: Arc<AckTypeRegistry>,
    /// Link peers: every other node sharing at least one stream with
    /// `me` (everyone, under the default full replication). Heartbeats,
    /// failure detection, and ACK routing are scoped to these.
    peers: Vec<NodeId>,
    /// Replicas of this node's own stream other than `me` — the
    /// data-plane fan-out (publish, retransmit) targets.
    data_peers: Vec<NodeId>,
    /// The stream → replica-set placement (partial replication). Cloned
    /// from the config at construction.
    placement: Arc<PlacementMap>,
    recorder: AckRecorder,
    engine: FrontierEngine,
    send_buf: SendBuffer,
    recv: Vec<ReceiveState>,
    /// Coalesced outgoing stability reports: newest value per cell.
    pending_acks: BTreeMap<(NodeId, AckTypeId), SeqNo>,
    last_heard_nanos: Vec<u64>,
    suspected: Vec<bool>,
    next_token: WaitToken,
    actions: Vec<Action>,
    /// Original DSL sources per (stream, key), kept so predicates can be
    /// restored verbatim when an excluded node rejoins. Ordered map:
    /// `reinstate_node` iterates it and emits frontier updates, whose
    /// order must be stable across processes for deterministic replay.
    predicate_sources: std::collections::BTreeMap<(NodeId, String), String>,
    /// Analyzer findings recorded at install time per (stream, key) when
    /// `option analysis` is `warn` or `deny` (a deny-mode install only
    /// succeeds — and is only recorded — when clean).
    analysis_reports: std::collections::BTreeMap<(NodeId, String), Report>,
    /// Exact crash tolerance `f*` per installed (stream, key), computed
    /// by the availability prover against the predicate as restricted to
    /// the stream's replica set. `-1` means blocked even with zero
    /// crashes; `num_nodes - 1` means no crash set can block it.
    predicate_tolerance: std::collections::BTreeMap<(NodeId, String), i64>,
    metrics: Metrics,
    /// Per-peer: `(last received-ack seen, nanos when it last advanced)`,
    /// for the retransmission timeout.
    retransmit_state: Vec<(SeqNo, u64)>,
    /// Per-stream: `(delivered position at the last transfer tick, nanos
    /// when it last advanced)`, for catch-up-on-lag detection: a node
    /// that stays behind an origin's self-acknowledged sequence with no
    /// inbound session open requests a transfer itself.
    lag_state: Vec<(SeqNo, u64)>,
    /// Inbound catch-up sessions (this node recovering), keyed by stream.
    transfer_in: BTreeMap<NodeId, InboundTransfer>,
    /// Outbound catch-up sessions (this node as donor), keyed by
    /// requester.
    transfer_out: BTreeMap<NodeId, OutboundTransfer>,
    /// Opaque application-state mark carried in outgoing transfer
    /// snapshots (§III-E's app-state hook).
    app_mark: u64,
}

/// Traffic counters, split by plane (the §III-A separation is observable
/// in the numbers: control messages stay small and coalescible while the
/// data plane moves the volume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Data messages sent (to all peers combined).
    pub data_msgs_sent: u64,
    /// Data payload bytes sent.
    pub data_bytes_sent: u64,
    /// Control (ACK batch + heartbeat) messages sent.
    pub control_msgs_sent: u64,
    /// Individual ACK cells carried in those batches.
    pub acks_sent: u64,
    /// Data messages delivered to the application.
    pub deliveries: u64,
    /// ACK cells received and merged.
    pub acks_received: u64,
    /// Stale/duplicate ACK cells ignored by the max-merge.
    pub acks_stale: u64,
    /// Data messages retransmitted by the reliability mechanism.
    pub retransmits: u64,
    /// Predicate evaluations performed by the frontier engine
    /// (registration, change, and incremental re-evaluation).
    pub predicate_evals: u64,
    /// Frontier-advance actions emitted.
    pub frontier_updates: u64,
    /// Catch-up requests served as a donor (§III-E state transfer).
    pub transfer_requests: u64,
    /// Catch-up chunks replayed to requesters.
    pub transfer_chunks_sent: u64,
    /// Payload bytes replayed to requesters.
    pub transfer_bytes_sent: u64,
    /// Catch-up chunks received from donors.
    pub transfer_chunks_received: u64,
    /// Streams fast-forwarded out of band (snapshot jumps over an
    /// evicted prefix).
    pub transfer_fast_forwards: u64,
}

impl StabilizerNode {
    /// Create the node `me`, registering the configuration file's
    /// predicates for this node's own stream.
    ///
    /// # Errors
    ///
    /// Fails if a configured predicate does not compile.
    pub fn new(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
    ) -> Result<Self, CoreError> {
        let n = cfg.num_nodes();
        let placement = cfg.placement().clone();
        let peers: Vec<NodeId> = cfg
            .peers(me)
            .into_iter()
            .filter(|p| placement.linked(me, *p))
            .collect();
        let data_peers = placement.replica_peers(me, me);
        // Configured application ACK types exist before any predicate
        // compiles (or is analyzed) against them.
        for (name, _) in cfg.ack_types() {
            acks.register(name);
        }
        let mut node = StabilizerNode {
            me,
            recorder: AckRecorder::new(n, acks.len()),
            engine: FrontierEngine::new(),
            send_buf: SendBuffer::with_retention(
                cfg.options().send_buffer_bytes,
                cfg.options().retain_log_bytes,
            ),
            recv: (0..n).map(|_| ReceiveState::new()).collect(),
            pending_acks: BTreeMap::new(),
            last_heard_nanos: vec![0; n],
            suspected: vec![false; n],
            next_token: 1,
            actions: Vec::new(),
            predicate_sources: std::collections::BTreeMap::new(),
            analysis_reports: std::collections::BTreeMap::new(),
            predicate_tolerance: std::collections::BTreeMap::new(),
            metrics: Metrics::default(),
            retransmit_state: vec![(0, 0); n],
            lag_state: vec![(0, 0); n],
            transfer_in: BTreeMap::new(),
            transfer_out: BTreeMap::new(),
            app_mark: 0,
            peers,
            data_peers,
            placement,
            acks,
            cfg,
        };
        let configured: Vec<(String, String)> = node
            .cfg
            .predicates()
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        for (key, source) in configured {
            node.register_predicate(me, &key, &source)?;
        }
        Ok(node)
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The ACK-type registry shared with the application.
    pub fn ack_types(&self) -> &Arc<AckTypeRegistry> {
        &self.acks
    }

    /// The stream → replica-set placement this node runs under.
    pub fn placement(&self) -> &Arc<PlacementMap> {
        &self.placement
    }

    /// Link peers: nodes this node exchanges any traffic with (they
    /// share at least one stream). Every other node, under the default
    /// full replication.
    pub fn link_peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Data-plane fan-out targets: replicas of this node's own stream,
    /// excluding itself.
    pub fn data_peers(&self) -> &[NodeId] {
        &self.data_peers
    }

    /// Read-only view of the ACK recorder (Fig. 1's table).
    pub fn recorder(&self) -> &AckRecorder {
        &self.recorder
    }

    /// Start journaling recorder writes (see
    /// [`AckRecorder::enable_journal`]); used by incremental external
    /// checkers. Idempotent.
    pub fn enable_ack_journal(&mut self) {
        self.recorder.enable_journal();
    }

    /// Drain the coordinates of every recorder cell written since the
    /// last drain. Empty when journaling was never enabled.
    pub fn take_ack_journal(&mut self) -> Vec<crate::recorder::DirtyCell> {
        self.recorder.take_journal()
    }

    /// Drain the pending actions for the driver to execute, in order.
    pub fn take_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// True if any actions are pending.
    pub fn has_actions(&self) -> bool {
        !self.actions.is_empty()
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Publish a payload on this node's stream: assign the next sequence
    /// number, buffer for retransmission, send to every peer, and apply
    /// the origin self-acknowledgment rule (§III-C).
    ///
    /// # Errors
    ///
    /// [`CoreError::PayloadTooLarge`] or [`CoreError::WouldBlock`] (send
    /// buffer full — retry once the frontier advances).
    pub fn publish(&mut self, payload: Bytes) -> Result<SeqNo, CoreError> {
        let max = self.cfg.options().max_payload_bytes;
        if payload.len() > max {
            return Err(CoreError::PayloadTooLarge {
                size: payload.len(),
                max,
            });
        }
        let seq = self.send_buf.publish(payload.clone())?;
        for &peer in &self.data_peers {
            self.metrics.data_msgs_sent += 1;
            self.metrics.data_bytes_sent += payload.len() as u64;
            self.actions.push(Action::Send {
                to: peer,
                msg: WireMsg::Data {
                    origin: self.me,
                    seq,
                    payload: payload.clone(),
                },
            });
        }
        // Origin self-ack: every stability level holds at the origin.
        if self.recorder.observe_all_types(self.me, self.me, seq) {
            for ty in 0..self.recorder.num_types() as u16 {
                self.advance(self.me, self.me, AckTypeId(ty));
                self.queue_ack(self.me, AckTypeId(ty), seq);
            }
        }
        self.maybe_flush_eager();
        Ok(seq)
    }

    /// Highest sequence number assigned to this node's own stream.
    pub fn last_published(&self) -> SeqNo {
        self.send_buf.last_assigned()
    }

    /// Bytes currently held in the send buffer.
    pub fn send_buffer_bytes(&self) -> usize {
        self.send_buf.bytes()
    }

    /// Oldest own-stream sequence still replayable for §III-E catch-up
    /// (live window plus retained log).
    pub fn first_replayable(&self) -> SeqNo {
        self.send_buf.first_replayable()
    }

    /// Payload for a still-buffered own-stream message (transport resend).
    pub fn buffered_payload(&self, seq: SeqNo) -> Option<Bytes> {
        self.send_buf.get(seq).cloned()
    }

    /// Re-emit `Send` actions for every buffered own-stream message at or
    /// after `from`, to `peer` — used when a transport reconnects and must
    /// restore lossless FIFO.
    pub fn resend_from(&mut self, peer: NodeId, from: SeqNo) {
        if !self.placement.is_replica(self.me, peer) {
            return; // non-replicas never receive this stream
        }
        let me = self.me;
        let msgs: Vec<(SeqNo, Bytes)> = self
            .send_buf
            .iter_from(from)
            .map(|(s, p)| (s, p.clone()))
            .collect();
        for (seq, payload) in msgs {
            self.actions.push(Action::Send {
                to: peer,
                msg: WireMsg::Data {
                    origin: me,
                    seq,
                    payload,
                },
            });
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Process an incoming wire message. `now_nanos` drives failure
    /// detection bookkeeping.
    pub fn on_message(&mut self, now_nanos: u64, from: NodeId, msg: WireMsg) {
        self.heard(from, now_nanos);
        match msg {
            WireMsg::Data {
                origin,
                seq,
                payload,
            } => self.on_data(origin, seq, payload),
            WireMsg::AckBatch(acks) => self.on_acks(from, &acks),
            WireMsg::Heartbeat => {}
            WireMsg::TransferRequest { stream, have } => {
                self.on_transfer_request(from, stream, have)
            }
            WireMsg::TransferSnapshot {
                stream,
                base,
                high,
                acks,
                app_mark,
            } => self.on_transfer_snapshot(now_nanos, from, stream, base, high, &acks, app_mark),
            WireMsg::TransferChunk {
                stream,
                seq,
                payload,
                ..
            } => self.on_transfer_chunk(now_nanos, from, stream, seq, payload),
            WireMsg::TransferAck { stream, through } => self.on_transfer_ack(from, stream, through),
        }
        self.maybe_flush_eager();
    }

    fn on_data(&mut self, origin: NodeId, seq: SeqNo, payload: Bytes) {
        if origin == self.me || origin.0 as usize >= self.recv.len() {
            return; // nonsensical: we are the origin, or unknown stream
        }
        if !self.placement.is_replica(origin, self.me) {
            return; // not a replica of this stream: never receive or ack it
        }
        let delivered = self.recv[origin.0 as usize].on_data(seq, payload);
        if delivered.is_empty() {
            // A duplicate of an already-delivered message means the
            // sender has not seen our ACK (it was lost): re-announce the
            // current counters so the retransmission loop terminates.
            let current = self.recv[origin.0 as usize].delivered();
            if seq <= current {
                for ty in [RECEIVED, PERSISTED, DELIVERED] {
                    let level = self.recorder.get(origin, self.me, ty);
                    if level > 0 {
                        self.queue_ack(origin, ty, level);
                    }
                }
            }
            return;
        }
        let high = delivered.last().map(|(s, _)| *s).unwrap_or(0);
        for (seq, payload) in delivered {
            self.metrics.deliveries += 1;
            self.actions.push(Action::Deliver {
                origin,
                seq,
                payload,
            });
        }
        // This node now holds, has persisted, and has delivered the
        // prefix up to `high` (persistence is the local storage layer's
        // write, done by the driver before acks flush in a real system;
        // the built-in levels move together here and custom levels are
        // reported via `report_stability`).
        for ty in [RECEIVED, PERSISTED, DELIVERED] {
            if self.recorder.observe(origin, self.me, ty, high) {
                self.advance(origin, self.me, ty);
                self.queue_ack(origin, ty, high);
            }
        }
    }

    fn on_acks(&mut self, from: NodeId, acks: &[Ack]) {
        for ack in acks {
            if ack.stream.0 as usize >= self.recv.len()
                || ack.ty.0 as usize >= self.recorder.num_types()
            {
                continue; // unknown stream/type: ignore (monotonic data, safe to drop)
            }
            if !self.placement.is_replica(ack.stream, from)
                || !self.placement.is_replica(ack.stream, self.me)
            {
                // A non-replica has no standing to ack a stream, and a
                // non-replica of the stream has no use for the cell:
                // the recorder only ever holds replica columns.
                continue;
            }
            if self.recorder.observe(ack.stream, from, ack.ty, ack.seq) {
                self.metrics.acks_received += 1;
                self.advance(ack.stream, from, ack.ty);
                if ack.stream == self.me && ack.ty == RECEIVED {
                    self.try_reclaim();
                }
            } else {
                self.metrics.acks_stale += 1;
            }
        }
    }

    fn try_reclaim(&mut self) {
        // Reclaim once every live replica has received a prefix (only
        // replicas ever receive this stream). Suspected nodes are
        // excluded so a dead peer cannot pin the buffer.
        let live: Vec<NodeId> = self
            .placement
            .replicas(self.me)
            .iter()
            .copied()
            .filter(|n| !self.suspected[n.0 as usize])
            .collect();
        let min = self.recorder.min_over(self.me, RECEIVED, &live);
        self.send_buf.reclaim(min);
    }

    /// Declare that this node obtained `origin`'s stream up to `seq` out
    /// of band — the §III-E state-transfer path: after an absence long
    /// enough that the origin reclaimed its buffer, the returning mirror
    /// recovers the data from the integrated storage system (e.g. a WAL
    /// shipped from a peer) and resumes live delivery from `seq + 1`.
    /// Parked out-of-order messages beyond `seq` are released in order.
    pub fn fast_forward_stream(&mut self, origin: NodeId, seq: SeqNo) {
        self.fast_forward_inner(origin, seq, 0);
    }

    fn fast_forward_inner(&mut self, origin: NodeId, seq: SeqNo, app_mark: u64) {
        if origin == self.me
            || origin.0 as usize >= self.recv.len()
            || !self.placement.is_replica(origin, self.me)
        {
            return;
        }
        let before = self.recv[origin.0 as usize].delivered();
        let released = self.recv[origin.0 as usize].fast_forward(seq);
        if seq > before {
            // Announce the jump before the released deliveries so
            // checkers see the adjusted prefix first.
            self.metrics.transfer_fast_forwards += 1;
            self.actions.push(Action::CatchUp {
                stream: origin,
                seq,
                app_mark,
            });
        }
        let high = released
            .last()
            .map(|(s, _)| *s)
            .unwrap_or(self.recv[origin.0 as usize].delivered());
        for (seq, payload) in released {
            self.metrics.deliveries += 1;
            self.actions.push(Action::Deliver {
                origin,
                seq,
                payload,
            });
        }
        for ty in [RECEIVED, PERSISTED, DELIVERED] {
            if self.recorder.observe(origin, self.me, ty, high) {
                self.advance(origin, self.me, ty);
                self.queue_ack(origin, ty, high);
            }
        }
        self.maybe_flush_eager();
    }

    // ------------------------------------------------------------------
    // Control plane API (§III-D interfaces)
    // ------------------------------------------------------------------

    /// Register a new predicate under `key` for `stream`, compiled at
    /// this node (the paper's `register_predicate`).
    ///
    /// # Errors
    ///
    /// Propagates DSL compile errors, and under `option analysis deny`
    /// returns [`CoreError::PredicateRejected`] for any predicate with
    /// error- or warning-level analyzer findings.
    pub fn register_predicate(
        &mut self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        let report = self.run_analysis(stream, key, source)?;
        let pred = Predicate::compile(source, self.cfg.topology(), &self.acks, self.me)?
            .restricted_to(self.placement.replicas(stream))?;
        let tolerance = self.compute_tolerance(&pred);
        let mut updates = Vec::new();
        let mut done = Vec::new();
        self.engine
            .register(stream, key, pred, &self.recorder, &mut updates, &mut done);
        self.predicate_tolerance
            .insert((stream, key.to_owned()), tolerance);
        self.predicate_sources
            .insert((stream, key.to_owned()), source.to_owned());
        if let Some(report) = report {
            self.analysis_reports
                .insert((stream, key.to_owned()), report);
        }
        self.emit(updates, done);
        Ok(())
    }

    /// Replace the predicate under `key` (the paper's `change_predicate`),
    /// bumping its generation.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] if the key was never registered, a
    /// DSL compile error, or (under `option analysis deny`)
    /// [`CoreError::PredicateRejected`].
    pub fn change_predicate(
        &mut self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        let report = self.run_analysis(stream, key, source)?;
        let pred = Predicate::compile(source, self.cfg.topology(), &self.acks, self.me)?
            .restricted_to(self.placement.replicas(stream))?;
        let tolerance = self.compute_tolerance(&pred);
        let mut updates = Vec::new();
        let mut done = Vec::new();
        if !self
            .engine
            .change(stream, key, pred, &self.recorder, &mut updates, &mut done)
        {
            return Err(CoreError::UnknownPredicate(key.to_owned()));
        }
        self.predicate_tolerance
            .insert((stream, key.to_owned()), tolerance);
        self.predicate_sources
            .insert((stream, key.to_owned()), source.to_owned());
        if let Some(report) = report {
            self.analysis_reports
                .insert((stream, key.to_owned()), report);
        }
        self.emit(updates, done);
        Ok(())
    }

    /// The analyzer findings recorded when `(stream, key)` was installed,
    /// if analysis is enabled (`option analysis warn|deny`) and the
    /// predicate is currently registered with findings on record.
    pub fn analysis_report(&self, stream: NodeId, key: &str) -> Option<&Report> {
        self.analysis_reports.get(&(stream, key.to_owned()))
    }

    /// Exact crash tolerance `f*` recorded when `(stream, key)` was
    /// installed: the largest number of non-origin crashes the predicate
    /// survives at this vantage (`-1` if it is blocked outright,
    /// `num_nodes - 1` if no crash set can ever block it).
    pub fn predicate_tolerance(&self, stream: NodeId, key: &str) -> Option<i64> {
        self.predicate_tolerance
            .get(&(stream, key.to_owned()))
            .copied()
    }

    /// All recorded `(stream, key) -> f*` entries, for telemetry export.
    pub fn predicate_tolerances(&self) -> impl Iterator<Item = (NodeId, &str, i64)> + '_ {
        self.predicate_tolerance
            .iter()
            .map(|((stream, key), &tol)| (*stream, key.as_str(), tol))
    }

    /// Run the availability prover on an installed (replica-restricted)
    /// predicate to get its exact crash tolerance at this vantage.
    fn compute_tolerance(&self, pred: &Predicate) -> i64 {
        stabilizer_analyze::availability(pred, self.cfg.topology(), self.me).tolerance
    }

    /// Run the static analyzer per the configured [`AnalysisMode`]:
    /// `Off` → `None`; `Warn` → `Some(report)`; `Deny` → error unless the
    /// report is clean (info-level findings tolerated). `stream` scopes
    /// the `non-replica-operand` lint to the stream's replica set.
    fn run_analysis(
        &self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<Option<Report>, CoreError> {
        let opts = self.cfg.options();
        if opts.analysis == AnalysisMode::Off {
            return Ok(None);
        }
        let mut emissions = AckEmissions::new();
        for (name, emitters) in self.cfg.ack_types() {
            if emitters.is_empty() {
                continue;
            }
            if let Some(ty) = self.acks.lookup(name) {
                let ids: Vec<NodeId> = emitters
                    .iter()
                    .filter_map(|n| self.cfg.topology().node(n))
                    .collect();
                emissions.restrict(ty, &ids);
            }
        }
        let analyzer = Analyzer::new(self.cfg.topology(), &self.acks, self.me)
            .with_emissions(&emissions)
            .with_failure_budget(opts.failure_budget as usize)
            .with_replicas(self.placement.replicas(stream));
        let report = analyzer.analyze(key, source);
        if opts.analysis == AnalysisMode::Deny && !report.is_clean() {
            return Err(CoreError::PredicateRejected {
                key: key.to_owned(),
                report: report.render_human(),
            });
        }
        Ok(Some(report))
    }

    /// Remove a predicate; any pending waiters complete immediately (with
    /// the frontier they were waiting for never confirmed) so callers are
    /// not stranded.
    pub fn unregister_predicate(&mut self, stream: NodeId, key: &str) {
        self.analysis_reports.remove(&(stream, key.to_owned()));
        self.predicate_tolerance.remove(&(stream, key.to_owned()));
        for token in self.engine.unregister(stream, key) {
            self.actions.push(Action::WaitDone { token });
        }
    }

    /// Current `(frontier, generation)` of a predicate (the K/V store's
    /// `get_stability_frontier`).
    pub fn stability_frontier(&self, stream: NodeId, key: &str) -> Option<(SeqNo, u32)> {
        self.engine.frontier(stream, key)
    }

    /// Diagnose one `(stream, key)` frontier: how far behind the highest
    /// locally-known publish it is, and — via a walk of the resolved
    /// predicate against the live ACK recorder — the minimal set of
    /// (node, ACK-type) cells holding it back. `None` if the key is not
    /// registered for the stream.
    pub fn explain_frontier(&self, stream: NodeId, key: &str) -> Option<crate::StallReport> {
        let pred = self.engine.predicate(stream, key)?;
        let (frontier, generation) = self.engine.frontier(stream, key)?;
        // The highest sequence this node knows exists on the stream: its
        // own assignment counter for the local stream, plus the best
        // `received` cell anyone has reported (the origin self-acks on
        // publish, so its own cell tracks its high watermark).
        let mut target = if stream == self.me {
            self.last_published()
        } else {
            0
        };
        for node in 0..self.recorder.num_nodes() as u16 {
            target = target.max(self.recorder.get(stream, NodeId(node), RECEIVED));
        }
        let stalled = frontier < target;
        let (blamed, unsatisfiable) = if stalled {
            crate::explain::blame_cells(&pred.resolved().expr, target, &self.recorder, stream)
        } else {
            (Vec::new(), Vec::new())
        };
        let suspected_peers: Vec<NodeId> = (0..self.suspected.len() as u16)
            .map(NodeId)
            .filter(|n| self.suspected[n.0 as usize])
            .collect();
        Some(crate::StallReport {
            stream,
            key: key.to_owned(),
            generation,
            frontier,
            target,
            stalled,
            predicate: pred.source().to_owned(),
            blamed: blamed
                .into_iter()
                .map(|(node, ty, have)| crate::BlamedCell {
                    node,
                    ack_type: ty,
                    ack_type_name: self.acks.name(ty).unwrap_or_else(|| ty.0.to_string()),
                    have,
                    need: target,
                    suspected: self.is_suspected(node),
                })
                .collect(),
            unsatisfiable,
            suspected_peers,
        })
    }

    /// [`StabilizerNode::explain_frontier`] for every registered
    /// `(stream, key)` pair, in (stream, key) order — the `/stall`
    /// endpoint body.
    pub fn explain_all(&self) -> Vec<crate::StallReport> {
        let mut out = Vec::new();
        for stream in 0..self.cfg.topology().num_nodes() as u16 {
            let stream = NodeId(stream);
            for key in self.engine.keys(stream) {
                if let Some(report) = self.explain_frontier(stream, &key) {
                    out.push(report);
                }
            }
        }
        out
    }

    /// Block until `(stream, key)`'s frontier reaches `seq`; completion is
    /// reported as [`Action::WaitDone`] with the returned token (the
    /// paper's `waitfor`).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] for an unregistered key.
    pub fn waitfor(
        &mut self,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
    ) -> Result<WaitToken, CoreError> {
        let token = self.next_token;
        self.next_token += 1;
        let mut done = Vec::new();
        self.engine.waitfor(stream, key, seq, token, &mut done)?;
        for t in done {
            self.actions.push(Action::WaitDone { token: t });
        }
        Ok(token)
    }

    /// Register a new application-defined stability level (e.g.
    /// `verified`); its counters start at zero everywhere except this
    /// node's own stream, which self-acks everything already published.
    pub fn register_ack_type(&mut self, name: &str) -> AckTypeId {
        let ty = self.acks.register(name);
        self.recorder.ensure_types(self.acks.len());
        let last = self.send_buf.last_assigned();
        if last > 0 && self.recorder.observe(self.me, self.me, ty, last) {
            self.advance(self.me, self.me, ty);
            self.queue_ack(self.me, ty, last);
        }
        ty
    }

    /// Report that this node reached stability level `ty` for `stream` up
    /// to `seq` (application-supplied validation such as `verified`,
    /// §III-C "Suffixes"). The report is broadcast on the control plane.
    pub fn report_stability(&mut self, stream: NodeId, ty: AckTypeId, seq: SeqNo) {
        if ty.0 as usize >= self.recorder.num_types() {
            return;
        }
        if self.recorder.observe(stream, self.me, ty, seq) {
            self.advance(stream, self.me, ty);
            self.queue_ack(stream, ty, seq);
            self.maybe_flush_eager();
        }
    }

    /// Queue a full re-announcement of this node's own stability rows to
    /// `peer` (used by transports after a reconnect, since ACK batches
    /// lost while the link was down are only implicitly repaired by
    /// future traffic).
    pub fn announce_acks_to(&mut self, peer: NodeId) {
        let mut acks = Vec::new();
        for stream in 0..self.recorder.num_nodes() as u16 {
            if !self.placement.is_replica(NodeId(stream), peer) {
                continue; // the peer neither stores nor evaluates this stream
            }
            for ty in 0..self.recorder.num_types() as u16 {
                let seq = self.recorder.get(NodeId(stream), self.me, AckTypeId(ty));
                if seq > 0 {
                    acks.push(Ack {
                        stream: NodeId(stream),
                        ty: AckTypeId(ty),
                        seq,
                    });
                }
            }
        }
        if !acks.is_empty() {
            self.actions.push(Action::Send {
                to: peer,
                msg: WireMsg::AckBatch(acks),
            });
        }
    }

    // ------------------------------------------------------------------
    // State transfer (§III-E)
    // ------------------------------------------------------------------

    /// Set the opaque application-state mark carried in this node's
    /// outgoing [`WireMsg::TransferSnapshot`]s (the sharded layer stores
    /// its global fast-forward point here).
    pub fn set_app_mark(&mut self, mark: u64) {
        self.app_mark = mark;
    }

    /// Number of live transfer sessions, inbound plus outbound. Tests
    /// and drivers use this to detect a finished catch-up.
    pub fn active_transfers(&self) -> usize {
        self.transfer_in.len() + self.transfer_out.len()
    }

    /// Start catch-up after a restart or a fresh join: ask every peer
    /// for its stream, starting after what this node already delivered
    /// in order. Each stream's origin is its donor — it is the only node
    /// holding that stream's payloads (live window plus retained log).
    /// No-op unless `transfer_millis > 0`. Returns the number of peer
    /// streams catch-up was requested for (0 when transfer is disabled),
    /// which runtimes surface as a `Join` observability event.
    pub fn begin_catch_up(&mut self, now_nanos: u64) -> usize {
        if self.cfg.options().transfer_millis == 0 {
            return 0;
        }
        let peers = self.peers.clone();
        let mut streams = 0;
        for peer in peers {
            if self.request_catch_up(peer, now_nanos) {
                streams += 1;
            }
        }
        streams
    }

    fn request_catch_up(&mut self, donor: NodeId, now_nanos: u64) -> bool {
        if donor == self.me
            || donor.0 as usize >= self.recv.len()
            || !self.placement.is_replica(donor, self.me)
        {
            return false; // we do not replicate the donor's stream
        }
        let have = self.recv[donor.0 as usize].delivered();
        self.transfer_in.insert(
            donor,
            InboundTransfer {
                high: SeqNo::MAX,
                last_delivered: have,
                last_nanos: now_nanos,
            },
        );
        self.actions.push(Action::Send {
            to: donor,
            msg: WireMsg::TransferRequest {
                stream: donor,
                have,
            },
        });
        true
    }

    /// Donor side: serve a catch-up request for this node's own stream.
    /// Replies with a [`WireMsg::TransferSnapshot`] whose `base` is the
    /// later of the requester's position and the oldest sequence still
    /// replayable (live window plus retained log), then streams chunks
    /// for `(base, high]` under the `transfer_window` rate limit.
    fn on_transfer_request(&mut self, from: NodeId, stream: NodeId, have: SeqNo) {
        if self.cfg.options().transfer_millis == 0
            || stream != self.me
            || from == self.me
            || !self.placement.is_replica(self.me, from)
        {
            return; // transfer disabled, not the origin, or a non-replica asking
        }
        self.metrics.transfer_requests += 1;
        // A catch-up request means the requester restarted (or newly
        // joined): its belief table is whatever its snapshot held. Acks
        // are change-driven, so any of our rows it missed while down —
        // including its *own* stream's column, which no transfer
        // snapshot covers (we only donate our own stream) — would stay
        // stale forever and pin its frontiers. Re-announce our full
        // stability rows so its beliefs about us resume at the present.
        self.announce_acks_to(from);
        let floor = self.send_buf.first_replayable().saturating_sub(1);
        let base = have.max(floor);
        let high = self.send_buf.last_assigned().max(base);
        // The snapshot carries this node's full recorded column for the
        // stream: each entry's `stream` field names the *observing node*
        // (the batch is scoped to one stream, so the field is free).
        let mut acks = Vec::new();
        for node in 0..self.recorder.num_nodes() as u16 {
            for ty in 0..self.recorder.num_types() as u16 {
                let seq = self.recorder.get(self.me, NodeId(node), AckTypeId(ty));
                if seq > 0 {
                    acks.push(Ack {
                        stream: NodeId(node),
                        ty: AckTypeId(ty),
                        seq,
                    });
                }
            }
        }
        self.actions.push(Action::Send {
            to: from,
            msg: WireMsg::TransferSnapshot {
                stream,
                base,
                high,
                acks,
                app_mark: self.app_mark,
            },
        });
        if base < high {
            self.transfer_out.insert(
                from,
                OutboundTransfer {
                    acked: base,
                    next: base + 1,
                    high,
                },
            );
            self.pump_transfer(from);
        } else {
            self.transfer_out.remove(&from);
        }
    }

    /// Send chunks to `requester` up to the rate-limit window. The
    /// window bounds catch-up traffic so replay cannot starve the live
    /// data plane; it slides on [`WireMsg::TransferAck`].
    fn pump_transfer(&mut self, requester: NodeId) {
        let window = self.cfg.options().transfer_window;
        loop {
            let Some(sess) = self.transfer_out.get(&requester) else {
                return;
            };
            if sess.acked >= sess.high {
                self.transfer_out.remove(&requester);
                return;
            }
            if sess.next > sess.high || sess.next.saturating_sub(sess.acked + 1) >= window {
                return; // everything sent or window full: wait for acks
            }
            let seq = sess.next;
            let high = sess.high;
            let acked = sess.acked;
            match self.send_buf.replay_get(seq).cloned() {
                Some(payload) => {
                    self.metrics.transfer_chunks_sent += 1;
                    self.metrics.transfer_bytes_sent += payload.len() as u64;
                    self.actions.push(Action::Send {
                        to: requester,
                        msg: WireMsg::TransferChunk {
                            stream: self.me,
                            seq,
                            payload,
                            done: seq == high,
                        },
                    });
                    self.transfer_out
                        .get_mut(&requester)
                        .expect("session checked above")
                        .next += 1;
                }
                None => {
                    // The retained log evicted this prefix while the
                    // session ran (or nothing is replayable at all):
                    // restart the handshake so the requester
                    // fast-forwards over the new gap.
                    self.transfer_out.remove(&requester);
                    if self.send_buf.first_replayable() > seq {
                        self.on_transfer_request(requester, self.me, acked);
                    }
                    return;
                }
            }
        }
    }

    /// Requester side: apply the donor's snapshot — merge its recorded
    /// column for the stream, fast-forward over anything below `base`
    /// (the donor no longer holds it), and open the inbound session.
    #[allow(clippy::too_many_arguments)] // mirrors WireMsg::TransferSnapshot field for field
    fn on_transfer_snapshot(
        &mut self,
        now_nanos: u64,
        from: NodeId,
        stream: NodeId,
        base: SeqNo,
        high: SeqNo,
        acks: &[Ack],
        app_mark: u64,
    ) {
        if self.cfg.options().transfer_millis == 0
            || stream == self.me
            || from != stream
            || stream.0 as usize >= self.recv.len()
            || !self.placement.is_replica(stream, self.me)
        {
            return;
        }
        for a in acks {
            // `a.stream` names the observing node here (see the donor
            // side). Never merge cells about ourselves: our own counters
            // are ground truth and a stale third-party view must not
            // claim receipt of data we do not hold.
            if a.stream == self.me
                || a.stream.0 as usize >= self.recv.len()
                || a.ty.0 as usize >= self.recorder.num_types()
                || !self.placement.is_replica(stream, a.stream)
            {
                continue;
            }
            if self.recorder.observe(stream, a.stream, a.ty, a.seq) {
                self.metrics.acks_received += 1;
                self.advance(stream, a.stream, a.ty);
            }
        }
        self.fast_forward_inner(stream, base, app_mark);
        let delivered = self.recv[stream.0 as usize].delivered();
        self.actions.push(Action::Send {
            to: from,
            msg: WireMsg::TransferAck {
                stream,
                through: delivered,
            },
        });
        if delivered >= high {
            self.transfer_in.remove(&stream);
        } else {
            self.transfer_in.insert(
                stream,
                InboundTransfer {
                    high,
                    last_delivered: delivered,
                    last_nanos: now_nanos,
                },
            );
        }
    }

    /// Requester side: a replayed chunk. Fed through the normal receive
    /// path (FIFO reassembly, duplicate suppression, built-in acks),
    /// then cumulatively acknowledged so the donor's window slides.
    fn on_transfer_chunk(
        &mut self,
        now_nanos: u64,
        from: NodeId,
        stream: NodeId,
        seq: SeqNo,
        payload: Bytes,
    ) {
        if self.cfg.options().transfer_millis == 0
            || stream == self.me
            || from != stream
            || stream.0 as usize >= self.recv.len()
            || !self.placement.is_replica(stream, self.me)
        {
            return;
        }
        self.metrics.transfer_chunks_received += 1;
        self.on_data(stream, seq, payload);
        let delivered = self.recv[stream.0 as usize].delivered();
        if let Some(sess) = self.transfer_in.get_mut(&stream) {
            if delivered > sess.last_delivered {
                sess.last_delivered = delivered;
                sess.last_nanos = now_nanos;
            }
            if delivered >= sess.high {
                self.transfer_in.remove(&stream);
            }
        }
        self.actions.push(Action::Send {
            to: from,
            msg: WireMsg::TransferAck {
                stream,
                through: delivered,
            },
        });
    }

    /// Donor side: slide the session window and send more chunks.
    fn on_transfer_ack(&mut self, from: NodeId, stream: NodeId, through: SeqNo) {
        if stream != self.me {
            return;
        }
        if let Some(sess) = self.transfer_out.get_mut(&from) {
            if through > sess.acked {
                sess.acked = through;
            }
            if sess.acked >= sess.high {
                self.transfer_out.remove(&from);
            } else {
                self.pump_transfer(from);
            }
        }
    }

    /// Supervise inbound catch-up (drivers call this on the
    /// `transfer_millis` period): a session that made no progress for a
    /// full period re-issues its request from the current delivered
    /// position — this is what makes a transfer resumable when the
    /// donor or the requester crashes mid-way, and what retries a
    /// request lost to the network.
    pub fn on_transfer_tick(&mut self, now_nanos: u64) {
        let timeout = self.cfg.options().transfer_millis * 1_000_000;
        if timeout == 0 {
            return;
        }
        let streams: Vec<NodeId> = self.transfer_in.keys().copied().collect();
        for stream in streams {
            let delivered = self.recv[stream.0 as usize].delivered();
            let sess = self
                .transfer_in
                .get_mut(&stream)
                .expect("keys collected above");
            if delivered >= sess.high {
                self.transfer_in.remove(&stream);
                continue;
            }
            if delivered > sess.last_delivered {
                sess.last_delivered = delivered;
                sess.last_nanos = now_nanos;
                continue;
            }
            if now_nanos.saturating_sub(sess.last_nanos) < timeout {
                continue;
            }
            if self.suspected[stream.0 as usize] {
                continue; // donor is down; recovery re-requests (heard)
            }
            self.request_catch_up(stream, now_nanos);
        }
        // Catch-up on observed lag. Retransmission heals short gaps, but
        // an origin that reclaimed its live send window (every *other*
        // peer acked while this node was unreachable) has nothing left
        // to resend — the retained log, reachable only through a
        // transfer, holds the sole remaining copy. A node that sees
        // itself persistently behind an origin's own self-acknowledged
        // sequence, with no inbound session open, must ask that origin
        // for a transfer rather than wait for data that will never come.
        // The grace period covers normal propagation plus a retransmit
        // round, so a transiently-in-flight suffix never triggers one.
        let grace = 2 * timeout.max(self.cfg.options().retransmit_millis * 1_000_000);
        for idx in 0..self.recv.len() {
            let stream = NodeId(idx as u16);
            if stream == self.me || !self.placement.is_replica(stream, self.me) {
                continue; // never catch up on streams we do not replicate
            }
            let delivered = self.recv[idx].delivered();
            let (prev, since) = self.lag_state[idx];
            if delivered > prev || since == 0 {
                self.lag_state[idx] = (delivered, now_nanos);
                continue;
            }
            let origin_high = self.recorder.get(stream, stream, RECEIVED);
            if origin_high <= delivered
                || self.transfer_in.contains_key(&stream)
                || self.suspected[idx]
            {
                self.lag_state[idx] = (delivered, now_nanos);
                continue;
            }
            if now_nanos.saturating_sub(since) < grace {
                continue;
            }
            self.request_catch_up(stream, now_nanos);
            self.lag_state[idx] = (delivered, now_nanos);
        }
        self.maybe_flush_eager();
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Flush coalesced ACKs (drivers call this on the
    /// `ack_flush_micros` period when coalescing is enabled).
    pub fn on_ack_flush(&mut self) {
        self.flush_acks();
    }

    /// Emit a heartbeat to every peer (drivers call this on the
    /// `heartbeat_millis` period).
    pub fn on_heartbeat(&mut self) {
        for &peer in &self.peers {
            self.metrics.control_msgs_sent += 1;
            self.actions.push(Action::Send {
                to: peer,
                msg: WireMsg::Heartbeat,
            });
        }
    }

    /// Check for silent peers (drivers call this periodically). Newly
    /// suspected nodes produce [`Action::Suspected`] and, when
    /// `auto_exclude_suspects` is set, predicate rewrites.
    pub fn on_failure_check(&mut self, now_nanos: u64) {
        let timeout = self.cfg.options().failure_timeout_millis * 1_000_000;
        if timeout == 0 {
            return; // failure detection disabled
        }
        let peers = self.peers.clone();
        for peer in peers {
            let idx = peer.0 as usize;
            let heard = self.last_heard_nanos[idx];
            if self.suspected[idx] || now_nanos.saturating_sub(heard) < timeout {
                continue;
            }
            self.suspected[idx] = true;
            self.actions.push(Action::Suspected { node: peer });
            // Drop transfer sessions involving the dead peer: inbound
            // resumes via the recovery re-request when it returns,
            // outbound via the peer's own stall re-request.
            self.transfer_in.remove(&peer);
            self.transfer_out.remove(&peer);
            if self.cfg.options().auto_exclude_suspects {
                self.exclude_node(peer);
            }
            self.try_reclaim();
        }
    }

    /// Drive the §III-A reliability mechanism (drivers call this
    /// periodically when `retransmit_millis > 0`): any peer whose
    /// `received` counter has not advanced for a full timeout while data
    /// remains unacknowledged gets the unacked window resent (go-back-N,
    /// capped at 64 messages per round to bound burstiness). Safe with
    /// duplicating transports: receivers drop duplicates and the ACK
    /// table is monotonic.
    pub fn on_retransmit_check(&mut self, now_nanos: u64) {
        let timeout = self.cfg.options().retransmit_millis * 1_000_000;
        if timeout == 0 {
            return;
        }
        let last_sent = self.send_buf.last_assigned();
        // Go-back-N targets only the stream's replicas: a non-replica
        // never acks, and resending to it would loop forever.
        let peers = self.data_peers.clone();
        for peer in peers {
            if self.suspected[peer.0 as usize] {
                continue;
            }
            let acked = self.recorder.get(self.me, peer, RECEIVED);
            let idx = peer.0 as usize;
            let (prev_acked, since) = self.retransmit_state[idx];
            if acked > prev_acked || acked >= last_sent {
                self.retransmit_state[idx] = (acked, now_nanos);
                continue;
            }
            if now_nanos.saturating_sub(since) < timeout {
                continue;
            }
            // Stalled: resend the unacked window.
            let msgs: Vec<(SeqNo, Bytes)> = self
                .send_buf
                .iter_from(acked + 1)
                .take(64)
                .map(|(s, p)| (s, p.clone()))
                .collect();
            for (seq, payload) in msgs {
                self.metrics.retransmits += 1;
                self.actions.push(Action::Send {
                    to: peer,
                    msg: WireMsg::Data {
                        origin: self.me,
                        seq,
                        payload,
                    },
                });
            }
            self.retransmit_state[idx] = (acked, now_nanos);
        }
    }

    /// Rewrite every predicate to stop observing `node` (§III-E). Broken
    /// predicates (that would become empty) are reported via
    /// [`Action::PredicateBroken`].
    pub fn exclude_node(&mut self, node: NodeId) {
        let mut updates = Vec::new();
        let mut done = Vec::new();
        let failed = self
            .engine
            .exclude_node(node, &self.recorder, &mut updates, &mut done);
        self.emit(updates, done);
        for key in failed {
            self.actions.push(Action::PredicateBroken {
                stream: self.me,
                key,
            });
        }
    }

    /// Whether `node` is currently suspected.
    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.suspected[node.0 as usize]
    }

    /// Clear suspicion after a node returns (driver observed traffic or
    /// reconnection).
    pub fn clear_suspicion(&mut self, node: NodeId) {
        self.suspected[node.0 as usize] = false;
    }

    /// Re-admit a previously excluded node: clear its suspicion and
    /// restore every predicate to its original registered source (the
    /// inverse of [`StabilizerNode::exclude_node`]). Each restored
    /// predicate gets a new generation, like `change_predicate`.
    ///
    /// # Errors
    ///
    /// Fails if any original source no longer compiles (e.g. its ACK
    /// type registry entries disappeared — not possible through this
    /// API, but surfaced rather than ignored).
    pub fn reinstate_node(&mut self, node: NodeId) -> Result<(), CoreError> {
        self.clear_suspicion(node);
        let sources: Vec<((NodeId, String), String)> = self
            .predicate_sources
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for ((stream, key), source) in sources {
            let pred = Predicate::compile(&source, self.cfg.topology(), &self.acks, self.me)?
                .restricted_to(self.placement.replicas(stream))?;
            // Only touch predicates that currently lack the node.
            let has_node = self
                .engine
                .predicate(stream, &key)
                .map(|p| p.dependencies().iter().any(|(n, _)| *n == node))
                .unwrap_or(false);
            let should_have = pred.dependencies().iter().any(|(n, _)| *n == node);
            if has_node || !should_have {
                continue;
            }
            let mut updates = Vec::new();
            let mut done = Vec::new();
            self.engine
                .change(stream, &key, pred, &self.recorder, &mut updates, &mut done);
            self.emit(updates, done);
        }
        Ok(())
    }

    /// Number of `waitfor` calls still blocked on a frontier.
    pub fn pending_waiters(&self) -> usize {
        self.engine.pending_waiters()
    }

    /// Traffic counters for this node.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.metrics;
        m.predicate_evals = self.engine.evaluations();
        m
    }

    // ------------------------------------------------------------------
    // Recovery (§III-E)
    // ------------------------------------------------------------------

    /// Capture the control-plane state for persistence by the integrated
    /// storage system.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            recorder: self.recorder.clone(),
            last_assigned: self.send_buf.last_assigned(),
        }
    }

    /// Rebuild a node from a persisted snapshot after a primary restart.
    /// Payload buffers are not restored (peers that already received the
    /// prefix have acked it; unacked suffixes must be re-published by the
    /// storage system's recovery log, as with Derecho's view change).
    ///
    /// # Errors
    ///
    /// Fails if a configured predicate does not compile.
    pub fn restore(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
        snapshot: Snapshot,
    ) -> Result<Self, CoreError> {
        let mut node = StabilizerNode::new(cfg, me, acks)?;
        node.recorder = snapshot.recorder;
        node.recorder.ensure_types(node.acks.len());
        // Restore the sequence counter by replaying publishes of empty
        // payloads is wrong; instead rebuild the send buffer state.
        let capacity = node.cfg.options().send_buffer_bytes;
        let retain = node.cfg.options().retain_log_bytes;
        let mut sb = SendBuffer::with_retention(capacity, retain);
        for _ in 0..snapshot.last_assigned {
            let _ = sb.publish(Bytes::new());
        }
        sb.reclaim(snapshot.last_assigned);
        // The reclaim above only rebuilt sequencing: the retained log
        // must not serve those placeholder payloads to a requester — a
        // restarted donor has nothing replayable, so requesters
        // fast-forward over its reclaimed prefix instead.
        sb.clear_retained();
        node.send_buf = sb;
        // Re-evaluate configured predicates against the restored table.
        let keys = node.engine.keys(me);
        let mut updates = Vec::new();
        let mut done = Vec::new();
        for key in keys {
            if let Some(pred) = node.engine.predicate(me, &key).cloned() {
                node.engine
                    .register(me, &key, pred, &node.recorder, &mut updates, &mut done);
            }
        }
        node.emit(updates, done);
        Ok(node)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn heard(&mut self, from: NodeId, now_nanos: u64) {
        let idx = from.0 as usize;
        if idx >= self.last_heard_nanos.len() {
            return;
        }
        self.last_heard_nanos[idx] = now_nanos;
        if self.suspected[idx] {
            // The "crashed" peer is talking again: §III-E's recovery path.
            self.suspected[idx] = false;
            self.actions.push(Action::Recovered { node: from });
            if self.cfg.options().auto_exclude_suspects {
                // Reinstatement mirrors the automatic exclusion. Original
                // sources always recompile (they did at registration), so
                // the expect documents an invariant rather than a
                // recoverable failure.
                self.reinstate_node(from)
                    .expect("original predicate sources recompile");
            }
            if self.cfg.options().transfer_millis > 0 {
                // Resume any catch-up the peer's absence interrupted and
                // pick up whatever it published while suspicion stopped
                // us retransmitting to each other. A donor with nothing
                // missing answers with an empty session, so this is
                // cheap when the recovery was a false alarm.
                self.request_catch_up(from, now_nanos);
            }
        }
    }

    fn advance(&mut self, stream: NodeId, node: NodeId, ty: AckTypeId) {
        let mut updates = Vec::new();
        let mut done = Vec::new();
        self.engine
            .on_ack_advance(stream, node, ty, &self.recorder, &mut updates, &mut done);
        self.emit(updates, done);
    }

    fn emit(&mut self, updates: Vec<FrontierUpdate>, done: Vec<WaitToken>) {
        for u in updates {
            self.metrics.frontier_updates += 1;
            self.actions.push(Action::Frontier(u));
        }
        for token in done {
            self.actions.push(Action::WaitDone { token });
        }
    }

    fn queue_ack(&mut self, stream: NodeId, ty: AckTypeId, seq: SeqNo) {
        let cell = self.pending_acks.entry((stream, ty)).or_insert(0);
        if seq > *cell {
            *cell = seq;
        }
    }

    fn maybe_flush_eager(&mut self) {
        if self.cfg.options().ack_flush_micros == 0 {
            self.flush_acks();
        }
    }

    fn flush_acks(&mut self) {
        if self.pending_acks.is_empty() {
            return;
        }
        let acks: Vec<Ack> = self
            .pending_acks
            .iter()
            .map(|(&(stream, ty), &seq)| Ack { stream, ty, seq })
            .collect();
        self.pending_acks.clear();
        if self.placement.is_full_replication() {
            for &peer in &self.peers {
                self.metrics.control_msgs_sent += 1;
                self.metrics.acks_sent += acks.len() as u64;
                self.actions.push(Action::Send {
                    to: peer,
                    msg: WireMsg::AckBatch(acks.clone()),
                });
            }
            return;
        }
        // Partial replication: each peer gets only the cells for streams
        // it replicates (a non-replica neither stores the stream nor
        // evaluates predicates over it).
        for &peer in &self.peers {
            let batch: Vec<Ack> = acks
                .iter()
                .filter(|a| self.placement.is_replica(a.stream, peer))
                .cloned()
                .collect();
            if batch.is_empty() {
                continue;
            }
            self.metrics.control_msgs_sent += 1;
            self.metrics.acks_sent += batch.len() as u64;
            self.actions.push(Action::Send {
                to: peer,
                msg: WireMsg::AckBatch(batch),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Options;

    fn cfg() -> ClusterConfig {
        ClusterConfig::parse("az A a b\naz B c\npredicate All MIN($ALLWNODES-$MYWNODE)\n").unwrap()
    }

    fn node(me: u16) -> StabilizerNode {
        StabilizerNode::new(cfg(), NodeId(me), Arc::new(AckTypeRegistry::new())).unwrap()
    }

    fn sends(actions: &[Action]) -> Vec<(NodeId, &WireMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn publish_fans_out_to_every_peer_with_self_ack() {
        let mut n = node(0);
        let seq = n.publish(Bytes::from_static(b"x")).unwrap();
        assert_eq!(seq, 1);
        let actions = n.take_actions();
        let data: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, WireMsg::Data { .. }))
            .collect();
        assert_eq!(data.len(), 2, "one data message per peer");
        // Self-ack rule: all types at the origin equal the new seq.
        for ty in 0..n.recorder().num_types() as u16 {
            assert_eq!(n.recorder().get(NodeId(0), NodeId(0), AckTypeId(ty)), 1);
        }
        // Eager mode also broadcast the self-ack batch.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: WireMsg::AckBatch(_),
                ..
            }
        )));
    }

    #[test]
    fn receive_delivers_and_acks_all_builtin_levels() {
        let mut n = node(1);
        n.on_message(
            0,
            NodeId(0),
            WireMsg::Data {
                origin: NodeId(0),
                seq: 1,
                payload: Bytes::from_static(b"p"),
            },
        );
        let actions = n.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Deliver { origin, seq: 1, .. } if *origin == NodeId(0))));
        for ty in [RECEIVED, PERSISTED, DELIVERED] {
            assert_eq!(n.recorder().get(NodeId(0), NodeId(1), ty), 1);
        }
        // The ack batch goes to every peer, not just the origin.
        let acked_to: Vec<NodeId> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: WireMsg::AckBatch(_),
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(acked_to.len(), 2);
    }

    #[test]
    fn out_of_order_data_is_held_until_the_gap_fills() {
        let mut n = node(1);
        let data = |seq| WireMsg::Data {
            origin: NodeId(0),
            seq,
            payload: Bytes::new(),
        };
        n.on_message(0, NodeId(0), data(2));
        assert!(!n
            .take_actions()
            .iter()
            .any(|a| matches!(a, Action::Deliver { .. })));
        assert_eq!(n.recorder().get(NodeId(0), NodeId(1), RECEIVED), 0);
        n.on_message(0, NodeId(0), data(1));
        let delivered: Vec<u64> = n
            .take_actions()
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1, 2]);
        assert_eq!(n.recorder().get(NodeId(0), NodeId(1), RECEIVED), 2);
    }

    #[test]
    fn stale_and_unknown_acks_are_ignored() {
        let mut n = node(0);
        n.publish(Bytes::from_static(b"x")).unwrap();
        n.take_actions();
        let good = Ack {
            stream: NodeId(0),
            ty: RECEIVED,
            seq: 1,
        };
        n.on_message(0, NodeId(1), WireMsg::AckBatch(vec![good]));
        assert_eq!(n.metrics().acks_received, 1);
        // Stale repeat.
        n.on_message(0, NodeId(1), WireMsg::AckBatch(vec![good]));
        assert_eq!(n.metrics().acks_stale, 1);
        // Unknown stream / type: silently dropped, no panic.
        n.on_message(
            0,
            NodeId(1),
            WireMsg::AckBatch(vec![
                Ack {
                    stream: NodeId(99),
                    ty: RECEIVED,
                    seq: 5,
                },
                Ack {
                    stream: NodeId(0),
                    ty: AckTypeId(99),
                    seq: 5,
                },
            ]),
        );
        assert_eq!(n.metrics().acks_received, 1);
    }

    #[test]
    fn reclamation_needs_every_live_peer() {
        let mut n = node(0);
        n.publish(Bytes::from(vec![0u8; 100])).unwrap();
        n.take_actions();
        assert_eq!(n.send_buffer_bytes(), 100);
        n.on_message(
            0,
            NodeId(1),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 1,
            }]),
        );
        assert_eq!(n.send_buffer_bytes(), 100, "one peer is not enough");
        n.on_message(
            0,
            NodeId(2),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 1,
            }]),
        );
        assert_eq!(n.send_buffer_bytes(), 0);
    }

    #[test]
    fn suspected_peer_unpins_the_buffer() {
        let opts = Options::default().failure_timeout_millis(10);
        let cfg = cfg().with_options(opts);
        let mut n = StabilizerNode::new(cfg, NodeId(0), Arc::new(AckTypeRegistry::new())).unwrap();
        n.publish(Bytes::from(vec![0u8; 100])).unwrap();
        n.take_actions();
        // Peer 1 acks; peer 2 is dead.
        n.on_message(
            1,
            NodeId(1),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 1,
            }]),
        );
        assert_eq!(n.send_buffer_bytes(), 100);
        n.on_failure_check(1_000_000_000); // 1s >> 10ms timeout
        assert!(n.is_suspected(NodeId(2)));
        assert_eq!(
            n.send_buffer_bytes(),
            0,
            "dead peer must not pin the buffer"
        );
    }

    #[test]
    fn exclude_then_reinstate_roundtrips_the_predicate() {
        let mut n = node(0);
        let deps_with = n.stability_frontier(NodeId(0), "All").map(|_| {
            // dependency count before exclusion
            n.take_actions();
        });
        let _ = deps_with;
        n.exclude_node(NodeId(2));
        n.take_actions();
        // Publishing and getting acks from peer 1 alone now satisfies All.
        n.publish(Bytes::new()).unwrap();
        n.take_actions();
        n.on_message(
            0,
            NodeId(1),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 1,
            }]),
        );
        n.take_actions();
        assert_eq!(n.stability_frontier(NodeId(0), "All").unwrap().0, 1);
        // Reinstate: the original source (including node 2) is restored
        // with a new generation, and the frontier regresses to 0.
        n.reinstate_node(NodeId(2)).unwrap();
        let (frontier, generation) = n.stability_frontier(NodeId(0), "All").unwrap();
        assert_eq!(frontier, 0);
        assert!(generation >= 2);
        n.take_actions();
        // Node 2 finally acks; the frontier catches back up.
        n.on_message(
            0,
            NodeId(2),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 1,
            }]),
        );
        n.take_actions();
        assert_eq!(n.stability_frontier(NodeId(0), "All").unwrap().0, 1);
    }

    #[test]
    fn reinstate_is_a_noop_for_predicates_never_excluded() {
        let mut n = node(0);
        let before = n.stability_frontier(NodeId(0), "All").unwrap();
        n.reinstate_node(NodeId(1)).unwrap();
        assert_eq!(n.stability_frontier(NodeId(0), "All").unwrap(), before);
    }

    #[test]
    fn announce_acks_resends_own_rows_only() {
        let mut n = node(1);
        n.on_message(
            0,
            NodeId(0),
            WireMsg::Data {
                origin: NodeId(0),
                seq: 3,
                payload: Bytes::new(),
            },
        );
        n.take_actions(); // out-of-order: nothing to announce yet
        n.on_message(
            0,
            NodeId(0),
            WireMsg::Data {
                origin: NodeId(0),
                seq: 1,
                payload: Bytes::new(),
            },
        );
        n.on_message(
            0,
            NodeId(0),
            WireMsg::Data {
                origin: NodeId(0),
                seq: 2,
                payload: Bytes::new(),
            },
        );
        n.take_actions();
        n.announce_acks_to(NodeId(0));
        let actions = n.take_actions();
        let batch = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: WireMsg::AckBatch(acks),
                } if *to == NodeId(0) => Some(acks),
                _ => None,
            })
            .expect("announcement sent");
        assert!(batch.iter().all(|a| a.seq == 3));
        assert!(batch
            .iter()
            .any(|a| a.ty == RECEIVED && a.stream == NodeId(0)));
    }

    #[test]
    fn coalescing_defers_ack_sends_until_flush() {
        let opts = Options::default().ack_flush_micros(1000);
        let cfg = cfg().with_options(opts);
        let mut n = StabilizerNode::new(cfg, NodeId(1), Arc::new(AckTypeRegistry::new())).unwrap();
        for seq in 1..=5 {
            n.on_message(
                0,
                NodeId(0),
                WireMsg::Data {
                    origin: NodeId(0),
                    seq,
                    payload: Bytes::new(),
                },
            );
        }
        let actions = n.take_actions();
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: WireMsg::AckBatch(_),
                    ..
                }
            )),
            "acks must be held while coalescing"
        );
        n.on_ack_flush();
        let actions = n.take_actions();
        let batches: Vec<&Vec<Ack>> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: WireMsg::AckBatch(b),
                    ..
                } => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(batches.len(), 2, "one coalesced batch per peer");
        // Only the newest counter per cell is sent (monotonic overwrite).
        assert!(batches[0].iter().all(|a| a.seq == 5));
    }

    #[test]
    fn metrics_track_both_planes() {
        let mut n = node(0);
        n.publish(Bytes::from(vec![0u8; 64])).unwrap();
        n.take_actions();
        let m = n.metrics();
        assert_eq!(m.data_msgs_sent, 2);
        assert_eq!(m.data_bytes_sent, 128);
        assert!(m.control_msgs_sent >= 2);
        assert!(m.acks_sent > 0);
        assert_eq!(m.deliveries, 0);
    }

    #[test]
    fn payload_size_limit_is_enforced() {
        let opts = Options::default().max_payload_bytes(8);
        let cfg = cfg().with_options(opts);
        let mut n = StabilizerNode::new(cfg, NodeId(0), Arc::new(AckTypeRegistry::new())).unwrap();
        assert!(matches!(
            n.publish(Bytes::from(vec![0u8; 9])),
            Err(CoreError::PayloadTooLarge { size: 9, max: 8 })
        ));
        assert!(n.publish(Bytes::from(vec![0u8; 8])).is_ok());
    }

    #[test]
    fn data_for_own_stream_or_unknown_origin_is_dropped() {
        let mut n = node(0);
        n.on_message(
            0,
            NodeId(1),
            WireMsg::Data {
                origin: NodeId(0),
                seq: 1,
                payload: Bytes::new(),
            },
        );
        n.on_message(
            0,
            NodeId(1),
            WireMsg::Data {
                origin: NodeId(88),
                seq: 1,
                payload: Bytes::new(),
            },
        );
        assert!(!n
            .take_actions()
            .iter()
            .any(|a| matches!(a, Action::Deliver { .. })));
    }

    fn transfer_cfg() -> ClusterConfig {
        cfg().with_options(
            Options::default()
                .failure_timeout_millis(10)
                .transfer_millis(20)
                .retain_log_bytes(1024),
        )
    }

    fn transfer_node(me: u16) -> StabilizerNode {
        StabilizerNode::new(transfer_cfg(), NodeId(me), Arc::new(AckTypeRegistry::new())).unwrap()
    }

    #[test]
    fn donor_replays_retained_log_after_eviction() {
        let mut n = transfer_node(0);
        for i in 0..3u8 {
            n.publish(Bytes::from(vec![i; 4])).unwrap();
        }
        n.take_actions();
        n.on_message(
            1,
            NodeId(1),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 3,
            }]),
        );
        n.on_failure_check(1_000_000_000);
        n.take_actions();
        assert!(n.is_suspected(NodeId(2)));
        assert_eq!(n.send_buffer_bytes(), 0, "live window reclaimed");
        // The crashed peer rejoins and asks to catch up from scratch.
        n.on_message(
            2_000_000_000,
            NodeId(2),
            WireMsg::TransferRequest {
                stream: NodeId(0),
                have: 0,
            },
        );
        let actions = n.take_actions();
        let to_rejoiner: Vec<&WireMsg> = sends(&actions)
            .into_iter()
            .filter(|(to, _)| *to == NodeId(2))
            .map(|(_, m)| m)
            .collect();
        let snap = to_rejoiner
            .iter()
            .find_map(|m| match m {
                WireMsg::TransferSnapshot { base, high, .. } => Some((*base, *high)),
                _ => None,
            })
            .expect("snapshot sent");
        assert_eq!(snap, (0, 3), "everything evicted is still retained");
        let chunks: Vec<(SeqNo, bool, Bytes)> = to_rejoiner
            .iter()
            .filter_map(|m| match m {
                WireMsg::TransferChunk {
                    seq, done, payload, ..
                } => Some((*seq, *done, payload.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            chunks.iter().map(|(s, d, _)| (*s, *d)).collect::<Vec<_>>(),
            vec![(1, false), (2, false), (3, true)]
        );
        assert_eq!(chunks[1].2, Bytes::from(vec![1u8; 4]), "payloads intact");
        assert_eq!(n.metrics().transfer_requests, 1);
        assert_eq!(n.metrics().transfer_chunks_sent, 3);
        assert_eq!(n.metrics().transfer_bytes_sent, 12);
        // Cumulative ack completes the session.
        n.on_message(
            2_100_000_000,
            NodeId(2),
            WireMsg::TransferAck {
                stream: NodeId(0),
                through: 3,
            },
        );
        assert!(n.transfer_out.is_empty());
    }

    #[test]
    fn restored_donor_serves_fast_forward_only() {
        let mut n = transfer_node(0);
        for _ in 0..3 {
            n.publish(Bytes::from(vec![7u8; 4])).unwrap();
        }
        let snapshot = n.snapshot();
        let mut n = StabilizerNode::restore(
            transfer_cfg(),
            NodeId(0),
            Arc::new(AckTypeRegistry::new()),
            snapshot,
        )
        .unwrap();
        n.take_actions();
        n.on_message(
            0,
            NodeId(2),
            WireMsg::TransferRequest {
                stream: NodeId(0),
                have: 1,
            },
        );
        let actions = n.take_actions();
        let snap = sends(&actions)
            .into_iter()
            .find_map(|(_, m)| match m {
                WireMsg::TransferSnapshot { base, high, .. } => Some((*base, *high)),
                _ => None,
            })
            .expect("snapshot sent");
        assert_eq!(snap, (3, 3), "nothing replayable after restore");
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: WireMsg::TransferChunk { .. },
                    ..
                }
            )),
            "placeholder payloads must never be replayed"
        );
    }

    #[test]
    fn snapshot_fast_forwards_and_chunks_deliver() {
        let mut n = transfer_node(2);
        n.begin_catch_up(0);
        let actions = n.take_actions();
        let requests: Vec<NodeId> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, WireMsg::TransferRequest { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(requests, vec![NodeId(0), NodeId(1)]);
        assert_eq!(n.active_transfers(), 2);
        n.on_message(
            5,
            NodeId(0),
            WireMsg::TransferSnapshot {
                stream: NodeId(0),
                base: 3,
                high: 5,
                acks: vec![
                    Ack {
                        stream: NodeId(1),
                        ty: RECEIVED,
                        seq: 5,
                    },
                    // A stale claim about ourselves must be ignored.
                    Ack {
                        stream: NodeId(2),
                        ty: RECEIVED,
                        seq: 4,
                    },
                ],
                app_mark: 7,
            },
        );
        let actions = n.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::CatchUp {
                stream: NodeId(0),
                seq: 3,
                app_mark: 7
            }
        )));
        assert_eq!(n.recorder().get(NodeId(0), NodeId(2), RECEIVED), 3);
        assert_eq!(n.recorder().get(NodeId(0), NodeId(1), RECEIVED), 5);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    to: NodeId(0),
                    msg: WireMsg::TransferAck { through: 3, .. }
                }
            )),
            "snapshot position acknowledged"
        );
        for (seq, done) in [(4u64, false), (5u64, true)] {
            n.on_message(
                6,
                NodeId(0),
                WireMsg::TransferChunk {
                    stream: NodeId(0),
                    seq,
                    payload: Bytes::from_static(b"x"),
                    done,
                },
            );
        }
        let actions = n.take_actions();
        let delivered: Vec<SeqNo> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![4, 5]);
        assert_eq!(n.metrics().transfer_chunks_received, 2);
        assert_eq!(n.metrics().transfer_fast_forwards, 1);
        assert_eq!(n.active_transfers(), 1, "stream 1 still catching up");
    }

    #[test]
    fn transfer_window_rate_limits_replay() {
        let cfg = cfg().with_options(
            Options::default()
                .failure_timeout_millis(10)
                .transfer_millis(20)
                .retain_log_bytes(1024)
                .transfer_window(2),
        );
        let mut n = StabilizerNode::new(cfg, NodeId(0), Arc::new(AckTypeRegistry::new())).unwrap();
        for _ in 0..5 {
            n.publish(Bytes::from(vec![9u8; 2])).unwrap();
        }
        n.take_actions();
        n.on_message(
            0,
            NodeId(2),
            WireMsg::TransferRequest {
                stream: NodeId(0),
                have: 0,
            },
        );
        n.take_actions();
        assert_eq!(n.metrics().transfer_chunks_sent, 2, "window caps flight");
        n.on_message(
            1,
            NodeId(2),
            WireMsg::TransferAck {
                stream: NodeId(0),
                through: 2,
            },
        );
        n.take_actions();
        assert_eq!(n.metrics().transfer_chunks_sent, 4);
        n.on_message(
            2,
            NodeId(2),
            WireMsg::TransferAck {
                stream: NodeId(0),
                through: 4,
            },
        );
        n.take_actions();
        assert_eq!(n.metrics().transfer_chunks_sent, 5);
        n.on_message(
            3,
            NodeId(2),
            WireMsg::TransferAck {
                stream: NodeId(0),
                through: 5,
            },
        );
        assert!(n.transfer_out.is_empty(), "session completes");
    }

    #[test]
    fn stalled_transfer_re_requests_on_tick() {
        let mut n = transfer_node(2);
        n.begin_catch_up(0);
        n.take_actions();
        n.on_transfer_tick(10_000_000); // 10 ms < 20 ms period
        assert!(sends(&n.take_actions()).is_empty(), "not stalled yet");
        n.on_transfer_tick(25_000_000); // 25 ms: both sessions stalled
        let requests = sends(&n.take_actions())
            .into_iter()
            .filter(|(_, m)| matches!(m, WireMsg::TransferRequest { .. }))
            .count();
        assert_eq!(requests, 2, "stalled sessions re-request");
    }

    #[test]
    fn transfer_disabled_ignores_protocol() {
        let mut n = node(0);
        n.publish(Bytes::from_static(b"x")).unwrap();
        n.take_actions();
        n.begin_catch_up(0);
        assert!(n.take_actions().is_empty(), "begin_catch_up is a no-op");
        n.on_message(
            0,
            NodeId(1),
            WireMsg::TransferRequest {
                stream: NodeId(0),
                have: 0,
            },
        );
        assert!(
            !n.take_actions().iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: WireMsg::TransferSnapshot { .. } | WireMsg::TransferChunk { .. },
                    ..
                }
            )),
            "requests ignored while transfer is disabled"
        );
        assert_eq!(n.metrics().transfer_requests, 0);
    }

    /// Five nodes, stream `a` replicated on {a, b, c} only.
    fn partial_cfg() -> ClusterConfig {
        ClusterConfig::parse(
            "az A a b c\naz B d e\nreplicate a a b c\n\
             predicate All MIN($ALLWNODES-$MYWNODE)\n",
        )
        .unwrap()
    }

    #[test]
    fn publish_fans_out_to_replicas_only() {
        let mut n = StabilizerNode::new(partial_cfg(), NodeId(0), Arc::new(AckTypeRegistry::new()))
            .unwrap();
        n.publish(Bytes::from_static(b"x")).unwrap();
        let actions = n.take_actions();
        let data_to: Vec<NodeId> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, WireMsg::Data { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(
            data_to,
            vec![NodeId(1), NodeId(2)],
            "non-replicas get no data"
        );
    }

    #[test]
    fn min_predicate_stabilizes_without_non_replica_acks() {
        // The acceptance pin: a MIN predicate over a 3-replica stream must
        // reach stability from the two replica acks alone — it must never
        // wait on (or even count) the non-replicas d and e.
        let mut n = StabilizerNode::new(partial_cfg(), NodeId(0), Arc::new(AckTypeRegistry::new()))
            .unwrap();
        n.publish(Bytes::from_static(b"x")).unwrap();
        n.take_actions();
        assert_eq!(n.stability_frontier(NodeId(0), "All").unwrap().0, 0);
        for peer in [1u16, 2] {
            n.on_message(
                0,
                NodeId(peer),
                WireMsg::AckBatch(vec![Ack {
                    stream: NodeId(0),
                    ty: RECEIVED,
                    seq: 1,
                }]),
            );
        }
        n.take_actions();
        assert_eq!(
            n.stability_frontier(NodeId(0), "All").unwrap().0,
            1,
            "replica acks alone must satisfy MIN over the replica set"
        );
        // A stray ack from a non-replica is discarded, not recorded.
        n.on_message(
            0,
            NodeId(3),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 1,
            }]),
        );
        n.take_actions();
        assert_eq!(n.recorder().get(NodeId(0), NodeId(3), RECEIVED), 0);
    }

    #[test]
    fn non_replica_drops_foreign_data() {
        let mut n = StabilizerNode::new(partial_cfg(), NodeId(3), Arc::new(AckTypeRegistry::new()))
            .unwrap();
        n.on_message(
            0,
            NodeId(0),
            WireMsg::Data {
                origin: NodeId(0),
                seq: 1,
                payload: Bytes::from_static(b"p"),
            },
        );
        let actions = n.take_actions();
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Deliver { .. })),
            "a non-replica must not deliver a stream it does not host"
        );
        assert_eq!(n.recorder().get(NodeId(0), NodeId(3), RECEIVED), 0);
        assert!(
            !sends(&actions)
                .iter()
                .any(|(_, m)| matches!(m, WireMsg::AckBatch(_))),
            "and it must not ack it either"
        );
    }

    #[test]
    fn explicit_full_replication_matches_default_behavior() {
        // `replicate` lines listing every node are byte-identical to a
        // replicate-free config: same placement hash, same fan-out.
        let explicit = ClusterConfig::parse(
            "az A a b\naz B c\nreplicate a a b c\nreplicate b a b c\nreplicate c a b c\n\
             predicate All MIN($ALLWNODES-$MYWNODE)\n",
        )
        .unwrap();
        assert_eq!(
            explicit.placement().placement_hash(),
            cfg().placement().placement_hash()
        );
        let mut n =
            StabilizerNode::new(explicit, NodeId(0), Arc::new(AckTypeRegistry::new())).unwrap();
        let mut base = node(0);
        n.publish(Bytes::from_static(b"x")).unwrap();
        base.publish(Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            format!("{:?}", n.take_actions()),
            format!("{:?}", base.take_actions())
        );
    }

    #[test]
    fn resend_from_skips_reclaimed_prefix() {
        let mut n = node(0);
        for _ in 0..3 {
            n.publish(Bytes::from(vec![0u8; 10])).unwrap();
        }
        n.take_actions();
        for peer in [1u16, 2] {
            n.on_message(
                0,
                NodeId(peer),
                WireMsg::AckBatch(vec![Ack {
                    stream: NodeId(0),
                    ty: RECEIVED,
                    seq: 1,
                }]),
            );
        }
        n.take_actions();
        n.resend_from(NodeId(1), 1);
        let resends: Vec<u64> = n
            .take_actions()
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: WireMsg::Data { seq, .. },
                } if *to == NodeId(1) => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(resends, vec![2, 3], "seq 1 was reclaimed everywhere");
    }
}
