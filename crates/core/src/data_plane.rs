//! Data-plane state: the origin's send buffer and the per-stream receive
//! reassembly state.
//!
//! The send side assigns sequence numbers and transmits aggressively "as
//! soon as \[data\] has been assigned a sequence number" (§III-B), keeping
//! a copy buffered until every peer has acknowledged receipt, at which
//! point "the buffer space is reclaimed". When the buffer is full,
//! `publish` reports backpressure instead of blocking the caller.
//!
//! The receive side delivers each origin's stream in FIFO order. The
//! simulator's links and the TCP transport are already FIFO, but the
//! reorder buffer makes the core robust to any reliable, possibly
//! reordering transport (and to replays after reconnection).

use crate::error::CoreError;
use bytes::Bytes;
use stabilizer_dsl::SeqNo;
use std::collections::BTreeMap;

/// The origin-side buffer for this node's own stream.
///
/// Besides the live (unacknowledged) window, the buffer keeps a
/// bounded **retained log** of already-reclaimed payloads so a node that
/// was evicted from the acknowledgment set can be caught up later by
/// replay (§III-E). Retention is byte-capped and evicts oldest-first; it
/// never exerts backpressure on publishes.
#[derive(Debug)]
pub struct SendBuffer {
    last_assigned: SeqNo,
    buffered: BTreeMap<SeqNo, Bytes>,
    buffered_bytes: usize,
    capacity: usize,
    reclaimed_up_to: SeqNo,
    retained: BTreeMap<SeqNo, Bytes>,
    retained_bytes: usize,
    retain_capacity: usize,
}

impl SendBuffer {
    /// An empty buffer holding at most `capacity` payload bytes, with no
    /// retained catch-up log.
    pub fn new(capacity: usize) -> Self {
        Self::with_retention(capacity, 0)
    }

    /// An empty buffer that additionally retains up to `retain_capacity`
    /// bytes of reclaimed payloads for §III-E catch-up replay.
    pub fn with_retention(capacity: usize, retain_capacity: usize) -> Self {
        SendBuffer {
            last_assigned: 0,
            buffered: BTreeMap::new(),
            buffered_bytes: 0,
            capacity,
            reclaimed_up_to: 0,
            retained: BTreeMap::new(),
            retained_bytes: 0,
            retain_capacity,
        }
    }

    /// Assign the next sequence number to `payload` and buffer it.
    ///
    /// # Errors
    ///
    /// [`CoreError::WouldBlock`] if the buffer is full; the caller should
    /// retry after the global-receipt point advances.
    pub fn publish(&mut self, payload: Bytes) -> Result<SeqNo, CoreError> {
        if self.buffered_bytes + payload.len() > self.capacity && !self.buffered.is_empty() {
            return Err(CoreError::WouldBlock {
                buffered: self.buffered_bytes,
                capacity: self.capacity,
            });
        }
        self.last_assigned += 1;
        self.buffered_bytes += payload.len();
        self.buffered.insert(self.last_assigned, payload);
        Ok(self.last_assigned)
    }

    /// Drop buffered payloads up to and including `min_acked` (every peer
    /// has them). Returns the number of payloads freed. With retention
    /// configured, reclaimed payloads move to the retained log instead of
    /// being dropped outright.
    pub fn reclaim(&mut self, min_acked: SeqNo) -> usize {
        let mut freed = 0;
        while let Some((&seq, payload)) = self.buffered.first_key_value() {
            if seq > min_acked {
                break;
            }
            self.buffered_bytes -= payload.len();
            let payload = self.buffered.remove(&seq).expect("peeked entry exists");
            freed += 1;
            if self.retain_capacity > 0 {
                self.retained_bytes += payload.len();
                self.retained.insert(seq, payload);
            }
        }
        while self.retained_bytes > self.retain_capacity {
            match self.retained.pop_first() {
                Some((_, p)) => self.retained_bytes -= p.len(),
                None => break,
            }
        }
        if min_acked > self.reclaimed_up_to {
            self.reclaimed_up_to = min_acked;
        }
        freed
    }

    /// The payload for `seq`, if still buffered (used by transports to
    /// resend after a reconnect).
    pub fn get(&self, seq: SeqNo) -> Option<&Bytes> {
        self.buffered.get(&seq)
    }

    /// The payload for `seq` for catch-up replay: checks the retained
    /// log first, then the live window.
    pub fn replay_get(&self, seq: SeqNo) -> Option<&Bytes> {
        self.retained.get(&seq).or_else(|| self.buffered.get(&seq))
    }

    /// The lowest sequence number this buffer can still replay. The
    /// retained log (if any) is a contiguous suffix of the reclaimed
    /// prefix and the live window sits directly above it, so everything
    /// in `[first_replayable(), last_assigned()]` is available.
    pub fn first_replayable(&self) -> SeqNo {
        match self.retained.first_key_value() {
            Some((&seq, _)) => seq,
            None => self.reclaimed_up_to + 1,
        }
    }

    /// Bytes currently held in the retained catch-up log.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// Payload count in the retained catch-up log.
    pub fn retained_len(&self) -> usize {
        self.retained.len()
    }

    /// Drop the retained catch-up log (used by the restore path, which
    /// rebuilds sequencing state without the original payloads).
    pub fn clear_retained(&mut self) {
        self.retained.clear();
        self.retained_bytes = 0;
    }

    /// Iterate over `(seq, payload)` still buffered, from `from` upward.
    pub fn iter_from(&self, from: SeqNo) -> impl Iterator<Item = (SeqNo, &Bytes)> {
        self.buffered.range(from..).map(|(s, p)| (*s, p))
    }

    /// Highest assigned sequence number (0 before the first publish).
    pub fn last_assigned(&self) -> SeqNo {
        self.last_assigned
    }

    /// Sequence numbers at or below this are reclaimed everywhere.
    pub fn reclaimed_up_to(&self) -> SeqNo {
        self.reclaimed_up_to
    }

    /// Number of buffered payloads.
    pub fn len(&self) -> usize {
        self.buffered.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered.is_empty()
    }

    /// Buffered payload bytes.
    pub fn bytes(&self) -> usize {
        self.buffered_bytes
    }
}

/// Receive-side reassembly for one remote origin's stream.
#[derive(Debug, Default)]
pub struct ReceiveState {
    delivered: SeqNo,
    pending: BTreeMap<SeqNo, Bytes>,
}

impl ReceiveState {
    /// Fresh state: nothing delivered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept `(seq, payload)`; returns the messages now deliverable in
    /// FIFO order (empty if `seq` leaves a gap). Duplicates and
    /// already-delivered sequences are dropped.
    pub fn on_data(&mut self, seq: SeqNo, payload: Bytes) -> Vec<(SeqNo, Bytes)> {
        if seq <= self.delivered {
            return Vec::new();
        }
        self.pending.insert(seq, payload);
        let mut out = Vec::new();
        while let Some(payload) = self.pending.remove(&(self.delivered + 1)) {
            self.delivered += 1;
            out.push((self.delivered, payload));
        }
        out
    }

    /// Highest sequence number delivered in order — the value this node
    /// advertises as its `received` ACK.
    pub fn delivered(&self) -> SeqNo {
        self.delivered
    }

    /// Declare that everything up to `seq` was obtained out of band
    /// (storage-system state transfer after a long absence, §III-E);
    /// delivery resumes at `seq + 1`. Parked messages at or below `seq`
    /// are discarded; later ones may now become deliverable and are
    /// returned in order.
    pub fn fast_forward(&mut self, seq: SeqNo) -> Vec<(SeqNo, Bytes)> {
        if seq <= self.delivered {
            return Vec::new();
        }
        self.delivered = seq;
        self.pending.retain(|s, _| *s > seq);
        let mut out = Vec::new();
        while let Some(payload) = self.pending.remove(&(self.delivered + 1)) {
            self.delivered += 1;
            out.push((self.delivered, payload));
        }
        out
    }

    /// Number of out-of-order messages parked.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn publish_assigns_sequential_numbers() {
        let mut sb = SendBuffer::new(1024);
        assert_eq!(sb.publish(b(10)).unwrap(), 1);
        assert_eq!(sb.publish(b(10)).unwrap(), 2);
        assert_eq!(sb.last_assigned(), 2);
        assert_eq!(sb.len(), 2);
        assert_eq!(sb.bytes(), 20);
    }

    #[test]
    fn backpressure_when_full() {
        let mut sb = SendBuffer::new(100);
        sb.publish(b(60)).unwrap();
        assert!(matches!(
            sb.publish(b(60)),
            Err(CoreError::WouldBlock { .. })
        ));
        // Reclaim frees space; publish succeeds again.
        assert_eq!(sb.reclaim(1), 1);
        assert_eq!(sb.publish(b(60)).unwrap(), 2);
    }

    #[test]
    fn oversized_first_message_is_accepted_when_buffer_empty() {
        // A single payload larger than capacity must not deadlock.
        let mut sb = SendBuffer::new(10);
        assert_eq!(sb.publish(b(50)).unwrap(), 1);
        assert!(matches!(
            sb.publish(b(1)),
            Err(CoreError::WouldBlock { .. })
        ));
    }

    #[test]
    fn reclaim_is_idempotent_and_partial() {
        let mut sb = SendBuffer::new(1024);
        for _ in 0..5 {
            sb.publish(b(10)).unwrap();
        }
        assert_eq!(sb.reclaim(3), 3);
        assert_eq!(sb.reclaim(3), 0);
        assert_eq!(sb.len(), 2);
        assert_eq!(sb.reclaimed_up_to(), 3);
        assert!(sb.get(3).is_none());
        assert!(sb.get(4).is_some());
    }

    #[test]
    fn iter_from_resumes_at_sequence() {
        let mut sb = SendBuffer::new(1024);
        for _ in 0..5 {
            sb.publish(b(1)).unwrap();
        }
        sb.reclaim(2);
        let seqs: Vec<SeqNo> = sb.iter_from(4).map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn in_order_delivery() {
        let mut rs = ReceiveState::new();
        assert_eq!(rs.on_data(1, b(1)).len(), 1);
        assert_eq!(rs.on_data(2, b(1)).len(), 1);
        assert_eq!(rs.delivered(), 2);
    }

    #[test]
    fn gaps_are_held_back_and_released() {
        let mut rs = ReceiveState::new();
        assert!(rs.on_data(2, b(1)).is_empty());
        assert!(rs.on_data(3, b(1)).is_empty());
        assert_eq!(rs.pending(), 2);
        let delivered = rs.on_data(1, b(1));
        assert_eq!(
            delivered.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(rs.delivered(), 3);
        assert_eq!(rs.pending(), 0);
    }

    #[test]
    fn retention_keeps_reclaimed_payloads_within_cap() {
        let mut sb = SendBuffer::with_retention(1024, 25);
        for _ in 0..5 {
            sb.publish(b(10)).unwrap();
        }
        sb.reclaim(4);
        // 40 bytes reclaimed but only 25 retained: seqs 1 and 2 evicted.
        assert_eq!(sb.retained_len(), 2);
        assert_eq!(sb.retained_bytes(), 20);
        assert_eq!(sb.first_replayable(), 3);
        assert!(sb.replay_get(2).is_none());
        assert!(sb.replay_get(3).is_some());
        assert!(sb.replay_get(4).is_some());
        // Seq 5 is still in the live window; replay spans both.
        assert!(sb.get(5).is_some());
        assert!(sb.replay_get(5).is_some());
    }

    #[test]
    fn no_retention_replays_only_live_window() {
        let mut sb = SendBuffer::new(1024);
        for _ in 0..3 {
            sb.publish(b(10)).unwrap();
        }
        sb.reclaim(2);
        assert_eq!(sb.retained_len(), 0);
        assert_eq!(sb.first_replayable(), 3);
        assert!(sb.replay_get(2).is_none());
        assert!(sb.replay_get(3).is_some());
    }

    #[test]
    fn clear_retained_empties_log() {
        let mut sb = SendBuffer::with_retention(1024, 1024);
        sb.publish(b(10)).unwrap();
        sb.reclaim(1);
        assert_eq!(sb.retained_len(), 1);
        sb.clear_retained();
        assert_eq!(sb.retained_len(), 0);
        assert_eq!(sb.retained_bytes(), 0);
        assert_eq!(sb.first_replayable(), 2);
    }

    #[test]
    fn retention_does_not_count_against_live_capacity() {
        let mut sb = SendBuffer::with_retention(100, 1000);
        sb.publish(b(90)).unwrap();
        sb.reclaim(1);
        // 90 retained bytes must not block the next publish.
        assert_eq!(sb.publish(b(90)).unwrap(), 2);
    }

    #[test]
    fn fast_forward_skips_and_releases() {
        let mut rs = ReceiveState::new();
        rs.on_data(5, b(1)); // parked
        rs.on_data(7, b(1)); // parked
        let released = rs.fast_forward(4);
        assert_eq!(
            released.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![5]
        );
        assert_eq!(rs.delivered(), 5);
        assert_eq!(rs.pending(), 1);
        assert!(rs.fast_forward(3).is_empty()); // backwards is a no-op
        assert_eq!(rs.delivered(), 5);
    }

    #[test]
    fn duplicates_and_replays_ignored() {
        let mut rs = ReceiveState::new();
        rs.on_data(1, b(1));
        assert!(rs.on_data(1, b(1)).is_empty());
        // Replay of an already-delivered prefix after a reconnect.
        assert!(rs.on_data(1, b(1)).is_empty());
        // Duplicate of a parked message.
        assert!(rs.on_data(3, b(1)).is_empty());
        assert!(rs.on_data(3, b(1)).is_empty());
        assert_eq!(rs.pending(), 1);
    }
}
