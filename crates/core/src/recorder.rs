//! The message ACK recorder (Fig. 1): a dense table of monotonic
//! counters, one per `(stream, node, ack-type)` cell, driven by the
//! control-plane stream of stability reports.
//!
//! Monotonicity is the recorder's core contract: [`AckRecorder::observe`]
//! max-merges, so a stale or reordered report can never regress a
//! counter, which in turn makes every stability frontier monotonic
//! (§III-A: "a stability report for X is overwritten by the report for Y
//! ... the upcall for Y implies the stability of messages prior to Y").

use stabilizer_dsl::{AckTypeId, AckView, NodeId, SeqNo};

/// Coordinates of one ACK-table cell that was written since the journal
/// was last drained (see [`AckRecorder::enable_journal`]).
pub type DirtyCell = (NodeId, NodeId, AckTypeId);

/// Dense `(stream × node × ack-type)` table of highest acknowledged
/// sequence numbers.
#[derive(Debug, Clone)]
pub struct AckRecorder {
    nodes: usize,
    types: usize,
    table: Vec<SeqNo>,
    /// Opt-in dirty-cell journal: coordinates of every cell written since
    /// the last [`AckRecorder::take_journal`]. `None` = disabled (the
    /// default; the hot path pays one branch). External checkers (the
    /// chaos invariant checker) enable it to replace full-table rescans
    /// with incremental verification.
    journal: Option<Vec<DirtyCell>>,
}

impl AckRecorder {
    /// A recorder for `nodes` WAN nodes and `types` ACK types, all zeros.
    pub fn new(nodes: usize, types: usize) -> Self {
        AckRecorder {
            nodes,
            types,
            table: vec![0; nodes * nodes * types],
            journal: None,
        }
    }

    /// Start journaling the coordinates of every written cell. Idempotent;
    /// an already-collected journal is kept.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Whether the dirty-cell journal is enabled.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Drain the dirty-cell journal: every cell written (via
    /// [`AckRecorder::observe`]) since the previous drain, in write
    /// order, possibly with duplicates. Empty when journaling is off.
    pub fn take_journal(&mut self) -> Vec<DirtyCell> {
        match self.journal.as_mut() {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Number of WAN nodes (and thus streams).
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of ACK types currently tracked.
    pub fn num_types(&self) -> usize {
        self.types
    }

    /// Grow the table to track at least `types` ACK types (registering a
    /// custom type at runtime).
    pub fn ensure_types(&mut self, types: usize) {
        if types <= self.types {
            return;
        }
        let mut new = vec![0; self.nodes * self.nodes * types];
        for stream in 0..self.nodes {
            for node in 0..self.nodes {
                for ty in 0..self.types {
                    new[(stream * self.nodes + node) * types + ty] =
                        self.table[(stream * self.nodes + node) * self.types + ty];
                }
            }
        }
        self.types = types;
        self.table = new;
    }

    #[inline]
    fn idx(&self, stream: NodeId, node: NodeId, ty: AckTypeId) -> usize {
        debug_assert!((stream.0 as usize) < self.nodes, "stream out of range");
        debug_assert!((node.0 as usize) < self.nodes, "node out of range");
        debug_assert!((ty.0 as usize) < self.types, "ack type out of range");
        (stream.0 as usize * self.nodes + node.0 as usize) * self.types + ty.0 as usize
    }

    /// Max-merge a stability report; returns `true` iff the cell
    /// advanced (only advances trigger predicate re-evaluation).
    pub fn observe(&mut self, stream: NodeId, node: NodeId, ty: AckTypeId, seq: SeqNo) -> bool {
        let idx = self.idx(stream, node, ty);
        // Mutation hook for the chaos harness: with this feature the
        // monotonic max-merge clamp is skipped, so stale or reordered
        // reports overwrite newer state. The chaos invariant checker
        // must flag this as an ACK-counter regression; a build that
        // doesn't is a broken checker. Never enable outside that test.
        #[cfg(feature = "chaos-unclamped-acks")]
        {
            let advanced = seq != self.table[idx];
            self.table[idx] = seq;
            if advanced {
                if let Some(j) = self.journal.as_mut() {
                    j.push((stream, node, ty));
                }
            }
            return advanced;
        }
        #[cfg(not(feature = "chaos-unclamped-acks"))]
        if seq > self.table[idx] {
            self.table[idx] = seq;
            if let Some(j) = self.journal.as_mut() {
                j.push((stream, node, ty));
            }
            true
        } else {
            false
        }
    }

    /// Current counter for one cell.
    pub fn get(&self, stream: NodeId, node: NodeId, ty: AckTypeId) -> SeqNo {
        self.table[self.idx(stream, node, ty)]
    }

    /// Set every ACK type of `(stream, node)` to at least `seq` — used
    /// for the origin's self-acknowledgment rule (§III-C: "all stability
    /// properties hold for the WAN node that originated a message").
    /// Returns `true` if any cell advanced.
    pub fn observe_all_types(&mut self, stream: NodeId, node: NodeId, seq: SeqNo) -> bool {
        let mut advanced = false;
        for ty in 0..self.types {
            advanced |= self.observe(stream, node, AckTypeId(ty as u16), seq);
        }
        advanced
    }

    /// A borrowed [`AckView`] over one stream, for predicate evaluation.
    pub fn stream_view(&self, stream: NodeId) -> StreamView<'_> {
        StreamView { rec: self, stream }
    }

    /// The smallest `received` counter across `nodes` for `stream` — the
    /// reclamation point for the stream's send buffer (everything at or
    /// below it is buffered nowhere else).
    pub fn min_over(&self, stream: NodeId, ty: AckTypeId, nodes: &[NodeId]) -> SeqNo {
        nodes
            .iter()
            .map(|n| self.get(stream, *n, ty))
            .min()
            .unwrap_or(0)
    }
}

/// [`AckView`] of a single stream's `(node, type)` plane.
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    rec: &'a AckRecorder,
    stream: NodeId,
}

impl AckView for StreamView<'_> {
    fn ack(&self, node: NodeId, ty: AckTypeId) -> SeqNo {
        self.rec.get(self.stream, node, ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::RECEIVED;

    #[test]
    fn observe_is_monotonic() {
        let mut r = AckRecorder::new(3, 2);
        assert!(r.observe(NodeId(0), NodeId(1), RECEIVED, 5));
        assert!(!r.observe(NodeId(0), NodeId(1), RECEIVED, 3)); // stale
        assert!(!r.observe(NodeId(0), NodeId(1), RECEIVED, 5)); // duplicate
        assert!(r.observe(NodeId(0), NodeId(1), RECEIVED, 9));
        assert_eq!(r.get(NodeId(0), NodeId(1), RECEIVED), 9);
    }

    #[test]
    fn cells_are_independent() {
        let mut r = AckRecorder::new(2, 2);
        r.observe(NodeId(0), NodeId(1), AckTypeId(0), 7);
        assert_eq!(r.get(NodeId(0), NodeId(1), AckTypeId(1)), 0);
        assert_eq!(r.get(NodeId(1), NodeId(1), AckTypeId(0)), 0);
        assert_eq!(r.get(NodeId(0), NodeId(0), AckTypeId(0)), 0);
    }

    #[test]
    fn self_ack_sets_all_types() {
        let mut r = AckRecorder::new(2, 3);
        assert!(r.observe_all_types(NodeId(0), NodeId(0), 12));
        for ty in 0..3 {
            assert_eq!(r.get(NodeId(0), NodeId(0), AckTypeId(ty)), 12);
        }
        assert!(!r.observe_all_types(NodeId(0), NodeId(0), 12));
    }

    #[test]
    fn ensure_types_preserves_counters() {
        let mut r = AckRecorder::new(2, 1);
        r.observe(NodeId(1), NodeId(0), AckTypeId(0), 4);
        r.ensure_types(3);
        assert_eq!(r.num_types(), 3);
        assert_eq!(r.get(NodeId(1), NodeId(0), AckTypeId(0)), 4);
        assert_eq!(r.get(NodeId(1), NodeId(0), AckTypeId(2)), 0);
        r.ensure_types(2); // shrink requests are no-ops
        assert_eq!(r.num_types(), 3);
    }

    #[test]
    fn stream_view_implements_ackview() {
        let mut r = AckRecorder::new(2, 1);
        r.observe(NodeId(1), NodeId(0), RECEIVED, 8);
        let v = r.stream_view(NodeId(1));
        assert_eq!(v.ack(NodeId(0), RECEIVED), 8);
        assert_eq!(v.ack(NodeId(1), RECEIVED), 0);
    }

    #[test]
    fn journal_records_writes_and_drains() {
        let mut r = AckRecorder::new(2, 2);
        r.observe(NodeId(0), NodeId(1), RECEIVED, 1); // before enabling: unrecorded
        r.enable_journal();
        assert!(r.journal_enabled());
        assert!(r.take_journal().is_empty());
        r.observe(NodeId(0), NodeId(1), RECEIVED, 5);
        r.observe(NodeId(0), NodeId(1), RECEIVED, 3); // stale: no write
        r.observe(NodeId(1), NodeId(0), AckTypeId(1), 2);
        let j = r.take_journal();
        assert_eq!(
            j,
            vec![
                (NodeId(0), NodeId(1), RECEIVED),
                (NodeId(1), NodeId(0), AckTypeId(1)),
            ]
        );
        assert!(r.take_journal().is_empty(), "drain resets");
    }

    #[test]
    fn min_over_computes_reclamation_point() {
        let mut r = AckRecorder::new(3, 1);
        r.observe(NodeId(0), NodeId(0), RECEIVED, 10);
        r.observe(NodeId(0), NodeId(1), RECEIVED, 7);
        r.observe(NodeId(0), NodeId(2), RECEIVED, 9);
        let all = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(r.min_over(NodeId(0), RECEIVED, &all), 7);
        assert_eq!(r.min_over(NodeId(0), RECEIVED, &[]), 0);
    }
}
