//! Error type for the Stabilizer core library.

use stabilizer_dsl::DslError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the Stabilizer core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Configuration-file or builder error.
    Config(String),
    /// A predicate failed to compile.
    Dsl(DslError),
    /// `publish` would exceed the send-buffer capacity; retry after the
    /// stability frontier advances and space is reclaimed.
    WouldBlock {
        /// Bytes currently buffered.
        buffered: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// The payload exceeds `max_payload_bytes`.
    PayloadTooLarge {
        /// Attempted payload size.
        size: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A predicate was rejected at install time by static analysis
    /// (`option analysis deny`): it carried error- or warning-level
    /// findings. The rendered diagnostics are included verbatim.
    PredicateRejected {
        /// The predicate key being installed.
        key: String,
        /// Human-rendered analyzer findings.
        report: String,
    },
    /// Reference to an unregistered predicate key.
    UnknownPredicate(String),
    /// Reference to a stream whose origin is not in the topology.
    UnknownStream(String),
    /// A malformed wire frame was received.
    Wire(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
            CoreError::Dsl(e) => write!(f, "predicate error: {e}"),
            CoreError::WouldBlock { buffered, capacity } => {
                write!(f, "send buffer full ({buffered}/{capacity} bytes)")
            }
            CoreError::PayloadTooLarge { size, max } => {
                write!(f, "payload of {size} bytes exceeds maximum {max}")
            }
            CoreError::PredicateRejected { key, report } => {
                write!(
                    f,
                    "predicate {key:?} rejected by static analysis:\n{report}"
                )
            }
            CoreError::UnknownPredicate(k) => write!(f, "unknown predicate {k:?}"),
            CoreError::UnknownStream(s) => write!(f, "unknown stream {s}"),
            CoreError::Wire(m) => write!(f, "wire format error: {m}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dsl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DslError> for CoreError {
    fn from(e: DslError) -> Self {
        CoreError::Dsl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::WouldBlock {
            buffered: 10,
            capacity: 8,
        };
        assert!(e.to_string().contains("10/8"));
        let e = CoreError::UnknownPredicate("Q".into());
        assert!(e.to_string().contains("\"Q\""));
    }

    #[test]
    fn dsl_error_is_source() {
        let e = CoreError::from(DslError::Resolve("x".into()));
        assert!(e.source().is_some());
    }
}
