//! Observer plumbing for threaded (non-simulated) runtimes.
//!
//! The simulator exposes every protocol upcall through
//! [`AppHooks`](crate::sim_driver::AppHooks) plus the timestamped logs on
//! [`SimNode`](crate::sim_driver::SimNode); external checkers (the chaos
//! harness's invariant checker) consume those. The threaded TCP runtime
//! needs the same seam, but its upcalls arrive from multiple OS threads
//! with wall-clock timestamps. [`RuntimeObserver`] is that seam: the
//! runtime invokes it for every action **while still holding the node's
//! state lock**, so an external checker that locks the state machine and
//! then reads an observer's log always sees a log at least as fresh as
//! the state — the property the chaos checker's `delivered-without-
//! upcall` invariant depends on.
//!
//! [`RuntimeLog`] is the ready-made observer used by the TCP chaos
//! harness: it records the same four logs a `SimNode` keeps, timestamped
//! with [`SimTime`] (nanoseconds since the run's start) so the
//! runtime-agnostic checker consumes both runtimes' logs identically.

use crate::frontier::{FrontierUpdate, WaitToken};
use bytes::Bytes;
use parking_lot::Mutex;
use stabilizer_dsl::{NodeId, SeqNo};
use stabilizer_netsim::SimTime;
use std::sync::Arc;

/// Callbacks the threaded runtime invokes for every emitted action. All
/// methods have default empty bodies; implement only what you observe.
///
/// Implementations must be cheap and must not call back into the node
/// handle: the runtime invokes them with the state-machine lock held.
pub trait RuntimeObserver: Send {
    /// A mirrored payload was delivered (upcall).
    fn on_deliver(&mut self, _now_nanos: u64, _origin: NodeId, _seq: SeqNo, _payload: &Bytes) {}
    /// A stability frontier advanced.
    fn on_frontier(&mut self, _now_nanos: u64, _update: &FrontierUpdate) {}
    /// A `waitfor` completed.
    fn on_wait_done(&mut self, _now_nanos: u64, _token: WaitToken) {}
    /// A peer became suspected.
    fn on_suspected(&mut self, _now_nanos: u64, _node: NodeId) {}
    /// A suspected peer came back.
    fn on_recovered(&mut self, _now_nanos: u64, _node: NodeId) {}
    /// A stream was fast-forwarded out of band (§III-E state transfer);
    /// delivery resumes after `seq` without upcalls for the skipped
    /// prefix.
    fn on_catch_up(&mut self, _now_nanos: u64, _stream: NodeId, _seq: SeqNo) {}
    /// A writer gave up (re)connecting to a peer permanently (its
    /// configured retry budget ran out).
    fn on_connect_failed(&mut self, _now_nanos: u64, _peer: NodeId) {}
    /// This node (as donor) sent one retained-log chunk of `stream` to a
    /// recovering peer (§III-E state transfer, donor side).
    fn on_transfer_chunk(
        &mut self,
        _now_nanos: u64,
        _to: NodeId,
        _stream: NodeId,
        _seq: SeqNo,
        _len: usize,
        _done: bool,
    ) {
    }
    /// This node (re)entered the cluster and requested catch-up on
    /// `streams` peer streams.
    fn on_join(&mut self, _now_nanos: u64, _streams: usize) {}
}

/// Timestamped logs of one threaded node's upcalls, shaped exactly like
/// the logs a simulated `SimNode` keeps so runtime-agnostic checkers
/// read both the same way.
#[derive(Debug, Default)]
pub struct RuntimeLog {
    /// Frontier advances: `(time, update)`.
    pub frontier_log: Vec<(SimTime, FrontierUpdate)>,
    /// Deliveries: `(time, origin, seq, payload_len)` — lengths instead
    /// of payloads so byte-level accounting works without keeping the
    /// data alive.
    pub delivery_log: Vec<(SimTime, NodeId, SeqNo, usize)>,
    /// Completed waits.
    pub wait_done_log: Vec<(SimTime, WaitToken)>,
    /// Suspicions raised.
    pub suspected_log: Vec<(SimTime, NodeId)>,
    /// Suspicions cleared.
    pub recovered_log: Vec<(SimTime, NodeId)>,
    /// Out-of-band stream fast-forwards (§III-E): `(time, stream, seq)`.
    pub catchup_log: Vec<(SimTime, NodeId, SeqNo)>,
    /// Peers a writer permanently failed to connect to.
    pub connect_failures: Vec<(SimTime, NodeId)>,
}

/// Shared handle to a [`RuntimeLog`]: the runtime's observer writes, the
/// harness reads.
pub type SharedRuntimeLog = Arc<Mutex<RuntimeLog>>;

/// Create an empty shared runtime log.
pub fn shared_runtime_log() -> SharedRuntimeLog {
    Arc::new(Mutex::new(RuntimeLog::default()))
}

/// The [`RuntimeObserver`] that appends every upcall to a shared
/// [`RuntimeLog`].
pub struct LogObserver {
    log: SharedRuntimeLog,
}

impl LogObserver {
    /// Observer appending into `log`.
    pub fn new(log: SharedRuntimeLog) -> Self {
        LogObserver { log }
    }
}

impl RuntimeObserver for LogObserver {
    fn on_deliver(&mut self, now_nanos: u64, origin: NodeId, seq: SeqNo, payload: &Bytes) {
        self.log
            .lock()
            .delivery_log
            .push((SimTime(now_nanos), origin, seq, payload.len()));
    }

    fn on_frontier(&mut self, now_nanos: u64, update: &FrontierUpdate) {
        self.log
            .lock()
            .frontier_log
            .push((SimTime(now_nanos), update.clone()));
    }

    fn on_wait_done(&mut self, now_nanos: u64, token: WaitToken) {
        self.log
            .lock()
            .wait_done_log
            .push((SimTime(now_nanos), token));
    }

    fn on_suspected(&mut self, now_nanos: u64, node: NodeId) {
        self.log
            .lock()
            .suspected_log
            .push((SimTime(now_nanos), node));
    }

    fn on_recovered(&mut self, now_nanos: u64, node: NodeId) {
        self.log
            .lock()
            .recovered_log
            .push((SimTime(now_nanos), node));
    }

    fn on_catch_up(&mut self, now_nanos: u64, stream: NodeId, seq: SeqNo) {
        self.log
            .lock()
            .catchup_log
            .push((SimTime(now_nanos), stream, seq));
    }

    fn on_connect_failed(&mut self, now_nanos: u64, peer: NodeId) {
        self.log
            .lock()
            .connect_failures
            .push((SimTime(now_nanos), peer));
    }
}

/// Fan-out observer: forwards every upcall to each observer in the
/// chain, in order. Lets the chaos `LogObserver` and a telemetry
/// `MetricsObserver` both watch one node even where the runtime accepts
/// exactly one observer slot (`SpawnOptions`).
#[derive(Default)]
pub struct ObserverChain {
    observers: Vec<Box<dyn RuntimeObserver>>,
}

impl ObserverChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an observer (builder style).
    #[must_use]
    pub fn with(mut self, obs: Box<dyn RuntimeObserver>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Append an observer.
    pub fn push(&mut self, obs: Box<dyn RuntimeObserver>) {
        self.observers.push(obs);
    }

    /// Number of chained observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True when no observers are chained.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl RuntimeObserver for ObserverChain {
    fn on_deliver(&mut self, now_nanos: u64, origin: NodeId, seq: SeqNo, payload: &Bytes) {
        for obs in &mut self.observers {
            obs.on_deliver(now_nanos, origin, seq, payload);
        }
    }

    fn on_frontier(&mut self, now_nanos: u64, update: &FrontierUpdate) {
        for obs in &mut self.observers {
            obs.on_frontier(now_nanos, update);
        }
    }

    fn on_wait_done(&mut self, now_nanos: u64, token: WaitToken) {
        for obs in &mut self.observers {
            obs.on_wait_done(now_nanos, token);
        }
    }

    fn on_suspected(&mut self, now_nanos: u64, node: NodeId) {
        for obs in &mut self.observers {
            obs.on_suspected(now_nanos, node);
        }
    }

    fn on_recovered(&mut self, now_nanos: u64, node: NodeId) {
        for obs in &mut self.observers {
            obs.on_recovered(now_nanos, node);
        }
    }

    fn on_catch_up(&mut self, now_nanos: u64, stream: NodeId, seq: SeqNo) {
        for obs in &mut self.observers {
            obs.on_catch_up(now_nanos, stream, seq);
        }
    }

    fn on_connect_failed(&mut self, now_nanos: u64, peer: NodeId) {
        for obs in &mut self.observers {
            obs.on_connect_failed(now_nanos, peer);
        }
    }

    fn on_transfer_chunk(
        &mut self,
        now_nanos: u64,
        to: NodeId,
        stream: NodeId,
        seq: SeqNo,
        len: usize,
        done: bool,
    ) {
        for obs in &mut self.observers {
            obs.on_transfer_chunk(now_nanos, to, stream, seq, len, done);
        }
    }

    fn on_join(&mut self, now_nanos: u64, streams: usize) {
        for obs in &mut self.observers {
            obs.on_join(now_nanos, streams);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_observer_records_in_order() {
        let log = shared_runtime_log();
        let mut obs = LogObserver::new(log.clone());
        obs.on_deliver(5, NodeId(1), 1, &Bytes::from_static(b"x"));
        obs.on_deliver(9, NodeId(1), 2, &Bytes::from_static(b"yy"));
        obs.on_suspected(11, NodeId(2));
        obs.on_recovered(12, NodeId(2));
        obs.on_catch_up(12, NodeId(1), 7);
        obs.on_connect_failed(13, NodeId(3));
        let log = log.lock();
        assert_eq!(
            log.delivery_log,
            vec![(SimTime(5), NodeId(1), 1, 1), (SimTime(9), NodeId(1), 2, 2)]
        );
        assert_eq!(log.suspected_log, vec![(SimTime(11), NodeId(2))]);
        assert_eq!(log.recovered_log, vec![(SimTime(12), NodeId(2))]);
        assert_eq!(log.catchup_log, vec![(SimTime(12), NodeId(1), 7)]);
        assert_eq!(log.connect_failures, vec![(SimTime(13), NodeId(3))]);
    }

    #[test]
    fn observer_chain_fans_out_in_order() {
        let first = shared_runtime_log();
        let second = shared_runtime_log();
        let mut chain = ObserverChain::new()
            .with(Box::new(LogObserver::new(first.clone())))
            .with(Box::new(LogObserver::new(second.clone())));
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
        chain.on_deliver(7, NodeId(0), 1, &Bytes::from_static(b"abc"));
        chain.on_suspected(8, NodeId(2));
        for log in [&first, &second] {
            let log = log.lock();
            assert_eq!(log.delivery_log, vec![(SimTime(7), NodeId(0), 1, 3)]);
            assert_eq!(log.suspected_log, vec![(SimTime(8), NodeId(2))]);
        }
    }
}
