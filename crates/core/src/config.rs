//! Cluster and node configuration.
//!
//! The paper's Stabilizer reads a configuration file listing the data
//! centers of the deployment (with a subset notation designating
//! availability zones) plus initially registered predicates; nodes look
//! up their own name to learn their rank (§III-C). [`ClusterConfig`]
//! models that file and [`ClusterConfig::parse`] reads the same
//! information from a simple line-oriented text format:
//!
//! ```text
//! # comment
//! az North_California n1 n2
//! az North_Virginia n3 n4 n5 n6
//! predicate AllWNodes MIN($ALLWNODES-$MYWNODE)
//! acktype verified n1 n2
//! replicate n1 n1 n2 n3
//! option ack_flush_micros 500
//! option analysis deny
//! ```
//!
//! The `replicate` directive (partial replication) places a stream on a
//! subset of the nodes; streams without one stay fully replicated, so a
//! `replicate`-free config behaves exactly as before the directive
//! existed.

use crate::error::CoreError;
use stabilizer_dsl::{NodeId, Topology};
use stabilizer_place::{parse_replicate, PlacementMap, ReplicateDirective};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a node does with static-analysis findings when a predicate is
/// installed (`register_predicate` / `change_predicate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Skip analysis entirely.
    Off,
    /// Run the analyzer and record its findings (retrievable via
    /// `StabilizerNode::analysis_report`), but install the predicate
    /// regardless.
    #[default]
    Warn,
    /// Reject installation of any predicate with error- or warning-level
    /// findings (info-level findings still install).
    Deny,
}

/// Tunable per-node options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Outgoing-ACK coalescing interval in microseconds. `0` flushes
    /// eagerly after every processed message (lowest latency); larger
    /// values batch control traffic (§III-A notes Stabilizer batches
    /// actions and reports via monotonic upcalls).
    pub ack_flush_micros: u64,
    /// Send-buffer capacity in bytes; `publish` returns backpressure once
    /// exceeded (the data plane "can also buffer data for later
    /// transmission if needed", §III-B).
    pub send_buffer_bytes: usize,
    /// Failure-suspicion timeout in milliseconds: a peer is suspected
    /// after this long without any traffic (§III-E's "predicate update
    /// timer"). `0` disables failure detection (the default — enable it
    /// for deployments and fault experiments; a disabled detector keeps
    /// simulations free of periodic wake-ups so `run_until_idle`
    /// terminates).
    pub failure_timeout_millis: u64,
    /// Heartbeat period in milliseconds, keeping control channels alive
    /// when there is no data traffic. `0` disables heartbeats (default).
    pub heartbeat_millis: u64,
    /// If true, a suspected node is automatically excluded from all
    /// registered predicates ("the primary can adjust the predicate to
    /// eliminate the impact", §III-E).
    pub auto_exclude_suspects: bool,
    /// Maximum payload bytes per data message; larger publishes are
    /// rejected (applications chunk above this, as the Dropbox-like app
    /// does at 8 KB).
    pub max_payload_bytes: usize,
    /// Retransmission timeout in milliseconds for the paper's "basic
    /// reliability mechanism that ensures lossless FIFO delivery"
    /// (§III-A): if a peer's `received` counter makes no progress for
    /// this long while data is outstanding, the unacknowledged window is
    /// resent (go-back-N). `0` (default) disables it — appropriate when
    /// the transport is already reliable FIFO (TCP, the loss-free
    /// simulator).
    pub retransmit_millis: u64,
    /// Maximum consecutive failed connect attempts a transport writer
    /// makes per (re)connect episode before declaring the peer
    /// unreachable and surfacing a permanent connect failure. `0`
    /// (default) retries forever — appropriate for deployments where a
    /// peer joining late is normal.
    pub connect_retry_limit: u64,
    /// Number of stream shards per node (`stabilizer-shard`): each shard
    /// runs its own sequencer, send buffer, ACK recorder, and frontier
    /// engine, and the node-level stability frontier is the min-combine
    /// over shards. `1` (default) keeps the paper's single-stream data
    /// plane.
    pub shards: u16,
    /// Bytes of already-reclaimed payloads the send buffer retains for
    /// §III-E catch-up replay (oldest evicted first once exceeded). `0`
    /// (default) disables retention: a node evicted from the
    /// acknowledgment set can then only rejoin by fast-forwarding over
    /// the reclaimed prefix.
    pub retain_log_bytes: usize,
    /// Maximum unacknowledged catch-up chunks a donor keeps in flight
    /// per transfer session — the rate limit that stops replay traffic
    /// from starving the live data plane.
    pub transfer_window: u64,
    /// Transfer-supervision period in milliseconds: a recovering node
    /// re-issues its `TransferRequest` if an inbound catch-up session
    /// makes no progress for this long (this is also what resumes a
    /// transfer after a donor or joiner crash). `0` disables the
    /// transfer machinery entirely (pre-§III-E behavior).
    pub transfer_millis: u64,
    /// Static-analysis enforcement at predicate-install time.
    pub analysis: AnalysisMode,
    /// Crash budget `f` assumed by the `crash-unsatisfiable` lint: the
    /// analyzer flags predicates that some set of `f` simultaneous
    /// non-origin crashes would stall forever (absent the §III-E
    /// exclusion rewrite). `0` (default) disables the check.
    pub failure_budget: u64,
}

impl Options {
    /// Set the ACK-coalescing interval (µs); `0` = eager.
    pub fn ack_flush_micros(mut self, v: u64) -> Self {
        self.ack_flush_micros = v;
        self
    }

    /// Set the send-buffer capacity in bytes.
    pub fn send_buffer_bytes(mut self, v: usize) -> Self {
        self.send_buffer_bytes = v;
        self
    }

    /// Enable failure detection with the given timeout (ms).
    pub fn failure_timeout_millis(mut self, v: u64) -> Self {
        self.failure_timeout_millis = v;
        self
    }

    /// Enable heartbeats with the given period (ms).
    pub fn heartbeat_millis(mut self, v: u64) -> Self {
        self.heartbeat_millis = v;
        self
    }

    /// Automatically exclude suspected nodes from predicates.
    pub fn auto_exclude_suspects(mut self, v: bool) -> Self {
        self.auto_exclude_suspects = v;
        self
    }

    /// Set the maximum payload size per message.
    pub fn max_payload_bytes(mut self, v: usize) -> Self {
        self.max_payload_bytes = v;
        self
    }

    /// Enable the reliability mechanism with the given timeout (ms).
    pub fn retransmit_millis(mut self, v: u64) -> Self {
        self.retransmit_millis = v;
        self
    }

    /// Cap consecutive failed connect attempts (`0` = retry forever).
    pub fn connect_retry_limit(mut self, v: u64) -> Self {
        self.connect_retry_limit = v;
        self
    }

    /// Set the number of stream shards per node (clamped to at least 1).
    pub fn shards(mut self, v: u16) -> Self {
        self.shards = v.max(1);
        self
    }

    /// Set the retained catch-up log capacity in bytes (`0` = off).
    pub fn retain_log_bytes(mut self, v: usize) -> Self {
        self.retain_log_bytes = v;
        self
    }

    /// Set the per-session transfer window (in-flight chunk cap).
    pub fn transfer_window(mut self, v: u64) -> Self {
        self.transfer_window = v.max(1);
        self
    }

    /// Enable the transfer machinery with the given supervision period
    /// (ms); `0` disables state transfer.
    pub fn transfer_millis(mut self, v: u64) -> Self {
        self.transfer_millis = v;
        self
    }

    /// Set the static-analysis enforcement mode.
    pub fn analysis(mut self, v: AnalysisMode) -> Self {
        self.analysis = v;
        self
    }

    /// Set the crash budget assumed by the `crash-unsatisfiable` lint.
    pub fn failure_budget(mut self, v: u64) -> Self {
        self.failure_budget = v;
        self
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            ack_flush_micros: 0,
            send_buffer_bytes: 256 * 1024 * 1024,
            failure_timeout_millis: 0,
            heartbeat_millis: 0,
            auto_exclude_suspects: false,
            max_payload_bytes: 64 * 1024,
            retransmit_millis: 0,
            connect_retry_limit: 0,
            shards: 1,
            retain_log_bytes: 0,
            transfer_window: 32,
            transfer_millis: 0,
            analysis: AnalysisMode::default(),
            failure_budget: 0,
        }
    }
}

/// The deployment-wide configuration: topology, initial predicates, and
/// options. Shared (via `Arc`) by every local Stabilizer component.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    topology: Arc<Topology>,
    predicates: BTreeMap<String, String>,
    ack_types: Vec<(String, Vec<String>)>,
    options: Options,
    placement: Arc<PlacementMap>,
}

impl ClusterConfig {
    /// Build from an existing topology with default options.
    pub fn new(topology: Topology) -> Self {
        let placement = Arc::new(PlacementMap::full(topology.num_nodes()));
        ClusterConfig {
            topology: Arc::new(topology),
            predicates: BTreeMap::new(),
            ack_types: Vec::new(),
            options: Options::default(),
            placement,
        }
    }

    /// Add a predicate to be registered at startup.
    pub fn with_predicate(mut self, key: &str, source: &str) -> Self {
        self.predicates.insert(key.to_owned(), source.to_owned());
        self
    }

    /// Declare an application ACK type registered at startup. A non-empty
    /// `emitters` list restricts which nodes ever bump the type (feeding
    /// the analyzer's `unemitted-ack-type` lint); empty means every node
    /// emits it.
    pub fn with_ack_type(mut self, name: &str, emitters: &[&str]) -> Self {
        self.ack_types.push((
            name.to_owned(),
            emitters.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Replace the options.
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Replace the placement map (partial replication).
    ///
    /// # Panics
    ///
    /// Panics if `placement` was built for a different node count than
    /// this config's topology.
    pub fn with_placement(mut self, placement: PlacementMap) -> Self {
        assert_eq!(
            placement.num_nodes(),
            self.topology.num_nodes(),
            "placement map covers {} nodes but topology has {}",
            placement.num_nodes(),
            self.topology.num_nodes()
        );
        self.placement = Arc::new(placement);
        self
    }

    /// Resolve `replicate` directives against this config's topology and
    /// install the resulting placement.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] on placement validation failures
    /// (unknown stream/node, origin excluded, empty set, duplicates).
    pub fn with_replication(
        mut self,
        directives: &[ReplicateDirective],
    ) -> Result<Self, CoreError> {
        let placement = PlacementMap::from_directives(&self.topology, directives)
            .map_err(|e| CoreError::Config(e.to_string()))?;
        self.placement = Arc::new(placement);
        Ok(self)
    }

    /// The WAN topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Startup predicates as `(key, source)` pairs.
    pub fn predicates(&self) -> impl Iterator<Item = (&str, &str)> {
        self.predicates
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Declared application ACK types as `(name, emitter-names)` pairs, in
    /// declaration order. An empty emitter list means unrestricted.
    pub fn ack_types(&self) -> &[(String, Vec<String>)] {
        &self.ack_types
    }

    /// Node options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// The stream → replica-set placement (full replication by default).
    pub fn placement(&self) -> &Arc<PlacementMap> {
        &self.placement
    }

    /// Number of WAN nodes.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Parse the line-oriented configuration format shown in the module
    /// docs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] on unknown directives, malformed
    /// lines, duplicate names, or invalid option values.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let mut builder = Topology::builder();
        let mut predicates = BTreeMap::new();
        let mut ack_types: Vec<(String, Vec<String>)> = Vec::new();
        let mut replicates: Vec<ReplicateDirective> = Vec::new();
        let mut options = Options::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap();
            let err = |msg: String| CoreError::Config(format!("line {}: {msg}", lineno + 1));
            match directive {
                "az" => {
                    let name = parts.next().ok_or_else(|| err("az needs a name".into()))?;
                    let nodes: Vec<&str> = parts.collect();
                    if nodes.is_empty() {
                        return Err(err(format!("az {name} lists no nodes")));
                    }
                    builder = builder.az(name, &nodes);
                }
                "predicate" => {
                    let key = parts
                        .next()
                        .ok_or_else(|| err("predicate needs a key".into()))?;
                    let rest: Vec<&str> = parts.collect();
                    if rest.is_empty() {
                        return Err(err(format!("predicate {key} has no body")));
                    }
                    predicates.insert(key.to_owned(), rest.join(" "));
                }
                "acktype" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("acktype needs a name".into()))?;
                    if ack_types.iter().any(|(n, _)| n == name) {
                        return Err(err(format!("duplicate acktype {name}")));
                    }
                    let emitters: Vec<String> = parts.map(str::to_owned).collect();
                    ack_types.push((name.to_owned(), emitters));
                }
                "replicate" => {
                    // Re-parse the whole line with the span-carrying
                    // placement parser; name resolution happens once the
                    // topology is complete.
                    let d = parse_replicate(line).map_err(|e| err(e.to_string()))?;
                    if d.nodes.is_empty() {
                        return Err(err(format!(
                            "replicate {}: replica set is empty",
                            d.stream.name
                        )));
                    }
                    replicates.push(d);
                }
                "option" => {
                    let key = parts
                        .next()
                        .ok_or_else(|| err("option needs a key".into()))?;
                    let val = parts
                        .next()
                        .ok_or_else(|| err(format!("option {key} has no value")))?;
                    let parse_u64 = |v: &str| {
                        v.parse::<u64>()
                            .map_err(|_| err(format!("option {key}: bad number {v}")))
                    };
                    match key {
                        "ack_flush_micros" => options.ack_flush_micros = parse_u64(val)?,
                        "send_buffer_bytes" => options.send_buffer_bytes = parse_u64(val)? as usize,
                        "failure_timeout_millis" => {
                            options.failure_timeout_millis = parse_u64(val)?
                        }
                        "heartbeat_millis" => options.heartbeat_millis = parse_u64(val)?,
                        "max_payload_bytes" => options.max_payload_bytes = parse_u64(val)? as usize,
                        "retransmit_millis" => options.retransmit_millis = parse_u64(val)?,
                        "connect_retry_limit" => options.connect_retry_limit = parse_u64(val)?,
                        "retain_log_bytes" => options.retain_log_bytes = parse_u64(val)? as usize,
                        "transfer_window" => {
                            let v = parse_u64(val)?;
                            if v == 0 {
                                return Err(err("option transfer_window: must be >= 1".into()));
                            }
                            options.transfer_window = v;
                        }
                        "transfer_millis" => options.transfer_millis = parse_u64(val)?,
                        "shards" => {
                            let v = parse_u64(val)?;
                            if v == 0 || v > u64::from(u16::MAX) {
                                return Err(err(format!("option shards: out of range {v}")));
                            }
                            options.shards = v as u16;
                        }
                        "auto_exclude_suspects" => {
                            options.auto_exclude_suspects = match val {
                                "true" => true,
                                "false" => false,
                                _ => return Err(err(format!("option {key}: expected true/false"))),
                            }
                        }
                        "analysis" => {
                            options.analysis = match val {
                                "off" => AnalysisMode::Off,
                                "warn" => AnalysisMode::Warn,
                                "deny" => AnalysisMode::Deny,
                                _ => {
                                    return Err(err(format!(
                                        "option {key}: expected off/warn/deny"
                                    )))
                                }
                            }
                        }
                        "failure_budget" => options.failure_budget = parse_u64(val)?,
                        other => return Err(err(format!("unknown option {other}"))),
                    }
                }
                other => return Err(err(format!("unknown directive {other}"))),
            }
        }
        let topology = builder
            .build()
            .map_err(|e| CoreError::Config(e.to_string()))?;
        for (name, emitters) in &ack_types {
            for node in emitters {
                if topology.node(node).is_none() {
                    return Err(CoreError::Config(format!(
                        "acktype {name}: unknown node {node}"
                    )));
                }
            }
        }
        let placement = PlacementMap::from_directives(&topology, &replicates)
            .map_err(|e| CoreError::Config(e.to_string()))?;
        Ok(ClusterConfig {
            topology: Arc::new(topology),
            predicates,
            ack_types,
            options,
            placement: Arc::new(placement),
        })
    }

    /// Peers of `me`: every node id except `me`.
    pub fn peers(&self, me: NodeId) -> Vec<NodeId> {
        self.topology
            .all_nodes()
            .into_iter()
            .filter(|n| *n != me)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Fig. 2 deployment
az North_California n1 n2
az North_Virginia n3 n4 n5 n6
az Oregon n7
az Ohio n8
predicate AllWNodes MIN($ALLWNODES-$MYWNODE)
predicate MajorityRegions KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
option ack_flush_micros 500
option auto_exclude_suspects true
";

    #[test]
    fn parses_topology_predicates_and_options() {
        let cfg = ClusterConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.num_nodes(), 8);
        assert_eq!(cfg.topology().node("n7"), Some(NodeId(6)));
        let preds: Vec<_> = cfg.predicates().collect();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].0, "AllWNodes");
        assert!(preds[1].1.starts_with("KTH_MAX(2,"));
        assert_eq!(cfg.options().ack_flush_micros, 500);
        assert!(cfg.options().auto_exclude_suspects);
    }

    #[test]
    fn rejects_unknown_directive() {
        assert!(matches!(
            ClusterConfig::parse("frobnicate x"),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn rejects_bad_option() {
        assert!(ClusterConfig::parse("az A x\noption nope 3").is_err());
        assert!(ClusterConfig::parse("az A x\noption ack_flush_micros many").is_err());
        assert!(ClusterConfig::parse("az A x\noption auto_exclude_suspects yes").is_err());
        assert!(ClusterConfig::parse("az A x\noption shards 0").is_err());
        assert!(ClusterConfig::parse("az A x\noption shards 70000").is_err());
    }

    #[test]
    fn shards_option_parses_and_defaults_to_one() {
        assert_eq!(ClusterConfig::parse("az A x").unwrap().options().shards, 1);
        let cfg = ClusterConfig::parse("az A x\noption shards 4").unwrap();
        assert_eq!(cfg.options().shards, 4);
        assert_eq!(Options::default().shards(0).shards, 1, "clamped");
    }

    #[test]
    fn analysis_and_failure_budget_options_parse() {
        let cfg = ClusterConfig::parse("az A x y").unwrap();
        assert_eq!(cfg.options().analysis, AnalysisMode::Warn);
        assert_eq!(cfg.options().failure_budget, 0);
        let cfg = ClusterConfig::parse("az A x y\noption analysis deny\noption failure_budget 2")
            .unwrap();
        assert_eq!(cfg.options().analysis, AnalysisMode::Deny);
        assert_eq!(cfg.options().failure_budget, 2);
        let cfg = ClusterConfig::parse("az A x y\noption analysis off").unwrap();
        assert_eq!(cfg.options().analysis, AnalysisMode::Off);
        assert!(ClusterConfig::parse("az A x y\noption analysis always").is_err());
    }

    #[test]
    fn transfer_options_parse_and_default() {
        let cfg = ClusterConfig::parse("az A x y").unwrap();
        assert_eq!(cfg.options().retain_log_bytes, 0);
        assert_eq!(cfg.options().transfer_window, 32);
        assert_eq!(cfg.options().transfer_millis, 0);
        let cfg = ClusterConfig::parse(
            "az A x y\noption retain_log_bytes 65536\noption transfer_window 8\noption transfer_millis 50",
        )
        .unwrap();
        assert_eq!(cfg.options().retain_log_bytes, 65536);
        assert_eq!(cfg.options().transfer_window, 8);
        assert_eq!(cfg.options().transfer_millis, 50);
        assert!(ClusterConfig::parse("az A x y\noption transfer_window 0").is_err());
        assert_eq!(
            Options::default().transfer_window(0).transfer_window,
            1,
            "clamped"
        );
    }

    #[test]
    fn acktype_directive_parses_and_validates_nodes() {
        let cfg = ClusterConfig::parse("az A x y\nacktype verified x\nacktype audit").unwrap();
        assert_eq!(
            cfg.ack_types(),
            &[
                ("verified".to_string(), vec!["x".to_string()]),
                ("audit".to_string(), vec![]),
            ]
        );
        assert!(ClusterConfig::parse("az A x y\nacktype verified ghost").is_err());
        assert!(ClusterConfig::parse("az A x y\nacktype v\nacktype v").is_err());
        assert!(ClusterConfig::parse("az A x y\nacktype").is_err());
    }

    #[test]
    fn rejects_empty_az_and_missing_bodies() {
        assert!(ClusterConfig::parse("az Lonely").is_err());
        assert!(ClusterConfig::parse("az A x\npredicate P").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = ClusterConfig::parse("# hi\n\naz A x y\n").unwrap();
        assert_eq!(cfg.num_nodes(), 2);
    }

    #[test]
    fn replicate_directive_parses_and_validates() {
        let cfg = ClusterConfig::parse("az A x y z\nreplicate x x y").unwrap();
        let p = cfg.placement();
        assert!(!p.is_full_replication());
        assert_eq!(p.replicas(NodeId(0)), &[NodeId(0), NodeId(1)]);
        assert!(!p.is_replica(NodeId(0), NodeId(2)));
        assert_eq!(p.replicas(NodeId(1)).len(), 3, "unplaced streams stay full");
        assert!(ClusterConfig::parse("az A x y\nreplicate ghost ghost").is_err());
        assert!(ClusterConfig::parse("az A x y\nreplicate x y").is_err());
        assert!(ClusterConfig::parse("az A x y\nreplicate x").is_err());
        assert!(ClusterConfig::parse("az A x y\nreplicate x x\nreplicate x x y").is_err());
    }

    #[test]
    fn replicate_free_config_is_full_replication() {
        let cfg = ClusterConfig::parse("az A x y z").unwrap();
        assert!(cfg.placement().is_full_replication());
        assert_eq!(
            cfg.placement().placement_hash(),
            PlacementMap::full(3).placement_hash()
        );
    }

    #[test]
    fn peers_excludes_self() {
        let cfg = ClusterConfig::parse("az A x y z").unwrap();
        assert_eq!(cfg.peers(NodeId(1)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn options_builder_chains() {
        let o = Options::default()
            .ack_flush_micros(7)
            .send_buffer_bytes(1024)
            .failure_timeout_millis(9)
            .heartbeat_millis(3)
            .auto_exclude_suspects(true)
            .max_payload_bytes(512)
            .retransmit_millis(11);
        assert_eq!(o.ack_flush_micros, 7);
        assert_eq!(o.send_buffer_bytes, 1024);
        assert_eq!(o.failure_timeout_millis, 9);
        assert_eq!(o.heartbeat_millis, 3);
        assert!(o.auto_exclude_suspects);
        assert_eq!(o.max_payload_bytes, 512);
        assert_eq!(o.retransmit_millis, 11);
    }

    #[test]
    fn builder_style_construction() {
        let topo = Topology::builder().az("A", &["a", "b"]).build().unwrap();
        let cfg = ClusterConfig::new(topo)
            .with_predicate("P", "MAX($ALLWNODES)")
            .with_options(Options {
                ack_flush_micros: 9,
                ..Options::default()
            });
        assert_eq!(cfg.predicates().count(), 1);
        assert_eq!(cfg.options().ack_flush_micros, 9);
    }
}
