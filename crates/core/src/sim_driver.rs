//! Driver that runs a [`StabilizerNode`] inside the deterministic
//! simulator: it maps [`Action`]s to simulated sends, schedules the
//! periodic control-plane timers, and exposes application hooks plus
//! timestamped logs that the experiment harnesses read.

use crate::config::ClusterConfig;
use crate::error::CoreError;
use crate::frontier::{FrontierUpdate, WaitToken};
use crate::messages::WireMsg;
use crate::node::{Action, StabilizerNode};
use bytes::Bytes;
use stabilizer_dsl::{AckTypeRegistry, NodeId, SeqNo};
use stabilizer_netsim::{Actor, Ctx, SimDuration, SimTime, TimerId};
use std::sync::Arc;

const TAG_ACK_FLUSH: u64 = 1;
const TAG_HEARTBEAT: u64 = 2;
const TAG_FAILURE: u64 = 3;
const TAG_RETRANSMIT: u64 = 4;
const TAG_TRANSFER: u64 = 5;

/// Application callbacks invoked as the simulation runs. All methods have
/// default empty bodies; implement only what the experiment needs.
pub trait AppHooks {
    /// A mirrored payload was delivered (upcall).
    fn on_deliver(&mut self, _now: SimTime, _origin: NodeId, _seq: SeqNo, _payload: &Bytes) {}
    /// A stability frontier advanced (the `monitor_stability_frontier`
    /// mechanism of §III-D).
    fn on_frontier(&mut self, _now: SimTime, _update: &FrontierUpdate) {}
    /// A `waitfor` completed.
    fn on_wait_done(&mut self, _now: SimTime, _token: WaitToken) {}
    /// A peer became suspected.
    fn on_suspected(&mut self, _now: SimTime, _node: NodeId) {}
    /// A stream was fast-forwarded out of band (§III-E state transfer).
    fn on_catch_up(&mut self, _now: SimTime, _stream: NodeId, _seq: SeqNo) {}
    /// This node (as donor) sent one retained-log chunk to a recovering
    /// peer (§III-E, donor side).
    fn on_transfer_chunk(
        &mut self,
        _now: SimTime,
        _to: NodeId,
        _stream: NodeId,
        _seq: SeqNo,
        _len: usize,
        _done: bool,
    ) {
    }
    /// This node (re)entered the cluster and requested catch-up on
    /// `streams` peer streams.
    fn on_join(&mut self, _now: SimTime, _streams: usize) {}
}

/// Hooks that do nothing (logs on [`SimNode`] still record everything).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;
impl AppHooks for NoHooks {}

/// A Stabilizer node embedded in the simulator.
pub struct SimNode<H: AppHooks = NoHooks> {
    /// The protocol state machine.
    node: StabilizerNode,
    /// Application hooks.
    pub hooks: H,
    /// Timestamped frontier log: `(time, update)`.
    pub frontier_log: Vec<(SimTime, FrontierUpdate)>,
    /// Timestamped delivery log: `(time, origin, seq, payload_len)`
    /// (payload bytes omitted to keep memory bounded in long runs;
    /// lengths kept for byte-level accounting).
    pub delivery_log: Vec<(SimTime, NodeId, SeqNo, usize)>,
    /// Completed wait tokens.
    pub completed_waits: Vec<(SimTime, WaitToken)>,
    /// Suspected peers.
    pub suspected_log: Vec<(SimTime, NodeId)>,
    /// Peers that came back after suspicion.
    pub recovered_log: Vec<(SimTime, NodeId)>,
    /// Out-of-band stream fast-forwards (§III-E): `(time, stream, seq)`.
    pub catchup_log: Vec<(SimTime, NodeId, SeqNo)>,
    record_deliveries: bool,
    /// Multiplier on every timer interval (clock-skew fault injection;
    /// 1.0 = nominal cadence). Applied at each re-arm, so a mid-run
    /// change takes effect within one timer period.
    timer_scale: f64,
}

impl<H: AppHooks> SimNode<H> {
    /// Wrap a node with hooks.
    pub fn new(node: StabilizerNode, hooks: H) -> Self {
        SimNode {
            node,
            hooks,
            frontier_log: Vec::new(),
            delivery_log: Vec::new(),
            completed_waits: Vec::new(),
            suspected_log: Vec::new(),
            recovered_log: Vec::new(),
            catchup_log: Vec::new(),
            record_deliveries: true,
            timer_scale: 1.0,
        }
    }

    /// Scale every timer interval by `scale` — the simulated equivalent
    /// of a skewed local clock (`scale < 1` fires timers early, `> 1`
    /// late). Takes effect at each timer's next re-arm; 1.0 restores the
    /// nominal cadence.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn set_timer_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "timer scale must be positive and finite"
        );
        self.timer_scale = scale;
    }

    /// The current timer-interval multiplier (1.0 = nominal).
    pub fn timer_scale(&self) -> f64 {
        self.timer_scale
    }

    /// A nominal interval stretched by the current clock skew (never
    /// rounds below 1 ns, so timers keep firing under extreme factors).
    fn scaled(&self, d: SimDuration) -> SimDuration {
        if self.timer_scale == 1.0 {
            return d;
        }
        SimDuration::from_nanos(((d.as_nanos() as f64 * self.timer_scale) as u64).max(1))
    }

    /// Disable the delivery log (for multi-hundred-thousand-message runs
    /// where only the frontier log matters).
    pub fn without_delivery_log(mut self) -> Self {
        self.record_deliveries = false;
        self
    }

    /// Access the underlying state machine (for assertions).
    pub fn inner(&self) -> &StabilizerNode {
        &self.node
    }

    /// Whether [`SimNode::delivery_log`] is being populated (external
    /// checkers skip delivery-order invariants when it is not).
    pub fn records_deliveries(&self) -> bool {
        self.record_deliveries
    }

    /// Mutable access for *query-only* operations outside the event loop.
    /// To perform operations that emit actions, use the `*_in` methods
    /// with a simulation [`Ctx`].
    pub fn inner_mut(&mut self) -> &mut StabilizerNode {
        &mut self.node
    }

    /// Start §III-E catch-up on every peer stream (restart/join path),
    /// firing the `on_join` hook when any transfer was actually
    /// requested. Queued actions stay on the node; the caller drains
    /// them through [`SimNode::process_actions`] as usual.
    pub fn begin_catch_up_at(&mut self, now: SimTime) {
        let streams = self.node.begin_catch_up(now.as_nanos());
        if streams > 0 {
            self.hooks.on_join(now, streams);
        }
    }

    /// Publish inside the simulation (drains actions into sends).
    pub fn publish_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        payload: Bytes,
    ) -> Result<SeqNo, CoreError> {
        let seq = self.node.publish(payload)?;
        self.drain(ctx);
        Ok(seq)
    }

    /// Register a predicate inside the simulation.
    pub fn register_predicate_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        self.node.register_predicate(stream, key, source)?;
        self.drain(ctx);
        Ok(())
    }

    /// Change a predicate inside the simulation.
    pub fn change_predicate_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        self.node.change_predicate(stream, key, source)?;
        self.drain(ctx);
        Ok(())
    }

    /// `waitfor` inside the simulation; completion lands in
    /// [`SimNode::completed_waits`].
    pub fn waitfor_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
    ) -> Result<WaitToken, CoreError> {
        let token = self.node.waitfor(stream, key, seq)?;
        self.drain(ctx);
        Ok(token)
    }

    /// Report application-defined stability inside the simulation.
    pub fn report_stability_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        stream: NodeId,
        ty: stabilizer_dsl::AckTypeId,
        seq: SeqNo,
    ) {
        self.node.report_stability(stream, ty, seq);
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let actions = self.node.take_actions();
        self.process_actions(ctx, actions);
    }

    /// Execute a batch of externally drained [`Action`]s through this
    /// driver's bookkeeping (sends, hooks, logs). Application layers that
    /// need to observe actions before the driver consumes them — e.g. the
    /// geo K/V store applying deliveries to its pools — call
    /// [`StabilizerNode::take_actions`] themselves and then hand the batch
    /// here.
    pub fn process_actions(&mut self, ctx: &mut Ctx<'_, WireMsg>, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if let WireMsg::TransferChunk {
                        stream,
                        seq,
                        ref payload,
                        done,
                    } = msg
                    {
                        self.hooks.on_transfer_chunk(
                            ctx.now(),
                            to,
                            stream,
                            seq,
                            payload.len(),
                            done,
                        );
                    }
                    ctx.send(to.0 as usize, msg)
                }
                Action::Deliver {
                    origin,
                    seq,
                    payload,
                } => {
                    self.hooks.on_deliver(ctx.now(), origin, seq, &payload);
                    if self.record_deliveries {
                        self.delivery_log
                            .push((ctx.now(), origin, seq, payload.len()));
                    }
                }
                Action::Frontier(update) => {
                    self.hooks.on_frontier(ctx.now(), &update);
                    self.frontier_log.push((ctx.now(), update));
                }
                Action::WaitDone { token } => {
                    self.hooks.on_wait_done(ctx.now(), token);
                    self.completed_waits.push((ctx.now(), token));
                }
                Action::Suspected { node } => {
                    self.hooks.on_suspected(ctx.now(), node);
                    self.suspected_log.push((ctx.now(), node));
                }
                Action::Recovered { node } => {
                    self.recovered_log.push((ctx.now(), node));
                }
                Action::CatchUp { stream, seq, .. } => {
                    self.hooks.on_catch_up(ctx.now(), stream, seq);
                    self.catchup_log.push((ctx.now(), stream, seq));
                }
                Action::PredicateBroken { .. } => {
                    // Surfaced through the frontier log staying frozen; the
                    // application is expected to re-register.
                }
            }
        }
    }
}

impl<H: AppHooks> Actor for SimNode<H> {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let opts = self.node.config().options().clone();
        if opts.ack_flush_micros > 0 {
            ctx.set_timer(
                self.scaled(SimDuration::from_micros(opts.ack_flush_micros)),
                TAG_ACK_FLUSH,
            );
        }
        if opts.heartbeat_millis > 0 {
            ctx.set_timer(
                self.scaled(SimDuration::from_millis(opts.heartbeat_millis)),
                TAG_HEARTBEAT,
            );
        }
        if opts.failure_timeout_millis > 0 {
            ctx.set_timer(
                self.scaled(SimDuration::from_millis(opts.failure_timeout_millis / 2)),
                TAG_FAILURE,
            );
        }
        if opts.retransmit_millis > 0 {
            ctx.set_timer(
                self.scaled(SimDuration::from_millis(
                    (opts.retransmit_millis / 2).max(1),
                )),
                TAG_RETRANSMIT,
            );
        }
        if opts.transfer_millis > 0 {
            ctx.set_timer(
                self.scaled(SimDuration::from_millis((opts.transfer_millis / 2).max(1))),
                TAG_TRANSFER,
            );
        }
        // Actions queued before the actor entered the event loop (e.g. a
        // restarted node's `begin_catch_up` requests) go out now.
        self.drain(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, WireMsg>, from: usize, msg: WireMsg) {
        self.node
            .on_message(ctx.now().as_nanos(), NodeId(from as u16), msg);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WireMsg>, _timer: TimerId, tag: u64) {
        let opts = self.node.config().options().clone();
        match tag {
            TAG_ACK_FLUSH => {
                self.node.on_ack_flush();
                ctx.set_timer(
                    self.scaled(SimDuration::from_micros(opts.ack_flush_micros.max(1))),
                    TAG_ACK_FLUSH,
                );
            }
            TAG_HEARTBEAT => {
                self.node.on_heartbeat();
                ctx.set_timer(
                    self.scaled(SimDuration::from_millis(opts.heartbeat_millis.max(1))),
                    TAG_HEARTBEAT,
                );
            }
            TAG_FAILURE => {
                self.node.on_failure_check(ctx.now().as_nanos());
                ctx.set_timer(
                    self.scaled(SimDuration::from_millis(
                        (opts.failure_timeout_millis / 2).max(1),
                    )),
                    TAG_FAILURE,
                );
            }
            TAG_RETRANSMIT => {
                self.node.on_retransmit_check(ctx.now().as_nanos());
                ctx.set_timer(
                    self.scaled(SimDuration::from_millis(
                        (opts.retransmit_millis / 2).max(1),
                    )),
                    TAG_RETRANSMIT,
                );
            }
            TAG_TRANSFER => {
                self.node.on_transfer_tick(ctx.now().as_nanos());
                ctx.set_timer(
                    self.scaled(SimDuration::from_millis((opts.transfer_millis / 2).max(1))),
                    TAG_TRANSFER,
                );
            }
            _ => {}
        }
        self.drain(ctx);
    }
}

/// Build a ready-to-run simulated cluster: one [`SimNode`] per topology
/// node with shared ACK-type registry, over the given network topology.
///
/// # Errors
///
/// Fails if a configured predicate does not compile.
///
/// # Panics
///
/// Panics if `net.len()` differs from the cluster topology size.
pub fn build_cluster(
    cfg: &ClusterConfig,
    net: stabilizer_netsim::NetTopology,
    seed: u64,
) -> Result<stabilizer_netsim::Simulation<SimNode>, CoreError> {
    build_cluster_with_hooks(cfg, net, seed, |_| NoHooks)
}

/// [`build_cluster`] with per-node application hooks: `mk_hooks(i)`
/// produces the [`AppHooks`] for node `i`. This is how external
/// observers (e.g. the chaos harness's invariant checker) attach to
/// every node of a cluster without changing the drivers.
///
/// # Errors
///
/// Fails if a configured predicate does not compile.
///
/// # Panics
///
/// Panics if `net.len()` differs from the cluster topology size.
pub fn build_cluster_with_hooks<H: AppHooks>(
    cfg: &ClusterConfig,
    net: stabilizer_netsim::NetTopology,
    seed: u64,
    mut mk_hooks: impl FnMut(usize) -> H,
) -> Result<stabilizer_netsim::Simulation<SimNode<H>>, CoreError> {
    assert_eq!(
        net.len(),
        cfg.num_nodes(),
        "network and cluster sizes must match"
    );
    let acks = Arc::new(AckTypeRegistry::new());
    let mut nodes = Vec::with_capacity(cfg.num_nodes());
    for i in 0..cfg.num_nodes() {
        let node = StabilizerNode::new(cfg.clone(), NodeId(i as u16), Arc::clone(&acks))?;
        nodes.push(SimNode::new(node, mk_hooks(i)));
    }
    Ok(stabilizer_netsim::Simulation::new(net, nodes, seed))
}
