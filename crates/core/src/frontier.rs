//! The stability-frontier engine: the control plane's predicate registry
//! plus incremental re-evaluation.
//!
//! Every registered predicate tracks one *stream* (a primary's sequence
//! space). When an ACK counter advances, only the predicates that read
//! the changed `(node, ack-type)` cell are re-evaluated (their dependency
//! sets are known at compile time). Within one predicate *generation* the
//! frontier is monotonic; [`FrontierEngine::change`] starts a new
//! generation, and the frontier may start lower — the paper's §VI-D
//! "gap", which the application is responsible for handling, is surfaced
//! through the `generation` field of [`FrontierUpdate`].

use crate::recorder::AckRecorder;
use stabilizer_dsl::{AckTypeId, NodeId, Predicate, SeqNo};
use std::collections::BTreeMap;

/// Token identifying a blocked `waitfor` call; returned to the driver
/// when the wait completes.
pub type WaitToken = u64;

/// A frontier advancement notice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierUpdate {
    /// The stream whose frontier moved.
    pub stream: NodeId,
    /// The predicate key.
    pub key: String,
    /// The new frontier: highest sequence number satisfying the predicate.
    pub seq: SeqNo,
    /// Predicate generation (bumped by [`FrontierEngine::change`]).
    pub generation: u32,
}

#[derive(Debug)]
struct Entry {
    predicate: Predicate,
    frontier: SeqNo,
    generation: u32,
}

#[derive(Debug)]
struct Waiter {
    stream: NodeId,
    key: String,
    seq: SeqNo,
    token: WaitToken,
}

/// Registry of compiled predicates with per-entry frontier state and
/// blocked waiters.
#[derive(Debug, Default)]
pub struct FrontierEngine {
    // BTreeMap, not HashMap: `on_ack_advance` and `exclude_node` iterate
    // this map and emit `FrontierUpdate`s in iteration order, which must
    // be identical across processes for seed replay to be byte-stable.
    entries: BTreeMap<(NodeId, String), Entry>,
    waiters: Vec<Waiter>,
    evals: u64,
}

impl FrontierEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a compiled predicate for `stream` under `key`, evaluating
    /// it immediately. Returns an update if the initial frontier is
    /// non-zero. Registering over an existing key replaces it (generation
    /// is preserved and bumped, like [`FrontierEngine::change`]).
    pub fn register(
        &mut self,
        stream: NodeId,
        key: &str,
        predicate: Predicate,
        recorder: &AckRecorder,
        out: &mut Vec<FrontierUpdate>,
        completed: &mut Vec<WaitToken>,
    ) {
        let generation = self
            .entries
            .get(&(stream, key.to_owned()))
            .map(|e| e.generation + 1)
            .unwrap_or(0);
        self.evals += 1;
        let frontier = predicate.eval(&recorder.stream_view(stream));
        let entry = Entry {
            predicate,
            frontier,
            generation,
        };
        self.entries.insert((stream, key.to_owned()), entry);
        if frontier > 0 {
            out.push(FrontierUpdate {
                stream,
                key: key.to_owned(),
                seq: frontier,
                generation,
            });
        }
        self.drain_waiters(stream, key, frontier, completed);
    }

    /// Replace the predicate under an existing key, bumping its
    /// generation (the paper's `change_predicate`). The new frontier may
    /// be lower than the old one; an update carrying the new generation
    /// is always emitted so the application can observe the gap.
    ///
    /// Returns `false` if the key is unknown.
    pub fn change(
        &mut self,
        stream: NodeId,
        key: &str,
        predicate: Predicate,
        recorder: &AckRecorder,
        out: &mut Vec<FrontierUpdate>,
        completed: &mut Vec<WaitToken>,
    ) -> bool {
        let Some(entry) = self.entries.get_mut(&(stream, key.to_owned())) else {
            return false;
        };
        self.evals += 1;
        entry.generation += 1;
        entry.predicate = predicate;
        entry.frontier = entry.predicate.eval(&recorder.stream_view(stream));
        let update = FrontierUpdate {
            stream,
            key: key.to_owned(),
            seq: entry.frontier,
            generation: entry.generation,
        };
        let frontier = entry.frontier;
        out.push(update);
        self.drain_waiters(stream, key, frontier, completed);
        true
    }

    /// Remove a predicate. Pending waiters on it stay blocked forever, so
    /// callers should drain or fail them; returns the tokens of waiters
    /// that were watching the key.
    pub fn unregister(&mut self, stream: NodeId, key: &str) -> Vec<WaitToken> {
        self.entries.remove(&(stream, key.to_owned()));
        let mut orphaned = Vec::new();
        self.waiters.retain(|w| {
            if w.stream == stream && w.key == key {
                orphaned.push(w.token);
                false
            } else {
                true
            }
        });
        orphaned
    }

    /// Current `(frontier, generation)` for a key.
    pub fn frontier(&self, stream: NodeId, key: &str) -> Option<(SeqNo, u32)> {
        self.entries
            .get(&(stream, key.to_owned()))
            .map(|e| (e.frontier, e.generation))
    }

    /// The compiled predicate registered under a key.
    pub fn predicate(&self, stream: NodeId, key: &str) -> Option<&Predicate> {
        self.entries
            .get(&(stream, key.to_owned()))
            .map(|e| &e.predicate)
    }

    /// Registered keys for a stream.
    pub fn keys(&self, stream: NodeId) -> Vec<String> {
        let mut keys: Vec<String> = self
            .entries
            .keys()
            .filter(|(s, _)| *s == stream)
            .map(|(_, k)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Block `token` until the frontier of `(stream, key)` reaches `seq`.
    /// If it already has, the completion is pushed to `completed`
    /// immediately.
    pub fn waitfor(
        &mut self,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
        token: WaitToken,
        completed: &mut Vec<WaitToken>,
    ) -> Result<(), crate::error::CoreError> {
        let Some(entry) = self.entries.get(&(stream, key.to_owned())) else {
            return Err(crate::error::CoreError::UnknownPredicate(key.to_owned()));
        };
        if entry.frontier >= seq {
            completed.push(token);
        } else {
            self.waiters.push(Waiter {
                stream,
                key: key.to_owned(),
                seq,
                token,
            });
        }
        Ok(())
    }

    /// Re-evaluate the predicates of `stream` affected by an advance of
    /// `(node, ty)`, appending frontier updates and completed wait tokens.
    pub fn on_ack_advance(
        &mut self,
        stream: NodeId,
        node: NodeId,
        ty: AckTypeId,
        recorder: &AckRecorder,
        out: &mut Vec<FrontierUpdate>,
        completed: &mut Vec<WaitToken>,
    ) {
        let view = recorder.stream_view(stream);
        let mut advanced: Vec<(String, SeqNo)> = Vec::new();
        for ((s, key), entry) in self.entries.iter_mut() {
            if *s != stream {
                continue;
            }
            if !entry.predicate.dependencies().contains(&(node, ty)) {
                continue;
            }
            self.evals += 1;
            let new = entry.predicate.eval(&view);
            if new > entry.frontier {
                entry.frontier = new;
                out.push(FrontierUpdate {
                    stream,
                    key: key.clone(),
                    seq: new,
                    generation: entry.generation,
                });
                advanced.push((key.clone(), new));
            }
        }
        for (key, new) in advanced {
            self.drain_waiters(stream, &key, new, completed);
        }
    }

    /// Rewrite every registered predicate to exclude `node` (§III-E fault
    /// handling), re-evaluating each. Predicates that cannot be rewritten
    /// (they would become empty) are left untouched and reported.
    pub fn exclude_node(
        &mut self,
        node: NodeId,
        recorder: &AckRecorder,
        out: &mut Vec<FrontierUpdate>,
        completed: &mut Vec<WaitToken>,
    ) -> Vec<String> {
        let mut failed = Vec::new();
        let keys: Vec<(NodeId, String)> = self.entries.keys().cloned().collect();
        for (stream, key) in keys {
            let entry = self.entries.get(&(stream, key.clone())).unwrap();
            if !entry
                .predicate
                .dependencies()
                .iter()
                .any(|(n, _)| *n == node)
            {
                continue;
            }
            match entry.predicate.excluding(node) {
                Ok(rewritten) => {
                    self.change(stream, &key, rewritten, recorder, out, completed);
                }
                Err(_) => failed.push(key.clone()),
            }
        }
        failed
    }

    /// Number of registered predicates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no predicates are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of blocked waiters (for tests and introspection).
    pub fn pending_waiters(&self) -> usize {
        self.waiters.len()
    }

    /// Total predicate evaluations performed (registration, change, and
    /// incremental re-evaluation on ACK advances).
    pub fn evaluations(&self) -> u64 {
        self.evals
    }

    fn drain_waiters(
        &mut self,
        stream: NodeId,
        key: &str,
        frontier: SeqNo,
        completed: &mut Vec<WaitToken>,
    ) {
        self.waiters.retain(|w| {
            if w.stream == stream && w.key == key && w.seq <= frontier {
                completed.push(w.token);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::{AckTypeRegistry, Topology, RECEIVED};

    fn topo() -> Topology {
        Topology::builder()
            .az("A", &["a", "b"])
            .az("B", &["c", "d"])
            .build()
            .unwrap()
    }

    fn pred(src: &str) -> Predicate {
        Predicate::compile(src, &topo(), &AckTypeRegistry::new(), NodeId(0)).unwrap()
    }

    fn setup() -> (
        FrontierEngine,
        AckRecorder,
        Vec<FrontierUpdate>,
        Vec<WaitToken>,
    ) {
        (
            FrontierEngine::new(),
            AckRecorder::new(4, 3),
            Vec::new(),
            Vec::new(),
        )
    }

    #[test]
    fn frontier_advances_only_when_predicate_satisfied() {
        let (mut eng, mut rec, mut out, mut done) = setup();
        eng.register(
            NodeId(0),
            "all",
            pred("MIN($ALLWNODES-$MYWNODE)"),
            &rec,
            &mut out,
            &mut done,
        );
        assert!(out.is_empty());
        // Two of three remotes ack seq 5: MIN still 0.
        for n in [1u16, 2] {
            rec.observe(NodeId(0), NodeId(n), RECEIVED, 5);
            eng.on_ack_advance(NodeId(0), NodeId(n), RECEIVED, &rec, &mut out, &mut done);
        }
        assert!(out.is_empty());
        rec.observe(NodeId(0), NodeId(3), RECEIVED, 4);
        eng.on_ack_advance(NodeId(0), NodeId(3), RECEIVED, &rec, &mut out, &mut done);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 4);
        assert_eq!(eng.frontier(NodeId(0), "all"), Some((4, 0)));
    }

    #[test]
    fn unrelated_acks_do_not_reevaluate() {
        let (mut eng, mut rec, mut out, mut done) = setup();
        eng.register(NodeId(0), "one", pred("MAX($2)"), &rec, &mut out, &mut done);
        // An ack from node 3 is not a dependency of MAX($2).
        rec.observe(NodeId(0), NodeId(2), RECEIVED, 9);
        eng.on_ack_advance(NodeId(0), NodeId(2), RECEIVED, &rec, &mut out, &mut done);
        assert!(out.is_empty());
        rec.observe(NodeId(0), NodeId(1), RECEIVED, 9);
        eng.on_ack_advance(NodeId(0), NodeId(1), RECEIVED, &rec, &mut out, &mut done);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn waitfor_completes_when_frontier_reaches_seq() {
        let (mut eng, mut rec, mut out, mut done) = setup();
        eng.register(
            NodeId(0),
            "one",
            pred("MAX($ALLWNODES-$MYWNODE)"),
            &rec,
            &mut out,
            &mut done,
        );
        eng.waitfor(NodeId(0), "one", 10, 77, &mut done).unwrap();
        assert!(done.is_empty());
        assert_eq!(eng.pending_waiters(), 1);
        rec.observe(NodeId(0), NodeId(2), RECEIVED, 12);
        eng.on_ack_advance(NodeId(0), NodeId(2), RECEIVED, &rec, &mut out, &mut done);
        assert_eq!(done, vec![77]);
        assert_eq!(eng.pending_waiters(), 0);
    }

    #[test]
    fn waitfor_already_satisfied_completes_immediately() {
        let (mut eng, mut rec, mut out, mut done) = setup();
        rec.observe(NodeId(0), NodeId(1), RECEIVED, 20);
        eng.register(
            NodeId(0),
            "one",
            pred("MAX($ALLWNODES-$MYWNODE)"),
            &rec,
            &mut out,
            &mut done,
        );
        assert_eq!(out[0].seq, 20); // initial eval reported
        eng.waitfor(NodeId(0), "one", 15, 5, &mut done).unwrap();
        assert_eq!(done, vec![5]);
    }

    #[test]
    fn waitfor_unknown_key_errors() {
        let (mut eng, _rec, _out, mut done) = setup();
        assert!(eng.waitfor(NodeId(0), "nope", 1, 0, &mut done).is_err());
    }

    #[test]
    fn change_bumps_generation_and_may_regress() {
        let (mut eng, mut rec, mut out, mut done) = setup();
        // Weak predicate: any remote. Strong predicate: all remotes.
        rec.observe(NodeId(0), NodeId(1), RECEIVED, 30);
        eng.register(
            NodeId(0),
            "p",
            pred("MAX($ALLWNODES-$MYWNODE)"),
            &rec,
            &mut out,
            &mut done,
        );
        assert_eq!(eng.frontier(NodeId(0), "p"), Some((30, 0)));
        out.clear();
        assert!(eng.change(
            NodeId(0),
            "p",
            pred("MIN($ALLWNODES-$MYWNODE)"),
            &rec,
            &mut out,
            &mut done
        ));
        // The gap: new generation starts at 0 because nodes 2,3 have not acked.
        assert_eq!(
            out,
            vec![FrontierUpdate {
                stream: NodeId(0),
                key: "p".into(),
                seq: 0,
                generation: 1
            }]
        );
        assert!(!eng.change(
            NodeId(0),
            "missing",
            pred("MAX($2)"),
            &rec,
            &mut out,
            &mut done
        ));
    }

    #[test]
    fn unregister_orphans_waiters() {
        let (mut eng, rec, mut out, mut done) = setup();
        eng.register(NodeId(0), "p", pred("MAX($2)"), &rec, &mut out, &mut done);
        eng.waitfor(NodeId(0), "p", 4, 9, &mut done).unwrap();
        let orphans = eng.unregister(NodeId(0), "p");
        assert_eq!(orphans, vec![9]);
        assert_eq!(eng.len(), 0);
        assert!(eng.is_empty());
    }

    #[test]
    fn exclude_node_rewrites_affected_predicates() {
        let (mut eng, mut rec, mut out, mut done) = setup();
        eng.register(
            NodeId(0),
            "all",
            pred("MIN($ALLWNODES-$MYWNODE)"),
            &rec,
            &mut out,
            &mut done,
        );
        eng.register(
            NodeId(0),
            "pair",
            pred("MIN($2, $3)"),
            &rec,
            &mut out,
            &mut done,
        );
        // Node 3 (id 2) dies. Nodes 1 and 3 acked far; node 3 was the straggler.
        rec.observe(NodeId(0), NodeId(1), RECEIVED, 50);
        rec.observe(NodeId(0), NodeId(3), RECEIVED, 50);
        eng.on_ack_advance(NodeId(0), NodeId(1), RECEIVED, &rec, &mut out, &mut done);
        eng.on_ack_advance(NodeId(0), NodeId(3), RECEIVED, &rec, &mut out, &mut done);
        assert_eq!(eng.frontier(NodeId(0), "all"), Some((0, 0)));
        out.clear();
        let failed = eng.exclude_node(NodeId(2), &rec, &mut out, &mut done);
        assert!(failed.is_empty());
        // With node 2 excluded, MIN over {1,3} = 50; "pair" becomes MIN($2)=50.
        assert_eq!(eng.frontier(NodeId(0), "all"), Some((50, 1)));
        assert_eq!(eng.frontier(NodeId(0), "pair"), Some((50, 1)));
    }

    #[test]
    fn streams_are_independent() {
        let (mut eng, mut rec, mut out, mut done) = setup();
        eng.register(NodeId(0), "p", pred("MAX($2)"), &rec, &mut out, &mut done);
        eng.register(NodeId(1), "p", pred("MAX($2)"), &rec, &mut out, &mut done);
        rec.observe(NodeId(1), NodeId(1), RECEIVED, 7);
        eng.on_ack_advance(NodeId(1), NodeId(1), RECEIVED, &rec, &mut out, &mut done);
        assert_eq!(eng.frontier(NodeId(0), "p"), Some((0, 0)));
        assert_eq!(eng.frontier(NodeId(1), "p"), Some((7, 0)));
        assert_eq!(eng.keys(NodeId(0)), vec!["p".to_owned()]);
    }

    #[test]
    fn reregister_bumps_generation() {
        let (mut eng, rec, mut out, mut done) = setup();
        eng.register(NodeId(0), "p", pred("MAX($2)"), &rec, &mut out, &mut done);
        eng.register(NodeId(0), "p", pred("MAX($3)"), &rec, &mut out, &mut done);
        assert_eq!(eng.frontier(NodeId(0), "p"), Some((0, 1)));
    }
}
