//! Wire messages and their hand-rolled binary codec.
//!
//! Stabilizer keeps the data plane and the control plane separate
//! (§III-A): [`WireMsg::Data`] carries sequenced payloads, while
//! [`WireMsg::AckBatch`] carries monotonic stability reports that can be
//! coalesced (a newer counter value subsumes an older one).
//!
//! The codec is deliberately simple — fixed little-endian fields behind a
//! one-byte tag — so the framing layer in `stabilizer-transport` and the
//! simulator share identical message sizes.

use crate::error::CoreError;
use bytes::Bytes;
use stabilizer_dsl::{AckTypeId, NodeId, SeqNo};
use stabilizer_netsim::MsgSize;

/// Modeled per-message network overhead (framing length prefix plus
/// TCP/IP headers), included in [`MsgSize::wire_size`] so simulated
/// bandwidth accounting matches a real deployment.
pub const WIRE_OVERHEAD: usize = 64;

/// One monotonic stability report: "node X's `ty` counter for stream
/// `stream` has reached `seq`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The stream (identified by its origin node) being acknowledged.
    pub stream: NodeId,
    /// The stability level.
    pub ty: AckTypeId,
    /// Highest sequence number reaching that level.
    pub seq: SeqNo,
}

/// Messages exchanged between Stabilizer instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Data-plane: one sequenced payload of stream `origin`.
    Data {
        /// Stream origin (the primary that published it).
        origin: NodeId,
        /// Per-stream sequence number, starting at 1.
        seq: SeqNo,
        /// Application payload.
        payload: Bytes,
    },
    /// Control-plane: a batch of coalesced stability reports from the
    /// sending node.
    AckBatch(Vec<Ack>),
    /// Control-plane keepalive (also drives failure detection).
    Heartbeat,
    /// State transfer (§III-E): a recovering or joining node asks a live
    /// donor to catch it up on `stream`, starting after `have` (the
    /// highest sequence it already delivered in order).
    TransferRequest {
        /// Stream origin to catch up on.
        stream: NodeId,
        /// Highest sequence the requester already holds for that stream.
        have: SeqNo,
    },
    /// State transfer (§III-E): the donor's per-stream snapshot header.
    /// Chunks follow for `(base, high]`; anything at or below `base` was
    /// evicted from the donor's retained log and is covered by the
    /// snapshot itself (the requester fast-forwards over it).
    TransferSnapshot {
        /// Stream origin being transferred.
        stream: NodeId,
        /// Replay starts after this sequence (snapshot point).
        base: SeqNo,
        /// Donor's last assigned/known sequence for the stream at the
        /// time of the request; chunks stop here, later publishes reach
        /// the requester through the normal fan-out.
        high: SeqNo,
        /// The donor's recorded stability cells for this stream, so the
        /// requester's frontier bookkeeping resumes where the cluster is.
        acks: Vec<Ack>,
        /// Opaque application-state hook carried alongside the snapshot
        /// (the sharded layer uses it for the global fast-forward point).
        app_mark: u64,
    },
    /// State transfer (§III-E): one replayed payload of the donor's
    /// retained log. Fed through the normal receive path, so delivery
    /// order and duplicate suppression are unchanged.
    TransferChunk {
        /// Stream origin of the replayed payload.
        stream: NodeId,
        /// Its original sequence number.
        seq: SeqNo,
        /// The payload.
        payload: Bytes,
        /// True on the last chunk of this session (seq == high).
        done: bool,
    },
    /// State transfer (§III-E): the requester's cumulative chunk ack;
    /// the donor slides its rate-limit window and resumes from here if
    /// either side restarts mid-transfer.
    TransferAck {
        /// Stream being transferred.
        stream: NodeId,
        /// Every chunk at or below this sequence arrived.
        through: SeqNo,
    },
}

impl WireMsg {
    const TAG_DATA: u8 = 0;
    const TAG_ACKS: u8 = 1;
    const TAG_HEARTBEAT: u8 = 2;
    const TAG_TRANSFER_REQUEST: u8 = 3;
    const TAG_TRANSFER_SNAPSHOT: u8 = 4;
    const TAG_TRANSFER_CHUNK: u8 = 5;
    const TAG_TRANSFER_ACK: u8 = 6;

    /// Encoded size in bytes (without [`WIRE_OVERHEAD`]).
    pub fn encoded_len(&self) -> usize {
        match self {
            WireMsg::Data { payload, .. } => 1 + 2 + 8 + 4 + payload.len(),
            WireMsg::AckBatch(acks) => 1 + 2 + acks.len() * (2 + 2 + 8),
            WireMsg::Heartbeat => 1,
            WireMsg::TransferRequest { .. } => 1 + 2 + 8,
            WireMsg::TransferSnapshot { acks, .. } => {
                1 + 2 + 8 + 8 + 8 + 2 + acks.len() * (2 + 2 + 8)
            }
            WireMsg::TransferChunk { payload, .. } => 1 + 2 + 8 + 1 + 4 + payload.len(),
            WireMsg::TransferAck { .. } => 1 + 2 + 8,
        }
    }

    /// Serialize into `out` (appended).
    pub fn encode(&self, out: &mut Vec<u8>) {
        if let Some(payload) = self.encode_prefix(out) {
            out.extend_from_slice(payload);
        }
    }

    /// Serialize everything **except** a [`WireMsg::Data`] payload's
    /// bytes into `out`, returning the payload the caller must put on
    /// the wire right after the prefix. Control messages encode fully
    /// and return `None`.
    ///
    /// This is the transport's zero-copy path: a `Data` payload is
    /// shared (reference-counted) across all fan-out peers, and writing
    /// it straight from the shared buffer avoids materializing a
    /// contiguous per-peer copy of the whole message.
    pub fn encode_prefix<'a>(&'a self, out: &mut Vec<u8>) -> Option<&'a Bytes> {
        match self {
            WireMsg::Data {
                origin,
                seq,
                payload,
            } => {
                out.push(Self::TAG_DATA);
                out.extend_from_slice(&origin.0.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                Some(payload)
            }
            WireMsg::AckBatch(acks) => {
                out.push(Self::TAG_ACKS);
                out.extend_from_slice(&(acks.len() as u16).to_le_bytes());
                for a in acks {
                    out.extend_from_slice(&a.stream.0.to_le_bytes());
                    out.extend_from_slice(&a.ty.0.to_le_bytes());
                    out.extend_from_slice(&a.seq.to_le_bytes());
                }
                None
            }
            WireMsg::Heartbeat => {
                out.push(Self::TAG_HEARTBEAT);
                None
            }
            WireMsg::TransferRequest { stream, have } => {
                out.push(Self::TAG_TRANSFER_REQUEST);
                out.extend_from_slice(&stream.0.to_le_bytes());
                out.extend_from_slice(&have.to_le_bytes());
                None
            }
            WireMsg::TransferSnapshot {
                stream,
                base,
                high,
                acks,
                app_mark,
            } => {
                out.push(Self::TAG_TRANSFER_SNAPSHOT);
                out.extend_from_slice(&stream.0.to_le_bytes());
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&high.to_le_bytes());
                out.extend_from_slice(&app_mark.to_le_bytes());
                out.extend_from_slice(&(acks.len() as u16).to_le_bytes());
                for a in acks {
                    out.extend_from_slice(&a.stream.0.to_le_bytes());
                    out.extend_from_slice(&a.ty.0.to_le_bytes());
                    out.extend_from_slice(&a.seq.to_le_bytes());
                }
                None
            }
            WireMsg::TransferChunk {
                stream,
                seq,
                payload,
                done,
            } => {
                out.push(Self::TAG_TRANSFER_CHUNK);
                out.extend_from_slice(&stream.0.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.push(u8::from(*done));
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                Some(payload)
            }
            WireMsg::TransferAck { stream, through } => {
                out.push(Self::TAG_TRANSFER_ACK);
                out.extend_from_slice(&stream.0.to_le_bytes());
                out.extend_from_slice(&through.to_le_bytes());
                None
            }
        }
    }

    /// Serialize into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode(&mut out);
        out
    }

    /// Deserialize a message that was produced by [`WireMsg::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Wire`] on truncation, an unknown tag, or
    /// trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<WireMsg, CoreError> {
        let mut r = Reader { buf, at: 0 };
        let msg = match r.u8()? {
            Self::TAG_DATA => {
                let origin = NodeId(r.u16()?);
                let seq = r.u64()?;
                let len = r.u32()? as usize;
                let payload = Bytes::copy_from_slice(r.take(len)?);
                WireMsg::Data {
                    origin,
                    seq,
                    payload,
                }
            }
            Self::TAG_ACKS => {
                let count = r.u16()? as usize;
                let mut acks = Vec::with_capacity(count);
                for _ in 0..count {
                    acks.push(Ack {
                        stream: NodeId(r.u16()?),
                        ty: AckTypeId(r.u16()?),
                        seq: r.u64()?,
                    });
                }
                WireMsg::AckBatch(acks)
            }
            Self::TAG_HEARTBEAT => WireMsg::Heartbeat,
            Self::TAG_TRANSFER_REQUEST => WireMsg::TransferRequest {
                stream: NodeId(r.u16()?),
                have: r.u64()?,
            },
            Self::TAG_TRANSFER_SNAPSHOT => {
                let stream = NodeId(r.u16()?);
                let base = r.u64()?;
                let high = r.u64()?;
                let app_mark = r.u64()?;
                let count = r.u16()? as usize;
                let mut acks = Vec::with_capacity(count);
                for _ in 0..count {
                    acks.push(Ack {
                        stream: NodeId(r.u16()?),
                        ty: AckTypeId(r.u16()?),
                        seq: r.u64()?,
                    });
                }
                WireMsg::TransferSnapshot {
                    stream,
                    base,
                    high,
                    acks,
                    app_mark,
                }
            }
            Self::TAG_TRANSFER_CHUNK => {
                let stream = NodeId(r.u16()?);
                let seq = r.u64()?;
                let done = r.u8()? != 0;
                let len = r.u32()? as usize;
                let payload = Bytes::copy_from_slice(r.take(len)?);
                WireMsg::TransferChunk {
                    stream,
                    seq,
                    payload,
                    done,
                }
            }
            Self::TAG_TRANSFER_ACK => WireMsg::TransferAck {
                stream: NodeId(r.u16()?),
                through: r.u64()?,
            },
            tag => return Err(CoreError::Wire(format!("unknown message tag {tag}"))),
        };
        if r.at != buf.len() {
            return Err(CoreError::Wire(format!(
                "{} trailing bytes",
                buf.len() - r.at
            )));
        }
        Ok(msg)
    }

    /// True for control-plane messages (ACKs, heartbeats, and transfer
    /// coordination). Payload-bearing messages — live data and replayed
    /// transfer chunks — are data-plane.
    pub fn is_control(&self) -> bool {
        !matches!(self, WireMsg::Data { .. } | WireMsg::TransferChunk { .. })
    }
}

impl MsgSize for WireMsg {
    fn wire_size(&self) -> usize {
        self.encoded_len() + WIRE_OVERHEAD
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.at + n > self.buf.len() {
            return Err(CoreError::Wire(format!(
                "truncated message: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.buf.len() - self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMsg) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(WireMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn data_roundtrips() {
        roundtrip(WireMsg::Data {
            origin: NodeId(3),
            seq: 99,
            payload: Bytes::from_static(b"hello"),
        });
        roundtrip(WireMsg::Data {
            origin: NodeId(0),
            seq: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn ack_batch_roundtrips() {
        roundtrip(WireMsg::AckBatch(vec![
            Ack {
                stream: NodeId(0),
                ty: AckTypeId(0),
                seq: 17,
            },
            Ack {
                stream: NodeId(7),
                ty: AckTypeId(3),
                seq: u64::MAX,
            },
        ]));
        roundtrip(WireMsg::AckBatch(vec![]));
    }

    #[test]
    fn heartbeat_roundtrips() {
        roundtrip(WireMsg::Heartbeat);
    }

    #[test]
    fn transfer_messages_roundtrip() {
        roundtrip(WireMsg::TransferRequest {
            stream: NodeId(2),
            have: 41,
        });
        roundtrip(WireMsg::TransferSnapshot {
            stream: NodeId(2),
            base: 41,
            high: 120,
            acks: vec![
                Ack {
                    stream: NodeId(2),
                    ty: AckTypeId(0),
                    seq: 100,
                },
                Ack {
                    stream: NodeId(2),
                    ty: AckTypeId(1),
                    seq: 90,
                },
            ],
            app_mark: u64::MAX,
        });
        roundtrip(WireMsg::TransferSnapshot {
            stream: NodeId(0),
            base: 0,
            high: 0,
            acks: vec![],
            app_mark: 0,
        });
        roundtrip(WireMsg::TransferChunk {
            stream: NodeId(5),
            seq: 42,
            payload: Bytes::from_static(b"replayed"),
            done: true,
        });
        roundtrip(WireMsg::TransferChunk {
            stream: NodeId(5),
            seq: 43,
            payload: Bytes::new(),
            done: false,
        });
        roundtrip(WireMsg::TransferAck {
            stream: NodeId(5),
            through: 42,
        });
    }

    #[test]
    fn transfer_truncation_is_detected() {
        let msgs = vec![
            WireMsg::TransferRequest {
                stream: NodeId(1),
                have: 7,
            },
            WireMsg::TransferSnapshot {
                stream: NodeId(1),
                base: 7,
                high: 9,
                acks: vec![Ack {
                    stream: NodeId(1),
                    ty: AckTypeId(0),
                    seq: 9,
                }],
                app_mark: 3,
            },
            WireMsg::TransferChunk {
                stream: NodeId(1),
                seq: 8,
                payload: Bytes::from_static(b"chunk"),
                done: false,
            },
            WireMsg::TransferAck {
                stream: NodeId(1),
                through: 8,
            },
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    WireMsg::decode(&bytes[..cut]).is_err(),
                    "cut at {cut} should fail for {msg:?}"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = WireMsg::Data {
            origin: NodeId(1),
            seq: 2,
            payload: Bytes::from_static(b"abcdef"),
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                WireMsg::decode(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = WireMsg::Heartbeat.to_bytes();
        bytes.push(0);
        assert!(matches!(WireMsg::decode(&bytes), Err(CoreError::Wire(_))));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(WireMsg::decode(&[42]), Err(CoreError::Wire(_))));
    }

    #[test]
    fn control_classification() {
        assert!(WireMsg::Heartbeat.is_control());
        assert!(WireMsg::AckBatch(vec![]).is_control());
        assert!(!WireMsg::Data {
            origin: NodeId(0),
            seq: 1,
            payload: Bytes::new()
        }
        .is_control());
        assert!(WireMsg::TransferRequest {
            stream: NodeId(0),
            have: 0
        }
        .is_control());
        assert!(WireMsg::TransferAck {
            stream: NodeId(0),
            through: 0
        }
        .is_control());
        assert!(!WireMsg::TransferChunk {
            stream: NodeId(0),
            seq: 1,
            payload: Bytes::new(),
            done: false
        }
        .is_control());
    }

    #[test]
    fn encode_prefix_plus_payload_equals_encode() {
        let msgs = vec![
            WireMsg::Data {
                origin: NodeId(3),
                seq: 7,
                payload: Bytes::from_static(b"body"),
            },
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(1),
                ty: AckTypeId(0),
                seq: 5,
            }]),
            WireMsg::Heartbeat,
            WireMsg::TransferChunk {
                stream: NodeId(2),
                seq: 9,
                payload: Bytes::from_static(b"replay"),
                done: true,
            },
        ];
        for msg in msgs {
            let mut split = Vec::new();
            let payload = msg.encode_prefix(&mut split);
            assert_eq!(payload.is_some(), !msg.is_control());
            if let Some(p) = payload {
                split.extend_from_slice(p);
            }
            assert_eq!(split, msg.to_bytes());
        }
    }

    #[test]
    fn wire_size_includes_overhead() {
        let m = WireMsg::Heartbeat;
        assert_eq!(m.wire_size(), 1 + WIRE_OVERHEAD);
    }
}
