//! Snapshot serialization for crash recovery (§III-E).
//!
//! The paper delegates persistence to the integrated storage system
//! ("the Derecho object store can also persist the stability frontier
//! information, which can be used for Stabilizer recovery"). This module
//! gives that system a stable byte format for the control-plane
//! [`Snapshot`]: magic + version header, dimensions, the dense ACK
//! table, and the origin's sequence counter, all little-endian.

use crate::error::CoreError;
use crate::node::Snapshot;
use crate::recorder::AckRecorder;
use stabilizer_dsl::{AckTypeId, NodeId};

const MAGIC: &[u8; 4] = b"STBZ";
const VERSION: u16 = 1;

impl Snapshot {
    /// Serialize to a stable byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let nodes = self.recorder.num_nodes();
        let types = self.recorder.num_types();
        let mut out = Vec::with_capacity(4 + 2 + 2 + 2 + 8 + nodes * nodes * types * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(nodes as u16).to_le_bytes());
        out.extend_from_slice(&(types as u16).to_le_bytes());
        out.extend_from_slice(&self.last_assigned.to_le_bytes());
        for stream in 0..nodes as u16 {
            for node in 0..nodes as u16 {
                for ty in 0..types as u16 {
                    let v = self
                        .recorder
                        .get(NodeId(stream), NodeId(node), AckTypeId(ty));
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserialize a snapshot produced by [`Snapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on bad magic, unsupported version, or
    /// truncation.
    pub fn from_bytes(buf: &[u8]) -> Result<Snapshot, CoreError> {
        let fail = |m: &str| CoreError::Wire(format!("snapshot: {m}"));
        if buf.len() < 18 {
            return Err(fail("truncated header"));
        }
        if &buf[0..4] != MAGIC {
            return Err(fail("bad magic"));
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(fail(&format!("unsupported version {version}")));
        }
        let nodes = u16::from_le_bytes(buf[6..8].try_into().unwrap()) as usize;
        let types = u16::from_le_bytes(buf[8..10].try_into().unwrap()) as usize;
        let last_assigned = u64::from_le_bytes(buf[10..18].try_into().unwrap());
        let want = 18 + nodes * nodes * types * 8;
        if buf.len() != want {
            return Err(fail(&format!("expected {want} bytes, got {}", buf.len())));
        }
        let mut recorder = AckRecorder::new(nodes, types);
        let mut at = 18;
        for stream in 0..nodes as u16 {
            for node in 0..nodes as u16 {
                for ty in 0..types as u16 {
                    let v = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
                    at += 8;
                    recorder.observe(NodeId(stream), NodeId(node), AckTypeId(ty), v);
                }
            }
        }
        Ok(Snapshot {
            recorder,
            last_assigned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::RECEIVED;

    fn sample() -> Snapshot {
        let mut recorder = AckRecorder::new(3, 2);
        recorder.observe(NodeId(0), NodeId(1), RECEIVED, 42);
        recorder.observe(NodeId(2), NodeId(0), AckTypeId(1), 7);
        Snapshot {
            recorder,
            last_assigned: 99,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample();
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.last_assigned, 99);
        assert_eq!(restored.recorder.num_nodes(), 3);
        assert_eq!(restored.recorder.num_types(), 2);
        for stream in 0..3u16 {
            for node in 0..3u16 {
                for ty in 0..2u16 {
                    assert_eq!(
                        restored
                            .recorder
                            .get(NodeId(stream), NodeId(node), AckTypeId(ty)),
                        snap.recorder
                            .get(NodeId(stream), NodeId(node), AckTypeId(ty)),
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let bytes = sample().to_bytes();
        assert!(Snapshot::from_bytes(&bytes[..10]).is_err()); // truncated
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(Snapshot::from_bytes(&bad_magic).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert!(Snapshot::from_bytes(&bad_version).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Snapshot::from_bytes(&trailing).is_err());
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = Snapshot {
            recorder: AckRecorder::new(1, 1),
            last_assigned: 0,
        };
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.last_assigned, 0);
    }
}
