//! # Stabilizer core
//!
//! A from-scratch Rust implementation of *Stabilizer: Geo-Replication
//! with User-defined Consistency* (ICDCS 2022).
//!
//! Stabilizer mirrors each node's write stream to every other WAN node
//! (the primary-site model: only the origin updates its own data) and
//! lets the application define, in a small DSL, exactly which pattern of
//! acknowledgments makes a message "stable" — its **stability frontier
//! predicate**. The library is split along the paper's two planes:
//!
//! * **Data plane** ([`data_plane`]): sequence numbers are assigned at
//!   publish time and payloads stream to all peers immediately; a send
//!   buffer provides retransmission and backpressure, and space is
//!   reclaimed once every (live) peer has acknowledged receipt.
//! * **Control plane** ([`recorder`], [`frontier`]): monotonic stability
//!   reports flow continuously and independently of data; each arrival
//!   max-merges into the ACK recorder and incrementally re-evaluates only
//!   the predicates that depend on the changed cell.
//!
//! The protocol logic lives in [`StabilizerNode`], a **sans-IO state
//! machine**: drivers inject messages, timers and time, and execute the
//! [`Action`]s it emits. [`sim_driver`] runs it inside the deterministic
//! WAN simulator (every experiment in the paper's evaluation is
//! regenerated this way); `stabilizer-transport` runs the same state
//! machine over real TCP sockets.
//!
//! ## Quick tour
//!
//! ```
//! use stabilizer_core::{ClusterConfig, sim_driver::build_cluster};
//! use stabilizer_netsim::NetTopology;
//! use stabilizer_dsl::NodeId;
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ClusterConfig::parse("
//!     az East e1 e2
//!     az West w1
//!     predicate AllRemote MIN($ALLWNODES-$MYWNODE)
//! ")?;
//! let net = NetTopology::full_mesh(3, stabilizer_netsim::SimDuration::from_millis(20), 1e9);
//! let mut sim = build_cluster(&cfg, net, 42)?;
//!
//! // Publish at e1 and wait (in virtual time) for full WAN stability.
//! let seq = sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from_static(b"hello")))?;
//! sim.run_until_idle();
//! let (frontier, _gen) = sim.actor(0).inner().stability_frontier(NodeId(0), "AllRemote").unwrap();
//! assert_eq!(frontier, seq);
//! # Ok(()) }
//! ```

pub mod config;
pub mod data_plane;
pub mod error;
pub mod explain;
pub mod frontier;
pub mod messages;
pub mod node;
pub mod observe;
pub mod persist;
pub mod recorder;
pub mod sim_driver;

pub use config::{AnalysisMode, ClusterConfig, Options};
pub use error::CoreError;
pub use explain::{
    render_sharded_stall_reports_json, render_stall_reports_json, BlamedCell, StallReport,
};
pub use frontier::{FrontierEngine, FrontierUpdate, WaitToken};
pub use messages::{Ack, WireMsg, WIRE_OVERHEAD};
pub use node::{Action, Metrics, Snapshot, StabilizerNode};
pub use observe::{
    shared_runtime_log, LogObserver, ObserverChain, RuntimeLog, RuntimeObserver, SharedRuntimeLog,
};
pub use recorder::{AckRecorder, DirtyCell};

// Re-export the placement surface so runtimes and checkers can scope
// themselves to replica sets without a direct `stabilizer-place` dep.
pub use stabilizer_place::{PlacementMap, ReplicateDirective};

// Re-export the DSL surface users need to interact with predicates.
pub use stabilizer_dsl::{
    AckTypeId, AckTypeRegistry, AckView, DslError, NodeId, Predicate, SeqNo, Topology, DELIVERED,
    PERSISTED, RECEIVED,
};
