//! The frontier blame diagnoser: *why* is a stability frontier where it
//! is, and which (node, ACK-type) cells are holding it back?
//!
//! The paper makes stability user-defined, which makes "this write is
//! not stable yet" a predicate-specific condition rather than a single
//! systemwide invariant — so the diagnoser walks the *resolved*
//! predicate tree (the same normalized `KTH_MAX`/`KTH_MIN` form the
//! evaluator runs) against the live ACK recorder and computes, for a
//! target sequence number, the minimal set of operand cells that must
//! advance for the frontier to reach it.
//!
//! The walk mirrors [`eval_resolved`] exactly: a reduction node
//! selecting the `k`-th largest of `n` operands reaches `need` iff at
//! least `k` operands reach `need`; `k`-th smallest iff at least
//! `n - k + 1` do. When a node falls short by `d`, the `d` highest
//! operands still below `need` are blamed — they are the cheapest ones
//! to advance — and nested reductions recurse with the same threshold.
//! Constant operands below `need` can never satisfy it and are reported
//! as unsatisfiable terms instead of blamed cells.

use crate::recorder::AckRecorder;
use stabilizer_dsl::{
    eval_resolved, AckTypeId, AckView, NodeId, Operand, ReduceKind, ResolvedExpr, SeqNo,
};

/// One ACK-table cell blamed for a stalled frontier: which node's
/// acknowledgement of which type is behind, and by how much.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlamedCell {
    /// The node whose acknowledgement is missing.
    pub node: NodeId,
    /// The ACK type the predicate reads at that node.
    pub ack_type: AckTypeId,
    /// Human name of the ACK type (`received`, `persisted`, …).
    pub ack_type_name: String,
    /// The cell's current value.
    pub have: SeqNo,
    /// The value the cell must reach for the frontier to reach the
    /// report's target.
    pub need: SeqNo,
    /// Whether the failure detector currently suspects the node —
    /// a suspected blamed node usually means the predicate needs a
    /// `change_predicate`/exclusion, not patience.
    pub suspected: bool,
}

/// The diagnosis for one `(stream, key)` pair: where the frontier is,
/// where it could be, and — when those differ — who is to blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The stream whose frontier is diagnosed.
    pub stream: NodeId,
    /// The predicate key.
    pub key: String,
    /// Current predicate generation.
    pub generation: u32,
    /// Current frontier value.
    pub frontier: SeqNo,
    /// The highest sequence this node knows was published on the
    /// stream (its own `last_published`, or the best `received` cell
    /// it has heard of for a remote stream).
    pub target: SeqNo,
    /// `frontier < target`: some published payload is not yet stable
    /// under this predicate.
    pub stalled: bool,
    /// The predicate's DSL source.
    pub predicate: String,
    /// The minimal set of cells that must advance to `target`, worst
    /// laggard first. Empty when not stalled.
    pub blamed: Vec<BlamedCell>,
    /// Predicate terms that can *never* reach the target (constant
    /// operands below it) — a misconfigured predicate, not a lagging
    /// peer.
    pub unsatisfiable: Vec<String>,
    /// All peers the failure detector currently suspects, whether or
    /// not they are blamed.
    pub suspected_peers: Vec<NodeId>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl StallReport {
    /// Render as one JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!("{{\"stream\":{},\"key\":", self.stream.0));
        push_json_str(&mut s, &self.key);
        s.push_str(&format!(
            ",\"generation\":{},\"frontier\":{},\"target\":{},\"stalled\":{}",
            self.generation, self.frontier, self.target, self.stalled
        ));
        s.push_str(",\"predicate\":");
        push_json_str(&mut s, &self.predicate);
        s.push_str(",\"blamed\":[");
        for (i, b) in self.blamed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"node\":{},\"ack_type\":{},\"ack_type_name\":",
                b.node.0, b.ack_type.0
            ));
            push_json_str(&mut s, &b.ack_type_name);
            s.push_str(&format!(
                ",\"have\":{},\"need\":{},\"suspected\":{}}}",
                b.have, b.need, b.suspected
            ));
        }
        s.push_str("],\"unsatisfiable\":[");
        for (i, u) in self.unsatisfiable.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, u);
        }
        s.push_str("],\"suspected_peers\":[");
        for (i, p) in self.suspected_peers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&p.0.to_string());
        }
        s.push_str("]}");
        s
    }

    /// One-line human rendering for violation details and logs.
    pub fn render_human(&self) -> String {
        if !self.stalled {
            return format!(
                "stream {} key \"{}\": frontier {} = target {} (not stalled)",
                self.stream.0, self.key, self.frontier, self.target
            );
        }
        let mut s = format!(
            "stream {} key \"{}\": frontier {} < target {}; blame:",
            self.stream.0, self.key, self.frontier, self.target
        );
        if self.blamed.is_empty() && self.unsatisfiable.is_empty() {
            s.push_str(" (none — predicate satisfied above frontier, advance pending)");
        }
        for b in &self.blamed {
            s.push_str(&format!(
                " node {} {}={} (need {}{})",
                b.node.0,
                b.ack_type_name,
                b.have,
                b.need,
                if b.suspected { ", SUSPECTED" } else { "" }
            ));
        }
        for u in &self.unsatisfiable {
            s.push_str(&format!(" [unsatisfiable: {u}]"));
        }
        s
    }
}

/// Render a report list as the `/stall` endpoint body:
/// `{"reports":[...]}`.
pub fn render_stall_reports_json(reports: &[StallReport]) -> String {
    let mut s = String::from("{\"reports\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&r.to_json());
    }
    s.push_str("]}");
    s
}

/// [`render_stall_reports_json`] for sharded nodes: each report carries
/// the shard index whose machine produced it as a leading `"shard"`
/// field (sequence numbers inside are per-shard).
pub fn render_sharded_stall_reports_json(reports: &[(u16, StallReport)]) -> String {
    let mut s = String::from("{\"reports\":[");
    for (i, (shard, r)) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let body = r.to_json();
        s.push_str(&format!("{{\"shard\":{shard},{}", &body[1..]));
    }
    s.push_str("]}");
    s
}

/// Walk a resolved reduction and collect the minimal blame set for the
/// frontier to reach `need`. Returns nothing when the subtree already
/// satisfies `need`.
pub(crate) fn blame_expr<V: AckView>(
    expr: &ResolvedExpr,
    need: SeqNo,
    view: &V,
    blamed: &mut Vec<(NodeId, AckTypeId, SeqNo)>,
    unsatisfiable: &mut Vec<String>,
) {
    if need == 0 {
        return;
    }
    let vals: Vec<SeqNo> = expr
        .operands
        .iter()
        .map(|op| match op {
            Operand::Cell(node, ty) => view.ack(*node, *ty),
            Operand::Const(v) => *v,
            Operand::Nested(inner) => eval_resolved(inner, view),
        })
        .collect();
    // k-th largest >= need iff at least k operands >= need; k-th
    // smallest >= need iff at least (n - k + 1) do (the k-1 smallest
    // are tolerated stragglers).
    let required = match expr.kind {
        ReduceKind::Largest => expr.k as usize,
        ReduceKind::Smallest => expr.operands.len() - expr.k as usize + 1,
    };
    let have = vals.iter().filter(|v| **v >= need).count();
    if have >= required {
        return;
    }
    let deficit = required - have;
    // The cheapest operands to advance: highest current value first,
    // operand order as the deterministic tie-break.
    let mut below: Vec<(usize, SeqNo)> = vals
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, v)| *v < need)
        .collect();
    below.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (idx, _) in below.into_iter().take(deficit) {
        match &expr.operands[idx] {
            Operand::Cell(node, ty) => blamed.push((*node, *ty, vals[idx])),
            Operand::Const(c) => unsatisfiable.push(format!("constant {c} can never reach {need}")),
            Operand::Nested(inner) => blame_expr(inner, need, view, blamed, unsatisfiable),
        }
    }
}

/// Run the blame walk for one predicate against a recorder, returning
/// deduplicated cells sorted worst-laggard-first.
pub(crate) fn blame_cells(
    expr: &ResolvedExpr,
    need: SeqNo,
    recorder: &AckRecorder,
    stream: NodeId,
) -> (Vec<(NodeId, AckTypeId, SeqNo)>, Vec<String>) {
    let view = recorder.stream_view(stream);
    let mut blamed = Vec::new();
    let mut unsatisfiable = Vec::new();
    blame_expr(expr, need, &view, &mut blamed, &mut unsatisfiable);
    blamed.sort_by(|a, b| {
        a.2.cmp(&b.2)
            .then(a.0 .0.cmp(&b.0 .0))
            .then(a.1 .0.cmp(&b.1 .0))
    });
    blamed.dedup_by_key(|(node, ty, _)| (*node, *ty));
    unsatisfiable.sort();
    unsatisfiable.dedup();
    (blamed, unsatisfiable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::{AckTypeRegistry, Predicate, Topology, RECEIVED};

    fn topo(n: usize) -> std::sync::Arc<Topology> {
        let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        std::sync::Arc::new(Topology::builder().az("A", &refs).build().unwrap())
    }

    struct FlatAcks(Vec<u64>);
    impl AckView for FlatAcks {
        fn ack(&self, node: NodeId, _ty: AckTypeId) -> u64 {
            self.0[node.0 as usize]
        }
    }

    fn resolved(src: &str, n: usize) -> ResolvedExpr {
        let acks = AckTypeRegistry::new();
        Predicate::compile(src, &topo(n), &acks, NodeId(0))
            .unwrap()
            .resolved()
            .expr
            .clone()
    }

    fn blame(src: &str, acks: Vec<u64>, need: SeqNo) -> Vec<(u16, SeqNo)> {
        let expr = resolved(src, acks.len());
        let view = FlatAcks(acks);
        let mut blamed = Vec::new();
        let mut unsat = Vec::new();
        blame_expr(&expr, need, &view, &mut blamed, &mut unsat);
        blamed.into_iter().map(|(n, _, have)| (n.0, have)).collect()
    }

    #[test]
    fn min_blames_every_laggard() {
        // MIN over all: everyone must reach `need`.
        let b = blame("MIN($ALLWNODES)", vec![5, 2, 7], 7);
        assert_eq!(b, vec![(0, 5), (1, 2)]);
    }

    #[test]
    fn max_blames_only_the_cheapest() {
        // MAX: only one operand must reach `need`; blame the closest.
        let b = blame("MAX($ALLWNODES)", vec![5, 2, 3], 7);
        assert_eq!(b, vec![(0, 5)]);
    }

    #[test]
    fn kth_min_tolerates_stragglers() {
        // KTH_MIN(2, ·) over 4 nodes: 3 must reach `need`; the single
        // worst straggler is tolerated, the next-best laggard is blamed.
        let b = blame("KTH_MIN(2, $ALLWNODES)", vec![9, 1, 4, 6], 8);
        assert_eq!(b, vec![(3, 6), (2, 4)]);
    }

    #[test]
    fn satisfied_reduction_blames_nothing() {
        assert!(blame("MIN($ALLWNODES)", vec![7, 7, 7], 7).is_empty());
        assert!(blame("MAX($ALLWNODES)", vec![0, 9, 0], 7).is_empty());
        // need == 0 is trivially satisfied.
        assert!(blame("MIN($ALLWNODES)", vec![0, 0, 0], 0).is_empty());
    }

    #[test]
    fn nested_reductions_recurse() {
        // MIN(MAX(a,b), MAX(c,d)): each AZ needs one node at `need`.
        let acks = AckTypeRegistry::new();
        let topo = std::sync::Arc::new(
            Topology::builder()
                .az("A", &["a1", "a2"])
                .az("B", &["b1", "b2"])
                .build()
                .unwrap(),
        );
        let pred =
            Predicate::compile("MIN(MAX($AZ_A), MAX($AZ_B))", &topo, &acks, NodeId(0)).unwrap();
        let view = FlatAcks(vec![9, 9, 3, 1]); // AZ_B behind
        let mut blamed = Vec::new();
        let mut unsat = Vec::new();
        blame_expr(&pred.resolved().expr, 7, &view, &mut blamed, &mut unsat);
        assert_eq!(blamed.len(), 1);
        assert_eq!(blamed[0].0, NodeId(2)); // b1: closest in AZ_B
        assert_eq!(blamed[0].2, 3);
        assert!(unsat.is_empty());
    }

    #[test]
    fn blame_agrees_with_eval_oracle() {
        // Property-style sweep: for every predicate/value/need combo,
        // the walk blames nothing iff eval_resolved(...) >= need.
        let preds = [
            "MIN($ALLWNODES)",
            "MAX($ALLWNODES)",
            "KTH_MAX(2, $ALLWNODES)",
            "KTH_MIN(2, $ALLWNODES)",
            "MIN($ALLWNODES-$MYWNODE)",
        ];
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for src in preds {
            let expr = resolved(src, 4);
            for _ in 0..200 {
                let acks: Vec<u64> = (0..4).map(|_| next() % 10).collect();
                let need = next() % 12;
                let view = FlatAcks(acks.clone());
                let value = eval_resolved(&expr, &view);
                let mut blamed = Vec::new();
                let mut unsat = Vec::new();
                blame_expr(&expr, need, &view, &mut blamed, &mut unsat);
                assert_eq!(
                    blamed.is_empty() && unsat.is_empty(),
                    value >= need,
                    "{src} acks={acks:?} need={need} value={value} blamed={blamed:?}"
                );
            }
        }
    }

    #[test]
    fn unsatisfiable_constants_are_reported() {
        let expr = ResolvedExpr {
            kind: ReduceKind::Smallest,
            k: 1,
            operands: vec![Operand::Cell(NodeId(0), RECEIVED), Operand::Const(3)],
        };
        let view = FlatAcks(vec![10]);
        let mut blamed = Vec::new();
        let mut unsat = Vec::new();
        blame_expr(&expr, 8, &view, &mut blamed, &mut unsat);
        assert!(blamed.is_empty());
        assert_eq!(unsat, vec!["constant 3 can never reach 8"]);
    }

    #[test]
    fn report_json_shape() {
        let report = StallReport {
            stream: NodeId(2),
            key: "All".to_owned(),
            generation: 1,
            frontier: 17,
            target: 23,
            stalled: true,
            predicate: "MIN($ALLWNODES)".to_owned(),
            blamed: vec![BlamedCell {
                node: NodeId(1),
                ack_type: RECEIVED,
                ack_type_name: "received".to_owned(),
                have: 14,
                need: 23,
                suspected: true,
            }],
            unsatisfiable: vec![],
            suspected_peers: vec![NodeId(1)],
        };
        assert_eq!(
            report.to_json(),
            "{\"stream\":2,\"key\":\"All\",\"generation\":1,\"frontier\":17,\
             \"target\":23,\"stalled\":true,\"predicate\":\"MIN($ALLWNODES)\",\
             \"blamed\":[{\"node\":1,\"ack_type\":0,\"ack_type_name\":\"received\",\
             \"have\":14,\"need\":23,\"suspected\":true}],\"unsatisfiable\":[],\
             \"suspected_peers\":[1]}"
        );
        assert!(report.render_human().contains("SUSPECTED"));
        let wrapped = render_stall_reports_json(&[report]);
        assert!(wrapped.starts_with("{\"reports\":[{"));
        assert!(wrapped.ends_with("]}"));
    }
}
