//! Chaos soak: every node publishes its own stream concurrently while
//! links are cut, healed, and made lossy, and predicates are changed at
//! runtime. After the chaos heals, every invariant must hold: FIFO
//! delivery of every stream at every node, frontier convergence, full
//! buffer reclamation.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stabilizer_core::sim_driver::build_cluster;
use stabilizer_core::{ClusterConfig, NodeId, Options, RECEIVED};
use stabilizer_netsim::{LinkSpec, NetTopology, SimDuration, SimTime};

fn chaos_run(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(4..=6);

    let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    let mut cfg_text = format!("az Z {}\n", names.join(" "));
    cfg_text.push_str("predicate All MIN($ALLWNODES-$MYWNODE)\n");
    cfg_text.push_str("predicate Majority KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)\n");
    let opts = Options::default().retransmit_millis(50);
    let cfg = ClusterConfig::parse(&cfg_text).unwrap().with_options(opts);

    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut net = NetTopology::new(&refs);
    for a in 0..n {
        for b in (a + 1)..n {
            net.set_symmetric(
                a,
                b,
                LinkSpec::from_rtt_mbit(rng.gen_range(2..40) as f64, 200.0),
            );
        }
    }
    let mut sim = build_cluster(&cfg, net, seed).unwrap();

    let mut published = vec![0u64; n];
    let mut cut: Vec<(usize, usize)> = Vec::new();
    for _phase in 0..12 {
        // Random publishes from random origins.
        for _ in 0..rng.gen_range(1..8) {
            let origin = rng.gen_range(0..n);
            let size = rng.gen_range(1..2048);
            if sim
                .with_ctx(origin, |node, ctx| {
                    node.publish_in(ctx, Bytes::from(vec![0u8; size]))
                })
                .is_ok()
            {
                published[origin] += 1;
            }
        }
        // Random chaos: cut a link, heal a link, or add loss.
        match rng.gen_range(0..4) {
            0 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && cut.len() < n / 2 {
                    sim.set_link_up(a, b, false);
                    cut.push((a, b));
                }
            }
            1 => {
                if let Some((a, b)) = cut.pop() {
                    sim.set_link_up(a, b, true);
                }
            }
            2 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    sim.set_link_loss(a, b, rng.gen_range(0.0..0.25));
                }
            }
            _ => {
                // Predicate churn at a random node on its own stream.
                let who = rng.gen_range(0..n);
                let flip = if rng.gen_bool(0.5) {
                    "MAX($ALLWNODES-$MYWNODE)"
                } else {
                    "MIN($ALLWNODES-$MYWNODE)"
                };
                let me = NodeId(who as u16);
                sim.with_ctx(who, |node, ctx| {
                    node.change_predicate_in(ctx, me, "All", flip)
                })
                .unwrap();
            }
        }
        sim.run_for(SimDuration::from_millis(rng.gen_range(10..200)));
    }

    // Heal everything and let the system converge (retransmit timers
    // re-arm forever, so drive bounded slices until quiescent).
    for a in 0..n {
        for b in 0..n {
            if a != b {
                sim.set_link_up(a, b, true);
                sim.set_link_loss(a, b, 0.0);
            }
        }
    }
    // Restore the canonical predicate everywhere.
    for who in 0..n {
        let me = NodeId(who as u16);
        sim.with_ctx(who, |node, ctx| {
            node.change_predicate_in(ctx, me, "All", "MIN($ALLWNODES-$MYWNODE)")
        })
        .unwrap();
    }
    let deadline = sim.now() + SimDuration::from_secs(120);
    loop {
        sim.run_for(SimDuration::from_millis(200));
        let done = (0..n).all(|origin| {
            let (f, _) = sim
                .actor(origin)
                .inner()
                .stability_frontier(NodeId(origin as u16), "All")
                .unwrap();
            f >= published[origin]
        });
        if done || sim.now() >= deadline {
            break;
        }
    }

    // Invariants.
    for (origin, &expect) in published.iter().enumerate() {
        let (frontier, _) = sim
            .actor(origin)
            .inner()
            .stability_frontier(NodeId(origin as u16), "All")
            .unwrap();
        assert_eq!(
            frontier, expect,
            "seed {seed}: stream {origin} stalled at {frontier}/{expect}"
        );
        assert_eq!(
            sim.actor(origin).inner().send_buffer_bytes(),
            0,
            "seed {seed}: stream {origin} buffer not reclaimed"
        );
        for receiver in 0..n {
            if receiver == origin {
                continue;
            }
            // Full receipt...
            assert_eq!(
                sim.actor(receiver).inner().recorder().get(
                    NodeId(origin as u16),
                    NodeId(receiver as u16),
                    RECEIVED
                ),
                expect,
                "seed {seed}: receiver {receiver} missing data of {origin}"
            );
            // ...delivered in FIFO order, exactly once.
            let seqs: Vec<u64> = sim
                .actor(receiver)
                .delivery_log
                .iter()
                .filter(|(_, o, _, _)| o.0 as usize == origin)
                .map(|(_, _, s, _)| *s)
                .collect();
            assert_eq!(
                seqs,
                (1..=expect).collect::<Vec<u64>>(),
                "seed {seed}: receiver {receiver} broke FIFO for stream {origin}"
            );
        }
    }
    let _ = SimTime::ZERO;
}

#[test]
fn chaos_soak_seed_batch_one() {
    for seed in 1..=4 {
        chaos_run(seed);
    }
}

#[test]
fn chaos_soak_seed_batch_two() {
    for seed in 100..=103 {
        chaos_run(seed);
    }
}

#[test]
fn chaos_soak_seed_batch_three() {
    for seed in 7000..=7003 {
        chaos_run(seed);
    }
}
