//! Install-time static analysis in the simulated runtime: `option
//! analysis warn` records findings, `option analysis deny` rejects
//! predicates with error- or warning-level findings before they reach the
//! frontier engine.

use bytes::Bytes;
use stabilizer_core::sim_driver::build_cluster;
use stabilizer_core::{ClusterConfig, CoreError, NodeId};
use stabilizer_netsim::{NetTopology, SimDuration};

/// East has two nodes, West one: at w1 (node 2) the set
/// `$MYAZWNODES-$MYWNODE` is empty, which the resolver accepts silently
/// when it appears inside a larger reduction.
const BASE: &str = "\
az East e1 e2
az West w1
predicate AllRemote MIN($ALLWNODES-$MYWNODE)
";

fn net() -> NetTopology {
    NetTopology::full_mesh(3, SimDuration::from_millis(5), 1e9)
}

#[test]
fn warn_mode_installs_but_records_findings() {
    let cfg = ClusterConfig::parse(BASE).unwrap(); // analysis defaults to warn
    let mut sim = build_cluster(&cfg, net(), 11).unwrap();
    // Vacuous predicate: installs fine under warn...
    sim.with_ctx(0, |n, ctx| {
        n.register_predicate_in(ctx, NodeId(0), "Weak", "MAX($ALLWNODES)")
    })
    .unwrap();
    // ...but the finding is on record.
    let report = sim
        .actor(0)
        .inner()
        .analysis_report(NodeId(0), "Weak")
        .expect("warn mode records a report");
    assert!(!report.is_clean());
    assert!(report.render_human().contains("vacuous-predicate"));
    // Clean predicates get a clean report.
    let report = sim
        .actor(0)
        .inner()
        .analysis_report(NodeId(0), "AllRemote")
        .unwrap();
    assert!(report.is_clean());
    // The vacuous predicate still works as compiled.
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from_static(b"x")))
        .unwrap();
    sim.run_until_idle();
    let (frontier, _) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "Weak")
        .unwrap();
    assert_eq!(frontier, 1);
}

#[test]
fn deny_mode_rejects_statically_empty_set_at_install() {
    let cfg = ClusterConfig::parse(&format!("{BASE}option analysis deny\n")).unwrap();
    let mut sim = build_cluster(&cfg, net(), 12).unwrap();
    // At w1 the AZ-local remote set is empty; the predicate *compiles*
    // (the empty set just vanishes from the reduction) but deny-mode
    // analysis rejects it.
    let err = sim
        .with_ctx(2, |n, ctx| {
            n.register_predicate_in(ctx, NodeId(2), "AzOrFirst", "MAX($3, $MYAZWNODES-$MYWNODE)")
        })
        .unwrap_err();
    match &err {
        CoreError::PredicateRejected { key, report } => {
            assert_eq!(key, "AzOrFirst");
            assert!(report.contains("empty-set"), "report:\n{report}");
        }
        other => panic!("expected PredicateRejected, got {other:?}"),
    }
    // The rejected predicate is not registered.
    assert!(sim
        .actor(2)
        .inner()
        .stability_frontier(NodeId(2), "AzOrFirst")
        .is_none());
    // The same source is accepted at e1, where the AZ has a peer.
    sim.with_ctx(0, |n, ctx| {
        n.register_predicate_in(ctx, NodeId(0), "AzOrFirst", "MAX($3, $MYAZWNODES-$MYWNODE)")
    })
    .expect("predicate is clean at a node with an AZ peer");
}

#[test]
fn deny_mode_rejects_warnings_and_change_predicate() {
    let cfg = ClusterConfig::parse(&format!("{BASE}option analysis deny\n")).unwrap();
    let mut sim = build_cluster(&cfg, net(), 13).unwrap();
    // Warning-level finding (vacuous) is enough for rejection.
    let err = sim
        .with_ctx(0, |n, ctx| {
            n.register_predicate_in(ctx, NodeId(0), "Weak", "MAX($ALLWNODES)")
        })
        .unwrap_err();
    assert!(matches!(err, CoreError::PredicateRejected { .. }));
    // change_predicate is guarded identically.
    let err = sim
        .with_ctx(0, |n, ctx| {
            n.change_predicate_in(ctx, NodeId(0), "AllRemote", "MAX($ALLWNODES)")
        })
        .unwrap_err();
    assert!(matches!(err, CoreError::PredicateRejected { .. }));
    // The original predicate survives the rejected change.
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from_static(b"x")))
        .unwrap();
    sim.run_until_idle();
    let (frontier, _) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "AllRemote")
        .unwrap();
    assert_eq!(frontier, 1);
}

#[test]
fn configured_acktype_restrictions_feed_the_analyzer() {
    // Only e2 emits .verified; a predicate waiting on w1.verified is
    // rejected under deny.
    let cfg = ClusterConfig::parse(&format!(
        "{BASE}acktype verified e2\noption analysis deny\n"
    ))
    .unwrap();
    let mut sim = build_cluster(&cfg, net(), 14).unwrap();
    let err = sim
        .with_ctx(0, |n, ctx| {
            n.register_predicate_in(ctx, NodeId(0), "V", "MAX($WNODE_w1.verified)")
        })
        .unwrap_err();
    match &err {
        CoreError::PredicateRejected { report, .. } => {
            assert!(report.contains("unemitted-ack-type"), "report:\n{report}");
        }
        other => panic!("expected PredicateRejected, got {other:?}"),
    }
    // Waiting on the declared emitter is fine.
    sim.with_ctx(0, |n, ctx| {
        n.register_predicate_in(ctx, NodeId(0), "V", "MAX($WNODE_e2.verified)")
    })
    .unwrap();
}
