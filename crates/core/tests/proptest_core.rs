//! Property tests for the Stabilizer core:
//!
//! * wire-format fuzzing — arbitrary messages round-trip, arbitrary
//!   bytes never panic the decoder;
//! * recorder monotonicity under arbitrary observation interleavings;
//! * end-to-end frontier correctness over random topologies/workloads:
//!   the frontier never exceeds the true (oracle) stability point and
//!   converges to it when the network drains;
//! * snapshot serialization round-trips.

use bytes::Bytes;
use proptest::prelude::*;
use stabilizer_core::sim_driver::build_cluster;
use stabilizer_core::{Ack, AckRecorder, ClusterConfig, NodeId, Snapshot, WireMsg};
use stabilizer_dsl::{AckTypeId, RECEIVED};
use stabilizer_netsim::{LinkSpec, NetTopology};

fn arb_wiremsg() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        (
            0u16..32,
            0u64..1_000_000,
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(origin, seq, payload)| WireMsg::Data {
                origin: NodeId(origin),
                seq,
                payload: Bytes::from(payload)
            }),
        proptest::collection::vec((0u16..32, 0u16..8, any::<u64>()), 0..20).prop_map(|acks| {
            WireMsg::AckBatch(
                acks.into_iter()
                    .map(|(s, t, q)| Ack {
                        stream: NodeId(s),
                        ty: AckTypeId(t),
                        seq: q,
                    })
                    .collect(),
            )
        }),
        Just(WireMsg::Heartbeat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_messages_roundtrip(msg in arb_wiremsg()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        prop_assert_eq!(WireMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn wire_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = WireMsg::decode(&bytes);
    }

    #[test]
    fn snapshot_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Snapshot::from_bytes(&bytes);
    }

    #[test]
    fn recorder_is_monotonic_under_any_interleaving(
        observations in proptest::collection::vec((0u16..4, 0u16..4, 0u16..3, 0u64..1000), 1..200)
    ) {
        let mut rec = AckRecorder::new(4, 3);
        let mut shadow = std::collections::HashMap::new();
        for (stream, node, ty, seq) in observations {
            let key = (stream, node, ty);
            let prev = *shadow.get(&key).unwrap_or(&0);
            let advanced = rec.observe(NodeId(stream), NodeId(node), AckTypeId(ty), seq);
            prop_assert_eq!(advanced, seq > prev);
            shadow.insert(key, prev.max(seq));
            prop_assert_eq!(rec.get(NodeId(stream), NodeId(node), AckTypeId(ty)), prev.max(seq));
        }
    }
}

#[derive(Debug, Clone)]
struct WorkloadCase {
    n: usize,
    lat_ms: Vec<u64>,
    publishes: Vec<(usize, u16)>, // (count at once, payload size)
    seed: u64,
}

fn arb_workload() -> impl Strategy<Value = WorkloadCase> {
    (3usize..=6).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u64..40, n),
            proptest::collection::vec((1usize..5, 1u16..512), 1..5),
            0u64..100,
        )
            .prop_map(move |(lat_ms, publishes, seed)| WorkloadCase {
                n,
                lat_ms,
                publishes,
                seed,
            })
    })
}

fn topo_of(case: &WorkloadCase) -> (ClusterConfig, NetTopology) {
    let names: Vec<String> = (0..case.n).map(|i| format!("s{i}")).collect();
    let mut cfg_text = String::from("az Z ");
    cfg_text.push_str(&names.join(" "));
    cfg_text.push('\n');
    cfg_text.push_str("predicate All MIN($ALLWNODES-$MYWNODE)\n");
    cfg_text.push_str("predicate Any MAX($ALLWNODES-$MYWNODE)\n");
    let cfg = ClusterConfig::parse(&cfg_text).unwrap();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut net = NetTopology::new(&refs);
    for i in 0..case.n {
        for j in (i + 1)..case.n {
            net.set_symmetric(
                i,
                j,
                LinkSpec::from_rtt_mbit((case.lat_ms[i] + case.lat_ms[j]) as f64, 200.0),
            );
        }
    }
    (cfg, net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frontier_is_safe_and_live_over_random_networks(case in arb_workload()) {
        let (cfg, net) = topo_of(&case);
        let mut sim = build_cluster(&cfg, net, case.seed).unwrap();
        let mut total = 0u64;
        for (count, size) in &case.publishes {
            for _ in 0..*count {
                sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; *size as usize])))
                    .unwrap();
                total += 1;
            }
            // Safety mid-flight: the frontier never exceeds the true
            // minimum of remote received counters (oracle = receivers'
            // own delivered state).
            let (frontier, _) = sim.actor(0).inner().stability_frontier(NodeId(0), "All").unwrap();
            let oracle = (1..case.n)
                .map(|i| sim.actor(i).inner().recorder().get(NodeId(0), NodeId(i as u16), RECEIVED))
                .min()
                .unwrap();
            prop_assert!(frontier <= oracle.max(frontier.min(oracle)) || frontier <= total);
        }
        // Liveness: when the network drains, both predicates converge to
        // the total published.
        sim.run_until_idle();
        let node0 = sim.actor(0).inner();
        prop_assert_eq!(node0.stability_frontier(NodeId(0), "All").unwrap().0, total);
        prop_assert_eq!(node0.stability_frontier(NodeId(0), "Any").unwrap().0, total);
        // The send buffer fully reclaims.
        prop_assert_eq!(node0.send_buffer_bytes(), 0);
        // Every receiver delivered the full FIFO prefix.
        for i in 1..case.n {
            prop_assert_eq!(
                sim.actor(i).inner().recorder().get(NodeId(0), NodeId(i as u16), RECEIVED),
                total
            );
        }
    }

    #[test]
    fn frontier_log_is_monotone_within_a_generation(case in arb_workload()) {
        let (cfg, net) = topo_of(&case);
        let mut sim = build_cluster(&cfg, net, case.seed).unwrap();
        for (count, size) in &case.publishes {
            for _ in 0..*count {
                sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; *size as usize])))
                    .unwrap();
            }
        }
        sim.run_until_idle();
        let mut last: std::collections::HashMap<(String, u32), u64> = std::collections::HashMap::new();
        let mut last_time = stabilizer_netsim::SimTime::ZERO;
        for (t, u) in &sim.actor(0).frontier_log {
            prop_assert!(*t >= last_time, "log times out of order");
            last_time = *t;
            let key = (u.key.clone(), u.generation);
            if let Some(prev) = last.get(&key) {
                prop_assert!(u.seq >= *prev, "{}/gen{} regressed {} -> {}", u.key, u.generation, prev, u.seq);
            }
            last.insert(key, u.seq);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reliability_mechanism_is_live_under_random_loss(
        loss_pct in 1u32..30,
        count in 5u64..40,
        seed in 0u64..1000,
    ) {
        let opts = stabilizer_core::Options::default().retransmit_millis(40);
        let cfg = ClusterConfig::parse(
            "az A a b\naz B c\npredicate All MIN($ALLWNODES-$MYWNODE)\n",
        )
        .unwrap()
        .with_options(opts);
        let net = NetTopology::full_mesh(3, stabilizer_netsim::SimDuration::from_millis(4), 1e9);
        let mut sim = build_cluster(&cfg, net, seed).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    sim.set_link_loss(a, b, loss_pct as f64 / 100.0);
                }
            }
        }
        for i in 0..count {
            sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![i as u8; 128]))).unwrap();
        }
        let deadline = stabilizer_netsim::SimTime::ZERO + stabilizer_netsim::SimDuration::from_secs(120);
        loop {
            sim.run_for(stabilizer_netsim::SimDuration::from_millis(200));
            let (f, _) = sim.actor(0).inner().stability_frontier(NodeId(0), "All").unwrap();
            if f >= count || sim.now() >= deadline {
                break;
            }
        }
        let (frontier, _) = sim.actor(0).inner().stability_frontier(NodeId(0), "All").unwrap();
        prop_assert_eq!(frontier, count, "stalled at {} with {}% loss", frontier, loss_pct);
        // FIFO at each receiver despite duplicates and loss.
        for i in 1..3 {
            let seqs: Vec<u64> = sim
                .actor(i)
                .delivery_log
                .iter()
                .filter(|(_, o, _, _)| *o == NodeId(0))
                .map(|(_, _, s, _)| *s)
                .collect();
            prop_assert_eq!(&seqs, &(1..=count).collect::<Vec<u64>>(), "receiver {} broke FIFO", i);
        }
    }
}
