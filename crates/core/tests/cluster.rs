//! End-to-end tests of the Stabilizer protocol over the deterministic
//! WAN simulator: frontier semantics, predicate ordering, dynamic
//! reconfiguration, fault handling, and buffer reclamation.

use bytes::Bytes;
use stabilizer_core::sim_driver::build_cluster;
use stabilizer_core::{ClusterConfig, NodeId, Options, SeqNo};
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};

fn ec2_cfg(extra: &str) -> ClusterConfig {
    ClusterConfig::parse(&format!(
        "az North_California n1 n2\n\
         az North_Virginia n3 n4 n5 n6\n\
         az Oregon n7\n\
         az Ohio n8\n\
         {extra}"
    ))
    .unwrap()
}

const TABLE3: &str = "\
predicate OneRegion MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
predicate MajorityRegions KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
predicate AllRegions MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))
predicate OneWNode MAX($ALLWNODES-$MYWNODE)
predicate MajorityWNodes KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)
predicate AllWNodes MIN($ALLWNODES-$MYWNODE)
";

/// First time each predicate's frontier reached `seq` at node 0.
fn first_reach(
    sim: &stabilizer_netsim::Simulation<stabilizer_core::sim_driver::SimNode>,
    key: &str,
    seq: SeqNo,
) -> Option<SimTime> {
    sim.actor(0)
        .frontier_log
        .iter()
        .find(|(_, u)| u.key == key && u.seq >= seq)
        .map(|(t, _)| *t)
}

#[test]
fn all_predicates_eventually_cover_every_message() {
    let cfg = ec2_cfg(TABLE3);
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 1).unwrap();
    for i in 0..20 {
        sim.with_ctx(0, |n, ctx| {
            n.publish_in(ctx, Bytes::from(vec![i as u8; 1024]))
        })
        .unwrap();
    }
    sim.run_until_idle();
    let node0 = sim.actor(0).inner();
    for key in [
        "OneRegion",
        "MajorityRegions",
        "AllRegions",
        "OneWNode",
        "MajorityWNodes",
        "AllWNodes",
    ] {
        let (frontier, _) = node0.stability_frontier(NodeId(0), key).unwrap();
        assert_eq!(frontier, 20, "predicate {key} stalled");
    }
}

#[test]
fn predicate_strength_orders_latency() {
    let cfg = ec2_cfg(TABLE3);
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 2).unwrap();
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 8192])))
        .unwrap();
    sim.run_until_idle();

    let t =
        |key: &str| first_reach(&sim, key, 1).unwrap_or_else(|| panic!("{key} never reached 1"));
    // Weaker predicates stabilize no later than stronger ones.
    assert!(t("OneRegion") <= t("MajorityRegions"));
    assert!(t("MajorityRegions") <= t("AllRegions"));
    assert!(t("OneWNode") <= t("MajorityWNodes"));
    assert!(t("MajorityWNodes") <= t("AllWNodes"));
    // Region-granularity majority beats node-granularity majority on this
    // topology (the Fig. 6 effect).
    assert!(t("MajorityRegions") <= t("MajorityWNodes"));
    // OneRegion is bounded below by the fastest remote-region RTT
    // (Oregon, 23.29 ms) and OneWNode by the intra-AZ RTT (3.7 ms).
    let one_node_ms = t("OneWNode").as_millis_f64();
    assert!(
        (3.0..10.0).contains(&one_node_ms),
        "OneWNode at {one_node_ms}ms"
    );
    let one_region_ms = t("OneRegion").as_millis_f64();
    assert!(
        (20.0..30.0).contains(&one_region_ms),
        "OneRegion at {one_region_ms}ms"
    );
    let all_ms = t("AllWNodes").as_millis_f64();
    assert!((60.0..75.0).contains(&all_ms), "AllWNodes at {all_ms}ms");
}

#[test]
fn every_node_converges_to_the_same_frontiers() {
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 3).unwrap();
    // Register the sender-stream predicate at every node (they watch
    // stream 0 with the *sender's* AllWNodes meaning: all but node 0).
    for i in 1..8 {
        sim.with_ctx(i, |n, ctx| {
            n.register_predicate_in(ctx, NodeId(0), "watch0", "MIN($ALLWNODES-$1)")
        })
        .unwrap();
    }
    for _ in 0..5 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![7u8; 2048])))
            .unwrap();
    }
    sim.run_until_idle();
    // "Each WAN node detects stability independently ... but all WAN
    // nodes reach the same conclusions eventually."
    for i in 1..8 {
        let (frontier, _) = sim
            .actor(i)
            .inner()
            .stability_frontier(NodeId(0), "watch0")
            .unwrap();
        assert_eq!(frontier, 5, "node {i} disagrees");
    }
}

#[test]
fn waitfor_completes_at_the_frontier_time() {
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 4).unwrap();
    let seq = sim
        .with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![1u8; 4096])))
        .unwrap();
    let token = sim
        .with_ctx(0, |n, ctx| n.waitfor_in(ctx, NodeId(0), "AllWNodes", seq))
        .unwrap();
    sim.run_until_idle();
    let (done_at, done_token) = sim.actor(0).completed_waits[0];
    assert_eq!(done_token, token);
    assert_eq!(Some(done_at), first_reach(&sim, "AllWNodes", seq));
}

#[test]
fn change_predicate_exposes_generation_gap() {
    let cfg = ec2_cfg("predicate P MAX($ALLWNODES-$MYWNODE)");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 5).unwrap();
    for _ in 0..3 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 1024])))
            .unwrap();
    }
    sim.run_until_idle();
    assert_eq!(
        sim.actor(0).inner().stability_frontier(NodeId(0), "P"),
        Some((3, 0))
    );
    // Strengthen to all-remotes with a *new* unacked message outstanding.
    sim.with_ctx(0, |n, ctx| {
        n.change_predicate_in(ctx, NodeId(0), "P", "MIN($ALLWNODES-$MYWNODE)")
    })
    .unwrap();
    let (frontier, generation) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "P")
        .unwrap();
    assert_eq!(generation, 1);
    assert_eq!(
        frontier, 3,
        "already-stable prefix carries over under the stronger predicate"
    );
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 1024])))
        .unwrap();
    sim.run_until_idle();
    assert_eq!(
        sim.actor(0).inner().stability_frontier(NodeId(0), "P"),
        Some((4, 1))
    );
}

#[test]
fn crashed_secondary_is_suspected_and_excluded() {
    let opts = Options::default()
        .failure_timeout_millis(500)
        .heartbeat_millis(100)
        .auto_exclude_suspects(true);
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)").with_options(opts);
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 6).unwrap();

    // Cut node 7 (Ohio) off entirely.
    for i in 0..7 {
        sim.set_link_up(7, i, false);
        sim.set_link_up(i, 7, false);
    }
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 1024])))
        .unwrap();
    // AllWNodes cannot advance while node 7 is in the predicate.
    sim.run_for(SimDuration::from_millis(300));
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap()
            .0,
        0
    );
    // After the failure timeout, node 0 suspects node 7, auto-excludes
    // it, and the frontier advances on the remaining nodes.
    sim.run_for(SimDuration::from_millis(1500));
    assert!(sim.actor(0).inner().is_suspected(NodeId(7)));
    assert!(sim
        .actor(0)
        .suspected_log
        .iter()
        .any(|(_, n)| *n == NodeId(7)));
    let (frontier, generation) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "AllWNodes")
        .unwrap();
    assert_eq!(frontier, 1);
    assert!(generation >= 1);
}

#[test]
fn send_buffer_reclaims_after_global_receipt() {
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 7).unwrap();
    for _ in 0..10 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 8192])))
            .unwrap();
    }
    assert_eq!(sim.actor(0).inner().send_buffer_bytes(), 10 * 8192);
    sim.run_until_idle();
    assert_eq!(
        sim.actor(0).inner().send_buffer_bytes(),
        0,
        "buffer not reclaimed"
    );
}

#[test]
fn backpressure_then_progress() {
    let opts = Options::default().send_buffer_bytes(3 * 8192);
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)").with_options(opts);
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 8).unwrap();
    let mut published = 0;
    let mut blocked = 0;
    for _ in 0..6 {
        let r = sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 8192])));
        match r {
            Ok(_) => published += 1,
            Err(stabilizer_core::CoreError::WouldBlock { .. }) => blocked += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(published, 3);
    assert_eq!(blocked, 3);
    sim.run_until_idle(); // acks drain the buffer
    for _ in 0..3 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 8192])))
            .unwrap();
    }
}

#[test]
fn custom_ack_type_gates_frontier() {
    let cfg = ec2_cfg("");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 9).unwrap();
    // Register a custom `verified` level everywhere, then a predicate on it.
    for i in 0..8 {
        sim.with_ctx(i, |n, _| n.inner_mut().register_ack_type("verified"));
    }
    sim.with_ctx(0, |n, ctx| {
        n.register_predicate_in(
            ctx,
            NodeId(0),
            "Verified2",
            "KTH_MAX(2, ($ALLWNODES-$MYWNODE).verified)",
        )
    })
    .unwrap();
    let seq = sim
        .with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 100])))
        .unwrap();
    sim.run_until_idle();
    // Receipt alone is not verification.
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "Verified2")
            .unwrap()
            .0,
        0
    );
    // Two remote apps verify; frontier advances once both reports land.
    let verified = sim.actor(1).inner().ack_types().lookup("verified").unwrap();
    for i in [1usize, 6] {
        sim.with_ctx(i, |n, ctx| {
            n.report_stability_in(ctx, NodeId(0), verified, seq)
        });
    }
    sim.run_until_idle();
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "Verified2")
            .unwrap()
            .0,
        seq
    );
}

#[test]
fn deterministic_reruns_produce_identical_logs() {
    let run = || {
        let cfg = ec2_cfg(TABLE3);
        let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 11).unwrap();
        for i in 0..10 {
            sim.with_ctx(0, |n, ctx| {
                n.publish_in(ctx, Bytes::from(vec![i as u8; 4096]))
            })
            .unwrap();
        }
        sim.run_until_idle();
        sim.actor(0).frontier_log.clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn snapshot_restore_preserves_control_plane() {
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 12).unwrap();
    for _ in 0..4 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 512])))
            .unwrap();
    }
    sim.run_until_idle();
    let snapshot = sim.actor(0).inner().snapshot();
    let acks = std::sync::Arc::clone(sim.actor(0).inner().ack_types());
    let restored =
        stabilizer_core::StabilizerNode::restore(cfg, NodeId(0), acks, snapshot).unwrap();
    assert_eq!(restored.last_published(), 4);
    assert_eq!(
        restored
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap()
            .0,
        4
    );
}

#[test]
fn primary_crash_restart_resumes_from_snapshot() {
    // §III-E primary recovery: the node snapshots its control-plane
    // state, "crashes", and a restarted instance (rebuilt from the
    // snapshot, as the integrated storage system would) resumes the
    // stream at the right sequence number.
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 21).unwrap();
    for _ in 0..5 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 256])))
            .unwrap();
    }
    sim.run_until_idle();
    let snapshot = sim.actor(0).inner().snapshot();
    // Persist through the byte format (what the storage system stores).
    let snapshot = stabilizer_core::Snapshot::from_bytes(&snapshot.to_bytes()).unwrap();
    let acks = std::sync::Arc::clone(sim.actor(0).inner().ack_types());

    // Crash and restart node 0 from the snapshot.
    let restarted =
        stabilizer_core::StabilizerNode::restore(cfg, NodeId(0), acks, snapshot).unwrap();
    sim.replace_actor(
        0,
        stabilizer_core::sim_driver::SimNode::new(restarted, stabilizer_core::sim_driver::NoHooks),
    );

    // The restarted primary continues the stream: next seq is 6, and
    // receivers (which kept their state) deliver it in order.
    let seq = sim
        .with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 256])))
        .unwrap();
    assert_eq!(seq, 6);
    sim.run_until_idle();
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap()
            .0,
        6
    );
    for i in 1..8 {
        assert_eq!(
            sim.actor(i).inner().recorder().get(
                NodeId(0),
                NodeId(i as u16),
                stabilizer_core::RECEIVED
            ),
            6,
            "receiver {i} missed the post-restart message"
        );
    }
}

#[test]
fn jitter_separates_majority_from_all_nodes() {
    // With per-message jitter (the real testbed's variance), waiting for
    // 5 of 7 remotes is strictly cheaper than waiting for all 7 — the
    // distinction the paper's Fig. 5 shows between MajorityWNodes and
    // AllWNodes, which a jitter-free emulation collapses.
    let cfg = ec2_cfg(
        "predicate MajorityWNodes KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)\n\
         predicate AllWNodes MIN($ALLWNODES-$MYWNODE)\n",
    );
    let net = NetTopology::ec2_fig2().with_jitter(SimDuration::from_millis(8));
    let mut sim = build_cluster(&cfg, net, 22).unwrap();
    let mut majority_sum = 0.0;
    let mut all_sum = 0.0;
    for _ in 0..30 {
        let seq = sim
            .with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 1024])))
            .unwrap();
        sim.run_until_idle();
        let t = |key: &str| first_reach(&sim, key, seq).unwrap().as_millis_f64();
        majority_sum += t("MajorityWNodes");
        all_sum += t("AllWNodes");
    }
    assert!(
        majority_sum + 1.0 < all_sum,
        "jitter failed to separate MajorityWNodes ({majority_sum}) from AllWNodes ({all_sum})"
    );
}

#[test]
fn reliability_mechanism_recovers_from_heavy_loss() {
    // §III-A: "We treat each message as a separately sequenced object
    // and provide a basic reliability mechanism that ensures lossless
    // FIFO delivery." Inject 20% independent message loss on every link
    // of a 4-node mesh; the go-back-N retransmitter must still deliver
    // every message, in order, to every peer.
    let opts = Options::default().retransmit_millis(50);
    let cfg = ClusterConfig::parse("az A a b\naz B c d\npredicate All MIN($ALLWNODES-$MYWNODE)\n")
        .unwrap()
        .with_options(opts);
    let net = NetTopology::full_mesh(4, SimDuration::from_millis(5), 1e9);
    let mut sim = build_cluster(&cfg, net, 33).unwrap();
    for a in 0..4 {
        for b in 0..4 {
            if a != b {
                sim.set_link_up(a, b, true);
                sim.set_link_loss(a, b, 0.2);
            }
        }
    }
    const COUNT: u64 = 50;
    for i in 0..COUNT {
        sim.with_ctx(0, |n, ctx| {
            n.publish_in(ctx, Bytes::from(vec![i as u8; 512]))
        })
        .unwrap();
    }
    // Run in bounded slices (the retransmit timer re-arms forever).
    let deadline = SimTime::ZERO + SimDuration::from_secs(60);
    loop {
        sim.run_for(SimDuration::from_millis(100));
        let (frontier, _) = sim
            .actor(0)
            .inner()
            .stability_frontier(NodeId(0), "All")
            .unwrap();
        if frontier >= COUNT || sim.now() >= deadline {
            break;
        }
    }
    assert!(sim.dropped() > 0, "loss injection inactive");
    let node0 = sim.actor(0).inner();
    assert_eq!(
        node0.stability_frontier(NodeId(0), "All").unwrap().0,
        COUNT,
        "lossless FIFO delivery violated under loss (dropped {} msgs, retransmitted {})",
        sim.dropped(),
        node0.metrics().retransmits
    );
    assert!(
        node0.metrics().retransmits > 0,
        "recovery happened without retransmissions?"
    );
    // FIFO delivery at each receiver: the delivery log is gapless and
    // ordered (duplicates suppressed).
    for i in 1..4 {
        let seqs: Vec<u64> = sim
            .actor(i)
            .delivery_log
            .iter()
            .filter(|(_, o, _, _)| *o == NodeId(0))
            .map(|(_, _, s, _)| *s)
            .collect();
        assert_eq!(
            seqs,
            (1..=COUNT).collect::<Vec<u64>>(),
            "receiver {i} broke FIFO"
        );
    }
}

#[test]
fn retransmission_stays_quiet_on_clean_links() {
    let opts = Options::default().retransmit_millis(20);
    let cfg = ClusterConfig::parse("az A a b c\npredicate All MIN($ALLWNODES-$MYWNODE)\n")
        .unwrap()
        .with_options(opts);
    let net = NetTopology::full_mesh(3, SimDuration::from_millis(5), 1e9);
    let mut sim = build_cluster(&cfg, net, 34).unwrap();
    for _ in 0..20 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 512])))
            .unwrap();
    }
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "All")
            .unwrap()
            .0,
        20
    );
    assert_eq!(
        sim.actor(0).inner().metrics().retransmits,
        0,
        "spurious retransmissions on a loss-free network"
    );
}

#[test]
fn recovered_secondary_is_automatically_reinstated() {
    // The full §III-E loop, hands-free: crash -> suspicion -> automatic
    // exclusion -> frontier advances without the dead node; node returns
    // -> first traffic clears suspicion -> predicates reinstated -> the
    // frontier again requires the recovered node.
    let opts = Options::default()
        .failure_timeout_millis(400)
        .heartbeat_millis(100)
        .auto_exclude_suspects(true)
        // Without the reliability mechanism the message dropped during
        // the partition could never reach the returning node.
        .retransmit_millis(100);
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)").with_options(opts);
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 41).unwrap();

    // Node 7 (Ohio) drops off the network.
    for i in 0..7 {
        sim.set_link_up(7, i, false);
        sim.set_link_up(i, 7, false);
    }
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 256])))
        .unwrap();
    sim.run_for(SimDuration::from_millis(1500));
    assert!(sim.actor(0).inner().is_suspected(NodeId(7)));
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap()
            .0,
        1
    );

    // Ohio comes back; its heartbeats resume.
    for i in 0..7 {
        sim.set_link_up(7, i, true);
        sim.set_link_up(i, 7, true);
    }
    sim.run_for(SimDuration::from_millis(800));
    assert!(
        !sim.actor(0).inner().is_suspected(NodeId(7)),
        "suspicion not cleared"
    );
    assert!(
        sim.actor(0)
            .recovered_log
            .iter()
            .any(|(_, n)| *n == NodeId(7)),
        "recovery not reported"
    );
    // The origin reclaimed message 1 while node 7 was excluded, so the
    // returning mirror recovers it from the storage system (§III-E) and
    // fast-forwards its stream position; its ACK then satisfies the
    // reinstated predicate.
    sim.with_ctx(7, |n, ctx| {
        n.inner_mut().fast_forward_stream(NodeId(0), 1);
        let actions = n.inner_mut().take_actions();
        n.process_actions(ctx, actions);
    });
    sim.run_for(SimDuration::from_millis(200));
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap()
            .0,
        1
    );

    // A new message now needs node 7 again: cut it once more and verify
    // the frontier stalls (proof the predicate was reinstated) ...
    for i in 0..7 {
        sim.set_link_up(7, i, false);
        sim.set_link_up(i, 7, false);
    }
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 256])))
        .unwrap();
    sim.run_for(SimDuration::from_millis(300));
    let (frontier, _) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "AllWNodes")
        .unwrap();
    assert_eq!(
        frontier, 1,
        "reinstated predicate should wait for node 7 again"
    );
    // ... and after the second suspicion cycle it advances once more.
    sim.run_for(SimDuration::from_millis(1500));
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap()
            .0,
        2
    );
}

/// Assert the frontier log entries for `key` at `node` never regress
/// within a generation, and that generations themselves never decrease.
/// This is the chaos harness's frontier invariant, stated inline so the
/// core crate needs no dev-dependency on `stabilizer-chaos` (which
/// depends on this crate).
fn assert_frontier_monotone(
    sim: &stabilizer_netsim::Simulation<stabilizer_core::sim_driver::SimNode>,
    node: usize,
    key: &str,
) {
    let mut last: Option<(u32, SeqNo)> = None;
    for (at, u) in sim.actor(node).frontier_log.iter() {
        if u.key != key {
            continue;
        }
        if let Some((gen, seq)) = last {
            assert!(
                u.generation >= gen,
                "generation regressed {gen} -> {} at {at:?}",
                u.generation
            );
            if u.generation == gen {
                assert!(
                    u.seq >= seq,
                    "frontier for {key} regressed {seq} -> {} within generation {gen} at {at:?}",
                    u.seq
                );
            }
        }
        last = Some((u.generation, u.seq));
    }
    assert!(
        last.is_some(),
        "no frontier updates for {key} at node {node}"
    );
}

#[test]
fn frontier_never_regresses_across_mid_stream_predicate_changes() {
    // Regression test: flip the predicate weaker->stronger->weaker while
    // messages are still in flight. Each change bumps the generation;
    // within every generation the reported frontier must be monotone.
    let cfg = ec2_cfg("predicate P MAX($ALLWNODES-$MYWNODE)");
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 51).unwrap();
    let sources = [
        "MIN($ALLWNODES-$MYWNODE)",                             // strongest
        "KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)", // majority
        "MAX($ALLWNODES-$MYWNODE)",                             // weakest
    ];
    for (round, source) in sources.iter().enumerate() {
        for i in 0..4 {
            sim.with_ctx(0, |n, ctx| {
                n.publish_in(ctx, Bytes::from(vec![(round * 4 + i) as u8; 2048]))
            })
            .unwrap();
        }
        // Change mid-flight: the just-published burst has not stabilized.
        sim.with_ctx(0, |n, ctx| {
            n.change_predicate_in(ctx, NodeId(0), "P", source)
        })
        .unwrap();
        sim.run_for(SimDuration::from_millis(40));
    }
    sim.run_until_idle();
    assert_frontier_monotone(&sim, 0, "P");
    let (frontier, generation) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "P")
        .unwrap();
    assert_eq!(frontier, 12, "all bursts eventually stabilize");
    assert_eq!(generation, 3, "one bump per change_predicate");
}

#[test]
fn frontier_never_regresses_across_exclusion_and_reinstatement() {
    // Regression test: the §III-E exclusion/reinstatement cycle rewrites
    // the predicate twice (drop node 7, re-add node 7). The frontier the
    // application sees must stay monotone within each generation even
    // though the *set* of required ackers shrank and grew back.
    let opts = Options::default()
        .failure_timeout_millis(400)
        .heartbeat_millis(100)
        .auto_exclude_suspects(true)
        .retransmit_millis(100);
    let cfg = ec2_cfg("predicate AllWNodes MIN($ALLWNODES-$MYWNODE)").with_options(opts);
    let mut sim = build_cluster(&cfg, NetTopology::ec2_fig2(), 52).unwrap();

    for _ in 0..3 {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 512])))
            .unwrap();
    }
    // `run_until_idle` would never return here: the heartbeat and
    // retransmit timers re-arm forever. Bounded slices instead.
    sim.run_for(SimDuration::from_millis(500));

    // Node 7 drops off; publish into the partition; auto-exclusion lets
    // the frontier advance without it.
    for i in 0..7 {
        sim.set_link_up(7, i, false);
        sim.set_link_up(i, 7, false);
    }
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![1u8; 512])))
        .unwrap();
    sim.run_for(SimDuration::from_millis(1500));
    assert!(sim.actor(0).inner().is_suspected(NodeId(7)));
    assert_eq!(
        sim.actor(0)
            .inner()
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap()
            .0,
        4
    );

    // Node 7 returns, catches up out of band, and is reinstated.
    for i in 0..7 {
        sim.set_link_up(7, i, true);
        sim.set_link_up(i, 7, true);
    }
    sim.run_for(SimDuration::from_millis(800));
    assert!(!sim.actor(0).inner().is_suspected(NodeId(7)));
    sim.with_ctx(7, |n, ctx| {
        n.inner_mut().fast_forward_stream(NodeId(0), 4);
        let actions = n.inner_mut().take_actions();
        n.process_actions(ctx, actions);
    });
    sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![2u8; 512])))
        .unwrap();
    sim.run_for(SimDuration::from_secs(2));

    assert_frontier_monotone(&sim, 0, "AllWNodes");
    let (frontier, generation) = sim
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "AllWNodes")
        .unwrap();
    assert_eq!(
        frontier, 5,
        "post-reinstatement message stabilized on all nodes"
    );
    assert!(
        generation >= 2,
        "exclusion and reinstatement each bump the generation (got {generation})"
    );
}
