//! Tests for the simulator driver itself: application hooks fire with
//! correct arguments and in order, and the coalescing timer batches ACKs
//! in simulation.

use bytes::Bytes;
use stabilizer_core::sim_driver::{AppHooks, SimNode};
use stabilizer_core::{ClusterConfig, FrontierUpdate, NodeId, Options, StabilizerNode};
use stabilizer_dsl::AckTypeRegistry;
use stabilizer_netsim::{NetTopology, SimDuration, SimTime, Simulation};
use std::sync::Arc;

#[derive(Default)]
struct Counting {
    delivers: Vec<(NodeId, u64, usize)>,
    frontiers: Vec<(String, u64)>,
    waits: Vec<u64>,
}

impl AppHooks for Counting {
    fn on_deliver(&mut self, _now: SimTime, origin: NodeId, seq: u64, payload: &Bytes) {
        self.delivers.push((origin, seq, payload.len()));
    }
    fn on_frontier(&mut self, _now: SimTime, update: &FrontierUpdate) {
        self.frontiers.push((update.key.clone(), update.seq));
    }
    fn on_wait_done(&mut self, _now: SimTime, token: u64) {
        self.waits.push(token);
    }
}

fn cluster_with_hooks(opts: Options) -> Simulation<SimNode<Counting>> {
    let cfg = ClusterConfig::parse("az A a b\npredicate All MIN($ALLWNODES-$MYWNODE)\n")
        .unwrap()
        .with_options(opts);
    let acks = Arc::new(AckTypeRegistry::new());
    let nodes: Vec<SimNode<Counting>> = (0..2)
        .map(|i| {
            SimNode::new(
                StabilizerNode::new(cfg.clone(), NodeId(i), Arc::clone(&acks)).unwrap(),
                Counting::default(),
            )
        })
        .collect();
    Simulation::new(
        NetTopology::full_mesh(2, SimDuration::from_millis(5), 1e9),
        nodes,
        1,
    )
}

#[test]
fn hooks_receive_deliveries_frontiers_and_waits() {
    let mut sim = cluster_with_hooks(Options::default());
    let seq = sim
        .with_ctx(0, |n, ctx| {
            n.publish_in(ctx, Bytes::from_static(b"payload9"))
        })
        .unwrap();
    let token = sim
        .with_ctx(0, |n, ctx| n.waitfor_in(ctx, NodeId(0), "All", seq))
        .unwrap();
    sim.run_until_idle();
    // Subscriber hook saw the payload.
    assert_eq!(sim.actor(1).hooks.delivers, vec![(NodeId(0), 1, 8)]);
    // Publisher hook saw the frontier advance and the wait completion.
    assert_eq!(sim.actor(0).hooks.frontiers, vec![("All".to_owned(), 1)]);
    assert_eq!(sim.actor(0).hooks.waits, vec![token]);
}

#[test]
fn coalescing_timer_batches_acks_in_simulation() {
    // With a 2 ms coalescing interval, five rapid-fire messages produce
    // far fewer ACK batches than eager mode's five-per-peer.
    let eager = {
        let mut sim = cluster_with_hooks(Options::default());
        for _ in 0..5 {
            sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 64])))
                .unwrap();
        }
        sim.run_until_idle();
        sim.actor(1).inner().metrics().control_msgs_sent
    };
    let coalesced = {
        let mut sim = cluster_with_hooks(Options::default().ack_flush_micros(2000));
        for _ in 0..5 {
            sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 64])))
                .unwrap();
        }
        // Coalescing timers re-arm forever: run a bounded slice.
        sim.run_for(SimDuration::from_millis(100));
        sim.actor(1).inner().metrics().control_msgs_sent
    };
    assert!(
        coalesced < eager,
        "coalescing sent {coalesced} >= eager {eager}"
    );
    assert!(coalesced >= 1);
}
