//! Property-based tests for the predicate DSL:
//!
//! 1. Pretty-print → parse round-trips every generated AST.
//! 2. The compiled VM and the AST interpreter agree on every valid
//!    predicate and random ACK table (differential testing).
//! 3. Predicate evaluation is monotonic in the ACK table: raising any
//!    cell never lowers the frontier (the property the control plane's
//!    correctness depends on).

use proptest::prelude::*;
use stabilizer_dsl::{
    compile, interp::eval_resolved, parse, resolve, AckTypeId, AckTypeRegistry, AckView, Expr,
    NodeId, Topology,
};

const NODES: u16 = 6;

fn topo() -> Topology {
    Topology::builder()
        .az("A", &["a1", "a2"])
        .az("B", &["b1", "b2", "b3"])
        .az("C", &["c1"])
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct Table(Vec<Vec<u64>>);

impl AckView for Table {
    fn ack(&self, node: NodeId, ty: AckTypeId) -> u64 {
        self.0[node.0 as usize][ty.0 as usize]
    }
}

fn arb_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec(proptest::collection::vec(0u64..1000, 3), NODES as usize)
        .prop_map(Table)
}

/// Generate a random set expression as a source-text fragment.
fn arb_set(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("$ALLWNODES".to_owned()),
        Just("$MYAZWNODES".to_owned()),
        Just("$MYWNODE".to_owned()),
        (1u64..=NODES as u64).prop_map(|n| format!("${n}")),
        prop_oneof![
            Just("a1"),
            Just("a2"),
            Just("b1"),
            Just("b2"),
            Just("b3"),
            Just("c1")
        ]
        .prop_map(|n| format!("$WNODE_{n}")),
        prop_oneof![Just("A"), Just("B"), Just("C")].prop_map(|n| format!("$AZ_{n}")),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = arb_set(depth - 1);
        prop_oneof![
            4 => leaf,
            1 => (inner.clone(), inner).prop_map(|(a, b)| format!("($ALLWNODES-({a}-{b}))")),
        ]
        .boxed()
    }
}

/// Generate a random predicate source string. Always reduces over
/// `$ALLWNODES` plus extras so the operand list is never empty and ranks
/// up to 3 are always valid.
fn arb_pred(depth: u32) -> BoxedStrategy<String> {
    let op = prop_oneof![Just("MAX"), Just("MIN"), Just("KTH_MAX"), Just("KTH_MIN")];
    let suffix = prop_oneof![
        3 => Just(String::new()),
        1 => Just(".received".to_owned()),
        1 => Just(".persisted".to_owned()),
        1 => Just(".delivered".to_owned()),
    ];
    let base = (op, 1u32..=3, arb_set(1), suffix).prop_map(|(op, k, set, suf)| {
        let set_arg = if suf.is_empty() {
            set
        } else if set.starts_with('(') {
            format!("{set}{suf}")
        } else {
            format!("({set}){suf}")
        };
        match op {
            "MAX" | "MIN" => format!("{op}($ALLWNODES, {set_arg})"),
            _ => format!("{op}({k}, $ALLWNODES, {set_arg})"),
        }
    });
    if depth == 0 {
        base.boxed()
    } else {
        let inner = arb_pred(depth - 1);
        prop_oneof![
            2 => base,
            1 => (inner.clone(), inner).prop_map(|(a, b)| format!("MIN({a}, {b})")),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_print_roundtrips(src in arb_pred(2), me in 0u16..NODES) {
        let ast = parse(&src).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(&ast, &reparsed);
        // Syntactic equality is not enough: the printed form must also
        // resolve to the same program, so nothing the pretty-printer emits
        // (parentheses, macro spellings) shifts macro expansion.
        let topo = topo();
        let acks = AckTypeRegistry::new();
        match (
            resolve(&ast, &topo, &acks, NodeId(me)),
            resolve(&reparsed, &topo, &acks, NodeId(me)),
        ) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b, "round-trip changed resolution of {}", src);
                prop_assert_eq!(compile(&a), compile(&b));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "round-trip changed resolvability of {}: {:?} vs {:?}", src, a.is_ok(), b.is_ok()),
        }
    }

    #[test]
    fn vm_matches_interpreter(src in arb_pred(2), table in arb_table(), me in 0u16..NODES) {
        let topo = topo();
        let acks = AckTypeRegistry::new();
        let ast: Expr = parse(&src).unwrap();
        if let Ok(resolved) = resolve(&ast, &topo, &acks, NodeId(me)) {
            let program = compile(&resolved);
            prop_assert_eq!(program.eval(&table), eval_resolved(&resolved.expr, &table));
        }
    }

    #[test]
    fn evaluation_is_monotonic(
        src in arb_pred(2),
        table in arb_table(),
        bump_node in 0u16..NODES,
        bump_ty in 0u16..3,
        bump_by in 1u64..500,
    ) {
        let topo = topo();
        let acks = AckTypeRegistry::new();
        let ast: Expr = parse(&src).unwrap();
        if let Ok(resolved) = resolve(&ast, &topo, &acks, NodeId(0)) {
            let program = compile(&resolved);
            let before = program.eval(&table);
            let mut bumped = table.clone();
            bumped.0[bump_node as usize][bump_ty as usize] += bump_by;
            let after = program.eval(&bumped);
            prop_assert!(after >= before, "raising ({bump_node},{bump_ty}) lowered {before} -> {after} for {src}");
        }
    }

    #[test]
    fn optimizer_preserves_semantics(src in arb_pred(2), table in arb_table(), me in 0u16..NODES) {
        let topo = topo();
        let acks = AckTypeRegistry::new();
        if let (Ok(opt), Ok(unopt)) = (
            stabilizer_dsl::Predicate::compile(&src, &topo, &acks, NodeId(me)),
            stabilizer_dsl::Predicate::compile_unoptimized(&src, &topo, &acks, NodeId(me)),
        ) {
            prop_assert_eq!(opt.eval(&table), unopt.eval(&table), "optimizer diverged on {}", src);
            prop_assert!(
                opt.program().instrs().len() <= unopt.program().instrs().len(),
                "optimizer grew the program for {}", src
            );
        }
    }

    #[test]
    fn garbage_never_panics(src in "[ -~]{0,40}") {
        let _ = parse(&src); // must return Ok or Err, never panic
    }

    #[test]
    fn excluding_always_removes_dependencies(src in arb_pred(1), dead in 0u16..NODES) {
        let topo = topo();
        let acks = AckTypeRegistry::new();
        let ast: Expr = parse(&src).unwrap();
        if let Ok(resolved) = resolve(&ast, &topo, &acks, NodeId(0)) {
            if let Ok(rewritten) = stabilizer_dsl::exclude_node(&resolved, NodeId(dead)) {
                let program = compile(&rewritten);
                prop_assert!(program.dependencies().iter().all(|(n, _)| *n != NodeId(dead)));
            }
        }
    }
}
