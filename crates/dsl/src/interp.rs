//! Direct AST interpreter — the "no JIT" baseline.
//!
//! This performs the full resolve-and-evaluate work on every call, the way
//! a naive implementation without the paper's just-in-time compilation
//! would. It exists for two reasons: as an independent oracle for
//! differential testing against the compiled VM, and as the baseline in
//! the compiled-vs-interpreted ablation benchmark (§VI-A measures the JIT
//! overhead precisely because the alternative is paying this cost per
//! evaluation).

use crate::ast::Expr;
use crate::error::DslError;
use crate::resolve::{resolve, Operand, ReduceKind, ResolvedExpr};
use crate::topology::Topology;
use crate::types::{AckTypeRegistry, AckView, NodeId, SeqNo};

/// Evaluate a parsed predicate directly, resolving names on the fly.
///
/// # Errors
///
/// Returns the same errors as [`resolve`].
pub fn interpret<V: AckView>(
    expr: &Expr,
    topo: &Topology,
    acks: &AckTypeRegistry,
    me: NodeId,
    view: &V,
) -> Result<SeqNo, DslError> {
    let resolved = resolve(expr, topo, acks, me)?;
    Ok(eval_resolved(&resolved.expr, view))
}

/// Evaluate an already resolved expression tree recursively (used by the
/// interpreter and as a second oracle for the VM).
pub fn eval_resolved<V: AckView>(expr: &ResolvedExpr, view: &V) -> SeqNo {
    let mut vals: Vec<SeqNo> = Vec::with_capacity(expr.operands.len());
    for op in &expr.operands {
        vals.push(match op {
            Operand::Cell(node, ty) => view.ack(*node, *ty),
            Operand::Const(v) => *v,
            Operand::Nested(inner) => eval_resolved(inner, view),
        });
    }
    match expr.kind {
        ReduceKind::Largest => vals.sort_unstable_by(|a, b| b.cmp(a)),
        ReduceKind::Smallest => vals.sort_unstable(),
    }
    vals[(expr.k - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;
    use crate::types::AckTypeId;

    struct FlatAcks(Vec<u64>);
    impl AckView for FlatAcks {
        fn ack(&self, node: NodeId, ty: AckTypeId) -> u64 {
            self.0[node.0 as usize].saturating_sub(ty.0 as u64)
        }
    }

    fn topo() -> Topology {
        Topology::builder()
            .az("A", &["a1", "a2", "a3"])
            .az("B", &["b1", "b2"])
            .az("C", &["c1"])
            .build()
            .unwrap()
    }

    #[test]
    fn interpreter_matches_vm_on_representative_predicates() {
        let topo = topo();
        let acks = AckTypeRegistry::new();
        let view = FlatAcks(vec![14, 3, 27, 9, 31, 6]);
        let preds = [
            "MAX($ALLWNODES)",
            "MIN($ALLWNODES-$MYWNODE)",
            "KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)",
            "MIN(MAX($AZ_A), MAX($AZ_B), MAX($AZ_C))",
            "KTH_MAX(2, MAX($AZ_A), MAX($AZ_B), MAX($AZ_C))",
            "MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
            "MAX($ALLWNODES.persisted)",
        ];
        for src in preds {
            let ast = parse(src).unwrap();
            let interpreted = interpret(&ast, &topo, &acks, NodeId(0), &view).unwrap();
            let resolved = resolve(&ast, &topo, &acks, NodeId(0)).unwrap();
            let compiled = compile(&resolved).eval(&view);
            assert_eq!(interpreted, compiled, "mismatch for {src}");
        }
    }

    #[test]
    fn interpreter_reports_resolution_errors() {
        let topo = topo();
        let acks = AckTypeRegistry::new();
        let ast = parse("MAX($AZ_Nowhere)").unwrap();
        assert!(interpret(&ast, &topo, &acks, NodeId(0), &FlatAcks(vec![0; 6])).is_err());
    }
}
