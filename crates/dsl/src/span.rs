//! Byte-offset source spans.
//!
//! Every token the lexer produces, every node of the spanned AST, and
//! every lexical/syntax error carries a [`Span`] locating it in the
//! original predicate source. Spans are half-open byte ranges
//! (`start..end`), which makes them directly usable for slicing the
//! source and for rendering caret diagnostics.

use std::fmt;

/// A half-open byte range `start..end` into a predicate source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `at` (used for end-of-input diagnostics).
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of bytes covered (zero for a point span).
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::point(4).len(), 0);
        assert!(!Span::new(4, 6).is_empty());
        assert_eq!(Span::new(4, 6).len(), 2);
    }

    #[test]
    fn displays_as_range() {
        assert_eq!(Span::new(3, 8).to_string(), "3..8");
    }
}
