//! Hand-written lexer for the predicate DSL (the paper uses Flex; a
//! hand-rolled scanner keeps the crate dependency-free and the token set
//! is tiny).

use crate::error::DslError;
use crate::span::Span;
use crate::token::{Spanned, Token};

/// Tokenize `src` into a vector of spanned tokens, terminated by
/// [`Token::Eof`].
///
/// Comments of the form `/* ... */` are skipped (used by
/// [`Predicate::excluding`](crate::Predicate::excluding) to annotate
/// rewritten sources).
///
/// # Errors
///
/// Returns [`DslError::Lex`] on an unexpected character, an unterminated
/// comment, a malformed `$` operand, or an integer that overflows `u64`.
pub fn lex(src: &str) -> Result<Vec<Spanned>, DslError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(DslError::Lex {
                            span: Span::new(start, bytes.len()),
                            msg: "unterminated comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'(' | b')' | b',' | b'.' | b'+' | b'-' | b'*' | b'/' => {
                let tok = match c {
                    b'(' => Token::LParen,
                    b')' => Token::RParen,
                    b',' => Token::Comma,
                    b'.' => Token::Dot,
                    b'+' => Token::Plus,
                    b'-' => Token::Minus,
                    b'*' => Token::Star,
                    _ => Token::Slash,
                };
                out.push(Spanned {
                    span: Span::new(i, i + 1),
                    tok,
                });
                i += 1;
            }
            b'$' => {
                let start = i;
                i += 1;
                let word_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let span = Span::new(start, i);
                let word = &src[word_start..i];
                if word.is_empty() {
                    return Err(DslError::Lex {
                        span: Span::new(start, start + 1),
                        msg: "lone '$'".into(),
                    });
                }
                let tok = if word.bytes().all(|b| b.is_ascii_digit()) {
                    let n: u64 = word.parse().map_err(|_| DslError::Lex {
                        span,
                        msg: "node operand overflows".into(),
                    })?;
                    Token::NodeOperand(n)
                } else {
                    match word {
                        "ALLWNODES" => Token::AllWNodes,
                        "MYAZWNODES" => Token::MyAzWNodes,
                        // The paper writes both $MYWNODE and $MYWNODES.
                        "MYWNODE" | "MYWNODES" => Token::MyWNode,
                        _ => {
                            if let Some(name) = word.strip_prefix("WNODE_") {
                                Token::WNodeVar(name.to_owned())
                            } else if let Some(name) = word.strip_prefix("AZ_") {
                                Token::AzVar(name.to_owned())
                            } else {
                                return Err(DslError::Lex {
                                    span,
                                    msg: format!("unknown macro or variable ${word}"),
                                });
                            }
                        }
                    }
                };
                out.push(Spanned { span, tok });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let span = Span::new(start, i);
                let n: u64 = src[start..i].parse().map_err(|_| DslError::Lex {
                    span,
                    msg: "integer overflows".into(),
                })?;
                out.push(Spanned {
                    span,
                    tok: Token::Int(n),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "MAX" => Token::Max,
                    "MIN" => Token::Min,
                    "KTH_MAX" => Token::KthMax,
                    "KTH_MIN" => Token::KthMin,
                    "SIZEOF" => Token::Sizeof,
                    _ => Token::Ident(word.to_owned()),
                };
                out.push(Spanned {
                    span: Span::new(start, i),
                    tok,
                });
            }
            other => {
                return Err(DslError::Lex {
                    span: Span::new(i, i + 1),
                    msg: format!("unexpected character {:?}", other as char),
                });
            }
        }
    }
    out.push(Spanned {
        span: Span::point(src.len()),
        tok: Token::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_the_fig1_predicate() {
        assert_eq!(
            toks("MAX($ALLWNODES-$MYWNODE)"),
            vec![
                Token::Max,
                Token::LParen,
                Token::AllWNodes,
                Token::Minus,
                Token::MyWNode,
                Token::RParen,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_operands_and_variables() {
        assert_eq!(
            toks("$1, $WNODE_Foo, $AZ_North_Virginia"),
            vec![
                Token::NodeOperand(1),
                Token::Comma,
                Token::WNodeVar("Foo".into()),
                Token::Comma,
                Token::AzVar("North_Virginia".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_suffix_and_arith() {
        assert_eq!(
            toks("KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES.persisted)"),
            vec![
                Token::KthMin,
                Token::LParen,
                Token::Sizeof,
                Token::LParen,
                Token::AllWNodes,
                Token::RParen,
                Token::Slash,
                Token::Int(2),
                Token::Plus,
                Token::Int(1),
                Token::Comma,
                Token::AllWNodes,
                Token::Dot,
                Token::Ident("persisted".into()),
                Token::RParen,
                Token::Eof
            ]
        );
    }

    #[test]
    fn plural_mywnodes_is_accepted() {
        assert_eq!(toks("$MYWNODES"), vec![Token::MyWNode, Token::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("MAX($1) /* removed $2 */"), toks("MAX($1)"));
    }

    #[test]
    fn rejects_unknown_dollar_word() {
        assert!(matches!(lex("$NOPE"), Err(DslError::Lex { .. })));
        assert!(matches!(lex("$"), Err(DslError::Lex { .. })));
    }

    #[test]
    fn rejects_unexpected_character() {
        let Err(DslError::Lex { span, .. }) = lex("MAX(#)") else {
            panic!()
        };
        assert_eq!(span, Span::new(4, 5));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(matches!(lex("MAX($1) /* oops"), Err(DslError::Lex { .. })));
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        assert_eq!(toks("  MAX ( $1 ,\n\t$2 )  "), toks("MAX($1,$2)"));
    }

    #[test]
    fn token_spans_cover_their_source_text() {
        let src = "KTH_MAX(2, $ALLWNODES.persisted)";
        for s in lex(src).unwrap() {
            if s.tok == Token::Eof {
                assert_eq!(s.span, Span::point(src.len()));
            } else {
                assert!(s.span.end > s.span.start);
                assert!(s.span.end <= src.len());
            }
        }
        // Spot-check a multi-byte token: $ALLWNODES starts at byte 11.
        let toks = lex(src).unwrap();
        let all = toks
            .iter()
            .find(|s| s.tok == Token::AllWNodes)
            .expect("$ALLWNODES token");
        assert_eq!(&src[all.span.start..all.span.end], "$ALLWNODES");
    }
}
