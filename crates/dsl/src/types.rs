//! Fundamental identifier types shared by the DSL and the Stabilizer
//! control plane: WAN node ids, availability-zone ids, ACK-type ids, and
//! the [`AckView`] trait through which compiled predicates read the
//! control-plane ACK table.

use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// A message sequence number. Sequence numbers are per-origin-stream and
/// start at 1; `0` means "nothing acknowledged yet".
pub type SeqNo = u64;

/// Index of a WAN node (a data center) in the cluster topology.
///
/// The paper maps data-center names to indices when Stabilizer launches
/// (§III-C, "Operands"); `$3` in a predicate refers to `NodeId(2)` since
/// the paper's operands are 1-based while our indices are 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Index of an availability zone (a named group of WAN nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AzId(pub u16);

impl fmt::Display for AzId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "az{}", self.0)
    }
}

/// Identifier of an ACK ("stability") type.
///
/// The control plane tracks, per `(node, ack-type)`, the highest sequence
/// number acknowledged. `received` and `persisted` are built in; the
/// application can register further types (`verified`, `countersigned`,
/// ...) whose semantics Stabilizer treats as uninterpreted monotonic
/// counters (§III-C "Suffixes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AckTypeId(pub u16);

impl fmt::Display for AckTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ack{}", self.0)
    }
}

/// The built-in `received` stability level: the remote Stabilizer instance
/// has the message in its buffer.
pub const RECEIVED: AckTypeId = AckTypeId(0);
/// The built-in `persisted` stability level: the message has been written
/// to the remote storage layer.
pub const PERSISTED: AckTypeId = AckTypeId(1);
/// The built-in `delivered` stability level: the message has been handed
/// to the remote application via upcall.
pub const DELIVERED: AckTypeId = AckTypeId(2);

/// Registry interning ACK-type names to dense [`AckTypeId`]s.
///
/// Thread-safe: registration takes a write lock, lookups a read lock.
/// Lookups on the critical path should be done once at predicate compile
/// time; compiled programs carry resolved ids only.
#[derive(Debug)]
pub struct AckTypeRegistry {
    inner: RwLock<RegistryInner>,
}

#[derive(Debug)]
struct RegistryInner {
    names: Vec<String>,
    by_name: HashMap<String, AckTypeId>,
}

impl AckTypeRegistry {
    /// Create a registry pre-populated with the built-in types
    /// `received`, `persisted`, and `delivered`.
    pub fn new() -> Self {
        let reg = AckTypeRegistry {
            inner: RwLock::new(RegistryInner {
                names: Vec::new(),
                by_name: HashMap::new(),
            }),
        };
        assert_eq!(reg.register("received"), RECEIVED);
        assert_eq!(reg.register("persisted"), PERSISTED);
        assert_eq!(reg.register("delivered"), DELIVERED);
        reg
    }

    /// Register (or look up, if already present) an ACK-type name and
    /// return its id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` ACK types are registered.
    pub fn register(&self, name: &str) -> AckTypeId {
        let mut inner = self.inner.write().unwrap();
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let id = AckTypeId(u16::try_from(inner.names.len()).expect("too many ACK types"));
        inner.names.push(name.to_owned());
        inner.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up a previously registered name.
    pub fn lookup(&self, name: &str) -> Option<AckTypeId> {
        self.inner.read().unwrap().by_name.get(name).copied()
    }

    /// Name of a registered id, if valid.
    pub fn name(&self, id: AckTypeId) -> Option<String> {
        self.inner.read().unwrap().names.get(id.0 as usize).cloned()
    }

    /// Number of registered ACK types.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().names.len()
    }

    /// Whether no types are registered (never true: built-ins always exist).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for AckTypeRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for AckTypeRegistry {
    fn clone(&self) -> Self {
        let inner = self.inner.read().unwrap();
        AckTypeRegistry {
            inner: RwLock::new(RegistryInner {
                names: inner.names.clone(),
                by_name: inner.by_name.clone(),
            }),
        }
    }
}

/// Read access to the control-plane ACK table, as seen by a predicate.
///
/// `ack(node, ty)` returns the highest sequence number for which `node`
/// has reported stability level `ty`. Implementations must be monotonic
/// over time for frontier monotonicity to hold (the control plane's
/// recorder enforces this with a max-merge).
pub trait AckView {
    /// Highest sequence number acknowledged by `node` at level `ty`
    /// (0 if none).
    fn ack(&self, node: NodeId, ty: AckTypeId) -> SeqNo;
}

impl<T: AckView + ?Sized> AckView for &T {
    fn ack(&self, node: NodeId, ty: AckTypeId) -> SeqNo {
        (**self).ack(node, ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_have_stable_ids() {
        let reg = AckTypeRegistry::new();
        assert_eq!(reg.lookup("received"), Some(RECEIVED));
        assert_eq!(reg.lookup("persisted"), Some(PERSISTED));
        assert_eq!(reg.lookup("delivered"), Some(DELIVERED));
        assert_eq!(reg.name(RECEIVED).as_deref(), Some("received"));
    }

    #[test]
    fn register_is_idempotent() {
        let reg = AckTypeRegistry::new();
        let a = reg.register("verified");
        let b = reg.register("verified");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn clone_preserves_registrations() {
        let reg = AckTypeRegistry::new();
        let v = reg.register("verified");
        let reg2 = reg.clone();
        assert_eq!(reg2.lookup("verified"), Some(v));
    }

    #[test]
    fn lookup_missing_is_none() {
        let reg = AckTypeRegistry::new();
        assert_eq!(reg.lookup("countersigned"), None);
        assert_eq!(reg.name(AckTypeId(99)), None);
    }
}
