//! Recursive-descent parser for the predicate DSL (the paper uses Bison;
//! the grammar is small enough that a hand-written parser is clearer and
//! gives better error messages).
//!
//! Grammar (informal):
//!
//! ```text
//! predicate := call EOF
//! call      := OP '(' expr (',' expr)* ')'
//! expr      := term (('+'|'-') term)*         -- '-' is set difference when
//! term      := postfix (('*'|'/') postfix)*      both sides are sets
//! postfix   := primary ('.' IDENT)?           -- ACK-type suffix on sets
//! primary   := call | SIZEOF '(' expr ')' | INT | set-atom | '(' expr ')'
//! set-atom  := '$'N | $ALLWNODES | $MYAZWNODES | $MYWNODE | $WNODE_x | $AZ_x
//! ```

use crate::ast::{AckTypeName, BinOp, Expr, Op, SetExpr};
use crate::error::DslError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parse a predicate source string into an [`Expr`].
///
/// The top level must be a reduction call (`MAX(...)`, `MIN(...)`,
/// `KTH_MAX(...)`, `KTH_MIN(...)`), per the paper's predicate form
/// `p = O(x)`.
///
/// # Errors
///
/// Returns [`DslError::Lex`] or [`DslError::Parse`] describing the first
/// problem encountered, or [`DslError::Type`] when `-` mixes a set with a
/// number or a suffix is attached to a non-set.
pub fn parse(src: &str) -> Result<Expr, DslError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let expr = p.parse_call()?;
    p.expect(Token::Eof)?;
    Ok(expr)
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.at].tok
    }

    fn pos(&self) -> usize {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: Token) -> Result<(), DslError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(DslError::Parse {
                pos: self.pos(),
                msg: format!("expected {want}, found {}", self.peek()),
            })
        }
    }

    fn parse_call(&mut self) -> Result<Expr, DslError> {
        let op = match self.peek() {
            Token::Max => Op::Max,
            Token::Min => Op::Min,
            Token::KthMax => Op::KthMax,
            Token::KthMin => Op::KthMin,
            other => {
                return Err(DslError::Parse {
                    pos: self.pos(),
                    msg: format!("expected MAX, MIN, KTH_MAX or KTH_MIN, found {other}"),
                })
            }
        };
        self.bump();
        self.expect(Token::LParen)?;
        let mut args = vec![self.parse_expr()?];
        while *self.peek() == Token::Comma {
            self.bump();
            args.push(self.parse_expr()?);
        }
        self.expect(Token::RParen)?;
        Ok(Expr::Call(op, args))
    }

    fn parse_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.parse_term()?;
            lhs = combine(lhs, op, rhs, pos)?;
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_postfix()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.parse_postfix()?;
            lhs = combine(lhs, op, rhs, pos)?;
        }
        Ok(lhs)
    }

    fn parse_postfix(&mut self) -> Result<Expr, DslError> {
        let e = self.parse_primary()?;
        if *self.peek() == Token::Dot {
            let pos = self.pos();
            self.bump();
            let name = match self.bump() {
                Token::Ident(name) => name,
                other => {
                    return Err(DslError::Parse {
                        pos,
                        msg: format!("expected ACK-type name after '.', found {other}"),
                    })
                }
            };
            return match e {
                Expr::Values(set, None) => Ok(Expr::Values(set, Some(AckTypeName(name)))),
                Expr::Values(_, Some(prev)) => Err(DslError::Type(format!(
                    "operand already has suffix .{prev}; cannot add .{name}"
                ))),
                _ => Err(DslError::Type(format!(
                    "suffix .{name} can only be applied to a WAN-node set"
                ))),
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, DslError> {
        match self.peek().clone() {
            Token::Max | Token::Min | Token::KthMax | Token::KthMin => self.parse_call(),
            Token::Sizeof => {
                self.bump();
                self.expect(Token::LParen)?;
                let inner = self.parse_expr()?;
                self.expect(Token::RParen)?;
                match inner {
                    Expr::Values(set, None) => Ok(Expr::Sizeof(set)),
                    Expr::Values(_, Some(suf)) => Err(DslError::Type(format!(
                        "SIZEOF takes a bare node set, not one suffixed with .{suf}"
                    ))),
                    _ => Err(DslError::Type("SIZEOF requires a WAN-node set".into())),
                }
            }
            Token::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Token::NodeOperand(n) => {
                self.bump();
                Ok(Expr::Values(SetExpr::Node(n), None))
            }
            Token::AllWNodes => {
                self.bump();
                Ok(Expr::Values(SetExpr::All, None))
            }
            Token::MyAzWNodes => {
                self.bump();
                Ok(Expr::Values(SetExpr::MyAz, None))
            }
            Token::MyWNode => {
                self.bump();
                Ok(Expr::Values(SetExpr::Me, None))
            }
            Token::WNodeVar(name) => {
                self.bump();
                Ok(Expr::Values(SetExpr::NodeVar(name), None))
            }
            Token::AzVar(name) => {
                self.bump();
                Ok(Expr::Values(SetExpr::AzVar(name), None))
            }
            Token::LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            other => Err(DslError::Parse {
                pos: self.pos(),
                msg: format!("expected an operand, found {other}"),
            }),
        }
    }
}

/// Combine two operands under a binary operator, giving `-` its
/// set-difference meaning when both sides are (unsuffixed) sets.
fn combine(lhs: Expr, op: BinOp, rhs: Expr, pos: usize) -> Result<Expr, DslError> {
    match (op, &lhs, &rhs) {
        (BinOp::Sub, Expr::Values(_, None), Expr::Values(_, None)) => {
            let (Expr::Values(a, None), Expr::Values(b, None)) = (lhs, rhs) else {
                unreachable!()
            };
            Ok(Expr::Values(SetExpr::Diff(Box::new(a), Box::new(b)), None))
        }
        _ => {
            if !lhs.is_scalar() || !rhs.is_scalar() {
                return Err(DslError::Parse {
                    pos,
                    msg: format!(
                        "operator '{op}' requires numeric operands (or '-' between two node sets)"
                    ),
                });
            }
            Ok(Expr::Arith(op, Box::new(lhs), Box::new(rhs)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_reduction() {
        let e = parse("MAX($1, $2, $3)").unwrap();
        let Expr::Call(Op::Max, args) = e else {
            panic!()
        };
        assert_eq!(args.len(), 3);
        assert_eq!(args[0], Expr::Values(SetExpr::Node(1), None));
    }

    #[test]
    fn parses_set_difference() {
        let e = parse("MIN($ALLWNODES-$MYWNODE)").unwrap();
        let Expr::Call(Op::Min, args) = e else {
            panic!()
        };
        assert_eq!(
            args[0],
            Expr::Values(
                SetExpr::Diff(Box::new(SetExpr::All), Box::new(SetExpr::Me)),
                None
            )
        );
    }

    #[test]
    fn parses_suffix_on_parenthesized_difference() {
        let e = parse("MIN(($MYAZWNODES-$MYWNODE).verified)").unwrap();
        let Expr::Call(Op::Min, args) = e else {
            panic!()
        };
        let Expr::Values(SetExpr::Diff(..), Some(AckTypeName(name))) = &args[0] else {
            panic!("got {:?}", args[0])
        };
        assert_eq!(name, "verified");
    }

    #[test]
    fn parses_quorum_write_predicate() {
        let e = parse("KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)").unwrap();
        let Expr::Call(Op::KthMin, args) = e else {
            panic!()
        };
        assert!(args[0].is_scalar());
        // (SIZEOF(all) / 2) + 1 — '*'/'/' bind tighter than '+'.
        let Expr::Arith(BinOp::Add, l, r) = &args[0] else {
            panic!("got {:?}", args[0])
        };
        assert_eq!(**r, Expr::Int(1));
        let Expr::Arith(BinOp::Div, sl, sr) = &**l else {
            panic!()
        };
        assert_eq!(**sl, Expr::Sizeof(SetExpr::All));
        assert_eq!(**sr, Expr::Int(2));
    }

    #[test]
    fn parses_nested_calls_from_table3() {
        let e =
            parse("KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))").unwrap();
        let Expr::Call(Op::KthMax, args) = e else {
            panic!()
        };
        assert_eq!(args.len(), 4);
        assert_eq!(args[0], Expr::Int(2));
        assert!(matches!(args[1], Expr::Call(Op::Max, _)));
    }

    #[test]
    fn parses_az_use_case_predicate() {
        // §IV-A: fully AZ-replicated AND at least one remote site.
        let e = parse("MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))").unwrap();
        assert!(matches!(e, Expr::Call(Op::Min, _)));
    }

    #[test]
    fn top_level_must_be_a_call() {
        assert!(matches!(parse("$1"), Err(DslError::Parse { .. })));
        assert!(matches!(parse("42"), Err(DslError::Parse { .. })));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(matches!(parse("MAX($1) $2"), Err(DslError::Parse { .. })));
    }

    #[test]
    fn mixing_set_and_number_under_minus_is_an_error() {
        assert!(parse("MAX($ALLWNODES - 1)").is_err());
        assert!(parse("MAX(1 - $ALLWNODES)").is_err());
    }

    #[test]
    fn suffix_on_number_is_an_error() {
        assert!(matches!(parse("MAX(3.received)"), Err(DslError::Type(_))));
    }

    #[test]
    fn double_suffix_is_an_error() {
        assert!(parse("MAX($1.received.persisted)").is_err());
    }

    #[test]
    fn sizeof_of_number_is_an_error() {
        assert!(matches!(parse("MAX(SIZEOF(3))"), Err(DslError::Type(_))));
        assert!(parse("MAX(SIZEOF($ALLWNODES.persisted))").is_err());
    }

    #[test]
    fn missing_paren_reported_with_position() {
        let Err(DslError::Parse { pos, .. }) = parse("MAX($1") else {
            panic!()
        };
        assert_eq!(pos, 6);
    }

    #[test]
    fn arithmetic_on_call_results_is_allowed() {
        // Generalization beyond the paper's examples: calls are scalars.
        let e = parse("KTH_MAX(MAX($1)+1, $ALLWNODES)").unwrap();
        assert!(matches!(e, Expr::Call(Op::KthMax, _)));
    }

    #[test]
    fn empty_argument_list_rejected() {
        assert!(parse("MAX()").is_err());
    }
}
