//! Recursive-descent parser for the predicate DSL (the paper uses Bison;
//! the grammar is small enough that a hand-written parser is clearer and
//! gives better error messages).
//!
//! Grammar (informal):
//!
//! ```text
//! predicate := call EOF
//! call      := OP '(' expr (',' expr)* ')'
//! expr      := term (('+'|'-') term)*         -- '-' is set difference when
//! term      := postfix (('*'|'/') postfix)*      both sides are sets
//! postfix   := primary ('.' IDENT)?           -- ACK-type suffix on sets
//! primary   := call | SIZEOF '(' expr ')' | INT | set-atom | '(' expr ')'
//! set-atom  := '$'N | $ALLWNODES | $MYAZWNODES | $MYWNODE | $WNODE_x | $AZ_x
//! ```
//!
//! The parser builds the span-carrying [`SpannedExpr`] tree; [`parse`]
//! strips spans for callers that only need the plain [`Expr`], while
//! [`parse_spanned`] hands the full tree to the static analyzer.

use crate::ast::{
    AckTypeName, BinOp, Expr, Op, SpannedAck, SpannedExpr, SpannedExprKind, SpannedSet,
    SpannedSetKind,
};
use crate::error::DslError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Spanned, Token};

/// Parse a predicate source string into an [`Expr`].
///
/// The top level must be a reduction call (`MAX(...)`, `MIN(...)`,
/// `KTH_MAX(...)`, `KTH_MIN(...)`), per the paper's predicate form
/// `p = O(x)`.
///
/// # Errors
///
/// Returns [`DslError::Lex`] or [`DslError::Parse`] describing the first
/// problem encountered, or [`DslError::Type`] when `-` mixes a set with a
/// number or a suffix is attached to a non-set.
pub fn parse(src: &str) -> Result<Expr, DslError> {
    Ok(parse_spanned(src)?.strip())
}

/// Like [`parse`], but keeping the byte-offset span of every AST node —
/// the input to span-aware tooling such as the `stabilizer-analyze` lint
/// engine.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_spanned(src: &str) -> Result<SpannedExpr, DslError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let expr = p.parse_call()?;
    p.expect(Token::Eof)?;
    Ok(expr)
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.at].tok
    }

    fn span(&self) -> Span {
        self.toks[self.at].span
    }

    fn bump(&mut self) -> (Token, Span) {
        let t = self.toks[self.at].tok.clone();
        let s = self.toks[self.at].span;
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        (t, s)
    }

    fn expect(&mut self, want: Token) -> Result<Span, DslError> {
        if *self.peek() == want {
            Ok(self.bump().1)
        } else {
            Err(DslError::Parse {
                span: self.span(),
                msg: format!("expected {want}, found {}", self.peek()),
            })
        }
    }

    fn parse_call(&mut self) -> Result<SpannedExpr, DslError> {
        let op = match self.peek() {
            Token::Max => Op::Max,
            Token::Min => Op::Min,
            Token::KthMax => Op::KthMax,
            Token::KthMin => Op::KthMin,
            other => {
                return Err(DslError::Parse {
                    span: self.span(),
                    msg: format!("expected MAX, MIN, KTH_MAX or KTH_MIN, found {other}"),
                })
            }
        };
        let (_, op_span) = self.bump();
        self.expect(Token::LParen)?;
        let mut args = vec![self.parse_expr()?];
        while *self.peek() == Token::Comma {
            self.bump();
            args.push(self.parse_expr()?);
        }
        let close = self.expect(Token::RParen)?;
        Ok(SpannedExpr {
            span: op_span.to(close),
            kind: SpannedExprKind::Call(op, op_span, args),
        })
    }

    fn parse_expr(&mut self) -> Result<SpannedExpr, DslError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            let op_span = self.span();
            self.bump();
            let rhs = self.parse_term()?;
            lhs = combine(lhs, op, rhs, op_span)?;
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<SpannedExpr, DslError> {
        let mut lhs = self.parse_postfix()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            let op_span = self.span();
            self.bump();
            let rhs = self.parse_postfix()?;
            lhs = combine(lhs, op, rhs, op_span)?;
        }
        Ok(lhs)
    }

    fn parse_postfix(&mut self) -> Result<SpannedExpr, DslError> {
        let e = self.parse_primary()?;
        if *self.peek() == Token::Dot {
            let (_, dot_span) = self.bump();
            let (name, name_span) = match self.bump() {
                (Token::Ident(name), s) => (name, s),
                (other, _) => {
                    return Err(DslError::Parse {
                        span: dot_span,
                        msg: format!("expected ACK-type name after '.', found {other}"),
                    })
                }
            };
            let suffix = SpannedAck {
                name: AckTypeName(name.clone()),
                span: dot_span.to(name_span),
            };
            return match e.kind {
                SpannedExprKind::Values(set, None) => Ok(SpannedExpr {
                    span: e.span.to(suffix.span),
                    kind: SpannedExprKind::Values(set, Some(suffix)),
                }),
                SpannedExprKind::Values(_, Some(prev)) => Err(DslError::Type(format!(
                    "operand already has suffix .{}; cannot add .{name}",
                    prev.name
                ))),
                _ => Err(DslError::Type(format!(
                    "suffix .{name} can only be applied to a WAN-node set"
                ))),
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<SpannedExpr, DslError> {
        match self.peek().clone() {
            Token::Max | Token::Min | Token::KthMax | Token::KthMin => self.parse_call(),
            Token::Sizeof => {
                let (_, kw_span) = self.bump();
                self.expect(Token::LParen)?;
                let inner = self.parse_expr()?;
                let close = self.expect(Token::RParen)?;
                match inner.kind {
                    SpannedExprKind::Values(set, None) => Ok(SpannedExpr {
                        span: kw_span.to(close),
                        kind: SpannedExprKind::Sizeof(set),
                    }),
                    SpannedExprKind::Values(_, Some(suf)) => Err(DslError::Type(format!(
                        "SIZEOF takes a bare node set, not one suffixed with .{}",
                        suf.name
                    ))),
                    _ => Err(DslError::Type("SIZEOF requires a WAN-node set".into())),
                }
            }
            Token::Int(n) => {
                let (_, span) = self.bump();
                Ok(SpannedExpr {
                    span,
                    kind: SpannedExprKind::Int(n),
                })
            }
            Token::NodeOperand(n) => Ok(self.set_atom(SpannedSetKind::Node(n))),
            Token::AllWNodes => Ok(self.set_atom(SpannedSetKind::All)),
            Token::MyAzWNodes => Ok(self.set_atom(SpannedSetKind::MyAz)),
            Token::MyWNode => Ok(self.set_atom(SpannedSetKind::Me)),
            Token::WNodeVar(name) => Ok(self.set_atom(SpannedSetKind::NodeVar(name))),
            Token::AzVar(name) => Ok(self.set_atom(SpannedSetKind::AzVar(name))),
            Token::LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            other => Err(DslError::Parse {
                span: self.span(),
                msg: format!("expected an operand, found {other}"),
            }),
        }
    }

    fn set_atom(&mut self, kind: SpannedSetKind) -> SpannedExpr {
        let (_, span) = self.bump();
        SpannedExpr {
            span,
            kind: SpannedExprKind::Values(SpannedSet { kind, span }, None),
        }
    }
}

/// Combine two operands under a binary operator, giving `-` its
/// set-difference meaning when both sides are (unsuffixed) sets.
fn combine(
    lhs: SpannedExpr,
    op: BinOp,
    rhs: SpannedExpr,
    op_span: Span,
) -> Result<SpannedExpr, DslError> {
    let span = lhs.span.to(rhs.span);
    match (op, &lhs.kind, &rhs.kind) {
        (BinOp::Sub, SpannedExprKind::Values(_, None), SpannedExprKind::Values(_, None)) => {
            let (SpannedExprKind::Values(a, None), SpannedExprKind::Values(b, None)) =
                (lhs.kind, rhs.kind)
            else {
                unreachable!()
            };
            Ok(SpannedExpr {
                span,
                kind: SpannedExprKind::Values(
                    SpannedSet {
                        span,
                        kind: SpannedSetKind::Diff(Box::new(a), Box::new(b)),
                    },
                    None,
                ),
            })
        }
        _ => {
            if !lhs.is_scalar() || !rhs.is_scalar() {
                return Err(DslError::Parse {
                    span: op_span,
                    msg: format!(
                        "operator '{op}' requires numeric operands (or '-' between two node sets)"
                    ),
                });
            }
            Ok(SpannedExpr {
                span,
                kind: SpannedExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SetExpr;

    #[test]
    fn parses_simple_reduction() {
        let e = parse("MAX($1, $2, $3)").unwrap();
        let Expr::Call(Op::Max, args) = e else {
            panic!()
        };
        assert_eq!(args.len(), 3);
        assert_eq!(args[0], Expr::Values(SetExpr::Node(1), None));
    }

    #[test]
    fn parses_set_difference() {
        let e = parse("MIN($ALLWNODES-$MYWNODE)").unwrap();
        let Expr::Call(Op::Min, args) = e else {
            panic!()
        };
        assert_eq!(
            args[0],
            Expr::Values(
                SetExpr::Diff(Box::new(SetExpr::All), Box::new(SetExpr::Me)),
                None
            )
        );
    }

    #[test]
    fn parses_suffix_on_parenthesized_difference() {
        let e = parse("MIN(($MYAZWNODES-$MYWNODE).verified)").unwrap();
        let Expr::Call(Op::Min, args) = e else {
            panic!()
        };
        let Expr::Values(SetExpr::Diff(..), Some(AckTypeName(name))) = &args[0] else {
            panic!("got {:?}", args[0])
        };
        assert_eq!(name, "verified");
    }

    #[test]
    fn parses_quorum_write_predicate() {
        let e = parse("KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)").unwrap();
        let Expr::Call(Op::KthMin, args) = e else {
            panic!()
        };
        assert!(args[0].is_scalar());
        // (SIZEOF(all) / 2) + 1 — '*'/'/' bind tighter than '+'.
        let Expr::Arith(BinOp::Add, l, r) = &args[0] else {
            panic!("got {:?}", args[0])
        };
        assert_eq!(**r, Expr::Int(1));
        let Expr::Arith(BinOp::Div, sl, sr) = &**l else {
            panic!()
        };
        assert_eq!(**sl, Expr::Sizeof(SetExpr::All));
        assert_eq!(**sr, Expr::Int(2));
    }

    #[test]
    fn parses_nested_calls_from_table3() {
        let e =
            parse("KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))").unwrap();
        let Expr::Call(Op::KthMax, args) = e else {
            panic!()
        };
        assert_eq!(args.len(), 4);
        assert_eq!(args[0], Expr::Int(2));
        assert!(matches!(args[1], Expr::Call(Op::Max, _)));
    }

    #[test]
    fn parses_az_use_case_predicate() {
        // §IV-A: fully AZ-replicated AND at least one remote site.
        let e = parse("MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))").unwrap();
        assert!(matches!(e, Expr::Call(Op::Min, _)));
    }

    #[test]
    fn top_level_must_be_a_call() {
        assert!(matches!(parse("$1"), Err(DslError::Parse { .. })));
        assert!(matches!(parse("42"), Err(DslError::Parse { .. })));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(matches!(parse("MAX($1) $2"), Err(DslError::Parse { .. })));
    }

    #[test]
    fn mixing_set_and_number_under_minus_is_an_error() {
        assert!(parse("MAX($ALLWNODES - 1)").is_err());
        assert!(parse("MAX(1 - $ALLWNODES)").is_err());
    }

    #[test]
    fn suffix_on_number_is_an_error() {
        assert!(matches!(parse("MAX(3.received)"), Err(DslError::Type(_))));
    }

    #[test]
    fn double_suffix_is_an_error() {
        assert!(parse("MAX($1.received.persisted)").is_err());
    }

    #[test]
    fn sizeof_of_number_is_an_error() {
        assert!(matches!(parse("MAX(SIZEOF(3))"), Err(DslError::Type(_))));
        assert!(parse("MAX(SIZEOF($ALLWNODES.persisted))").is_err());
    }

    #[test]
    fn missing_paren_reported_with_position() {
        let Err(DslError::Parse { span, .. }) = parse("MAX($1") else {
            panic!()
        };
        assert_eq!(span, Span::point(6));
    }

    #[test]
    fn arithmetic_on_call_results_is_allowed() {
        // Generalization beyond the paper's examples: calls are scalars.
        let e = parse("KTH_MAX(MAX($1)+1, $ALLWNODES)").unwrap();
        assert!(matches!(e, Expr::Call(Op::KthMax, _)));
    }

    #[test]
    fn empty_argument_list_rejected() {
        assert!(parse("MAX()").is_err());
    }

    #[test]
    fn spanned_tree_matches_source_slices() {
        let src = "KTH_MAX(2, MAX($AZ_Oregon), $ALLWNODES.persisted)";
        let e = parse_spanned(src).unwrap();
        // The whole predicate spans the whole source.
        assert_eq!(&src[e.span.start..e.span.end], src);
        let SpannedExprKind::Call(Op::KthMax, op_span, args) = &e.kind else {
            panic!()
        };
        assert_eq!(&src[op_span.start..op_span.end], "KTH_MAX");
        assert_eq!(&src[args[0].span.start..args[0].span.end], "2");
        assert_eq!(
            &src[args[1].span.start..args[1].span.end],
            "MAX($AZ_Oregon)"
        );
        assert_eq!(
            &src[args[2].span.start..args[2].span.end],
            "$ALLWNODES.persisted"
        );
        let SpannedExprKind::Values(set, Some(suffix)) = &args[2].kind else {
            panic!()
        };
        assert_eq!(&src[set.span.start..set.span.end], "$ALLWNODES");
        assert_eq!(&src[suffix.span.start..suffix.span.end], ".persisted");
    }

    #[test]
    fn set_difference_span_covers_both_operands() {
        let src = "MAX($ALLWNODES-$MYWNODE)";
        let e = parse_spanned(src).unwrap();
        let SpannedExprKind::Call(_, _, args) = &e.kind else {
            panic!()
        };
        assert_eq!(
            &src[args[0].span.start..args[0].span.end],
            "$ALLWNODES-$MYWNODE"
        );
    }

    #[test]
    fn strip_of_spanned_equals_plain_parse() {
        for src in [
            "MAX($ALLWNODES-$MYWNODE)",
            "KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES.persisted)",
            "MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
            "KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
        ] {
            assert_eq!(parse_spanned(src).unwrap().strip(), parse(src).unwrap());
        }
    }
}
