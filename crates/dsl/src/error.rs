//! Error type for every stage of the DSL pipeline.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// Errors produced while lexing, parsing, resolving, or transforming a
/// stability-frontier predicate, or while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// Lexical error: unexpected character or malformed token.
    Lex {
        /// Byte range of the offending source text.
        span: Span,
        /// What went wrong.
        msg: String,
    },
    /// Syntax error at the offending token.
    Parse {
        /// Byte range of the offending token.
        span: Span,
        /// What went wrong.
        msg: String,
    },
    /// Name-resolution error (unknown node, AZ, or ACK type).
    Resolve(String),
    /// Type error (e.g. set where a number is required).
    Type(String),
    /// Statically invalid predicate (empty reduction, rank out of range,
    /// division by zero in a constant expression).
    Invalid(String),
    /// Topology construction error.
    Topology(String),
}

impl DslError {
    /// The source span of the error, when one is known (lexical and
    /// syntax errors carry token spans; later pipeline stages do not).
    pub fn span(&self) -> Option<Span> {
        match self {
            DslError::Lex { span, .. } | DslError::Parse { span, .. } => Some(*span),
            _ => None,
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Lex { span, msg } => write!(f, "lexical error at byte {}: {msg}", span.start),
            DslError::Parse { span, msg } => {
                write!(f, "syntax error at byte {}: {msg}", span.start)
            }
            DslError::Resolve(msg) => write!(f, "resolution error: {msg}"),
            DslError::Type(msg) => write!(f, "type error: {msg}"),
            DslError::Invalid(msg) => write!(f, "invalid predicate: {msg}"),
            DslError::Topology(msg) => write!(f, "topology error: {msg}"),
        }
    }
}

impl Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = DslError::Parse {
            span: Span::new(7, 8),
            msg: "expected ','".into(),
        };
        assert_eq!(e.to_string(), "syntax error at byte 7: expected ','");
    }

    #[test]
    fn span_accessor_covers_positioned_variants() {
        let lex = DslError::Lex {
            span: Span::new(2, 5),
            msg: "x".into(),
        };
        assert_eq!(lex.span(), Some(Span::new(2, 5)));
        assert_eq!(DslError::Resolve("y".into()).span(), None);
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(DslError::Resolve("x".into()));
    }
}
