//! Error type for every stage of the DSL pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced while lexing, parsing, resolving, or transforming a
/// stability-frontier predicate, or while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// Lexical error: unexpected character or malformed token.
    Lex { pos: usize, msg: String },
    /// Syntax error with the byte position of the offending token.
    Parse { pos: usize, msg: String },
    /// Name-resolution error (unknown node, AZ, or ACK type).
    Resolve(String),
    /// Type error (e.g. set where a number is required).
    Type(String),
    /// Statically invalid predicate (empty reduction, rank out of range,
    /// division by zero in a constant expression).
    Invalid(String),
    /// Topology construction error.
    Topology(String),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Lex { pos, msg } => write!(f, "lexical error at byte {pos}: {msg}"),
            DslError::Parse { pos, msg } => write!(f, "syntax error at byte {pos}: {msg}"),
            DslError::Resolve(msg) => write!(f, "resolution error: {msg}"),
            DslError::Type(msg) => write!(f, "type error: {msg}"),
            DslError::Invalid(msg) => write!(f, "invalid predicate: {msg}"),
            DslError::Topology(msg) => write!(f, "topology error: {msg}"),
        }
    }
}

impl Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = DslError::Parse {
            pos: 7,
            msg: "expected ','".into(),
        };
        assert_eq!(e.to_string(), "syntax error at byte 7: expected ','");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(DslError::Resolve("x".into()));
    }
}
