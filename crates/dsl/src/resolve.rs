//! Name resolution and static lowering.
//!
//! Resolution happens once, at predicate registration time, against the
//! deployment [`Topology`] and the [`AckTypeRegistry`]: macros and
//! variables expand to concrete node sets, set differences are evaluated,
//! `SIZEOF` arithmetic is constant-folded, and `MAX`/`MIN` are normalized
//! to rank-1 `KTH_*` reductions. The output ([`Resolved`]) is fully
//! static: evaluating it touches only the ACK table.

use crate::ast::{BinOp, Expr, Op, SetExpr};
use crate::error::DslError;
use crate::topology::Topology;
use crate::types::{AckTypeId, AckTypeRegistry, NodeId, RECEIVED};

/// Whether a normalized reduction selects from the top (`KTH_MAX`) or the
/// bottom (`KTH_MIN`) of its operand values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// k-th largest (`MAX` is rank 1).
    Largest,
    /// k-th smallest (`MIN` is rank 1).
    Smallest,
}

/// A single operand of a resolved reduction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the ACK table at `(node, ty)`.
    Cell(NodeId, AckTypeId),
    /// A constant value (from a folded scalar expression used as data).
    Const(u64),
    /// A nested reduction.
    Nested(ResolvedExpr),
}

/// A resolved, normalized reduction: select the `k`-th value (1-based)
/// from `operands`, ordered per `kind`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResolvedExpr {
    /// Top-k or bottom-k selection.
    pub kind: ReduceKind,
    /// 1-based rank; `1` for plain `MAX`/`MIN`.
    pub k: u32,
    /// The flattened operand list (non-empty; `k <= operands.len()`).
    pub operands: Vec<Operand>,
}

/// A resolved predicate: the lowered expression plus the node it was
/// resolved for (macros like `$MYWNODE` bake in the executing node).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Resolved {
    /// The lowered reduction tree.
    pub expr: ResolvedExpr,
    /// The node this predicate was resolved at.
    pub me: NodeId,
}

/// Resolve a parsed predicate for execution at node `me`.
///
/// # Errors
///
/// * [`DslError::Resolve`] — unknown node/AZ name, node operand out of
///   range, or unknown ACK type.
/// * [`DslError::Invalid`] — empty reduction after expansion, `KTH_*` rank
///   that is not a compile-time constant or is out of `1..=len` range,
///   constant arithmetic overflow or division by zero, `KTH_*` with no
///   data operands.
pub fn resolve(
    expr: &Expr,
    topo: &Topology,
    acks: &AckTypeRegistry,
    me: NodeId,
) -> Result<Resolved, DslError> {
    if me.0 as usize >= topo.num_nodes() {
        return Err(DslError::Resolve(format!(
            "executing node {me} is outside the {}-node topology",
            topo.num_nodes()
        )));
    }
    let cx = Cx { topo, acks, me };
    let expr = cx.resolve_call(expr)?;
    Ok(Resolved { expr, me })
}

struct Cx<'a> {
    topo: &'a Topology,
    acks: &'a AckTypeRegistry,
    me: NodeId,
}

impl Cx<'_> {
    fn resolve_call(&self, expr: &Expr) -> Result<ResolvedExpr, DslError> {
        let Expr::Call(op, args) = expr else {
            return Err(DslError::Invalid(
                "a predicate must be a MAX/MIN/KTH_MAX/KTH_MIN call".into(),
            ));
        };
        let (kind, k, data_args) = match op {
            Op::Max => (ReduceKind::Largest, 1u32, &args[..]),
            Op::Min => (ReduceKind::Smallest, 1u32, &args[..]),
            Op::KthMax | Op::KthMin => {
                let kind = if *op == Op::KthMax {
                    ReduceKind::Largest
                } else {
                    ReduceKind::Smallest
                };
                let Some((kexpr, rest)) = args.split_first() else {
                    return Err(DslError::Invalid(format!("{op} requires a rank argument")));
                };
                let k = self.const_eval(kexpr)?;
                let k = u32::try_from(k)
                    .map_err(|_| DslError::Invalid(format!("{op} rank {k} is too large")))?;
                (kind, k, rest)
            }
        };
        let mut operands = Vec::new();
        for arg in data_args {
            self.resolve_operand(arg, &mut operands)?;
        }
        if operands.is_empty() {
            return Err(DslError::Invalid(format!(
                "{op} reduces over an empty operand list (set expansion produced no nodes)"
            )));
        }
        if k == 0 || k as usize > operands.len() {
            return Err(DslError::Invalid(format!(
                "{op} rank {k} out of range 1..={}",
                operands.len()
            )));
        }
        Ok(ResolvedExpr { kind, k, operands })
    }

    fn resolve_operand(&self, arg: &Expr, out: &mut Vec<Operand>) -> Result<(), DslError> {
        match arg {
            Expr::Call(..) => {
                out.push(Operand::Nested(self.resolve_call(arg)?));
                Ok(())
            }
            Expr::Values(set, suffix) => {
                let ty = match suffix {
                    None => RECEIVED,
                    Some(name) => self.acks.lookup(&name.0).ok_or_else(|| {
                        DslError::Resolve(format!("unknown ACK type .{}", name.0))
                    })?,
                };
                for node in self.eval_set(set)? {
                    out.push(Operand::Cell(node, ty));
                }
                Ok(())
            }
            Expr::Int(_) | Expr::Sizeof(_) | Expr::Arith(..) => {
                out.push(Operand::Const(self.const_eval(arg)?));
                Ok(())
            }
        }
    }

    /// Evaluate a scalar expression to a compile-time constant.
    fn const_eval(&self, expr: &Expr) -> Result<u64, DslError> {
        match expr {
            Expr::Int(n) => Ok(*n),
            Expr::Sizeof(set) => Ok(self.eval_set(set)?.len() as u64),
            Expr::Arith(op, l, r) => {
                let a = self.const_eval(l)?;
                let b = self.const_eval(r)?;
                let v = match op {
                    BinOp::Add => a.checked_add(b),
                    BinOp::Sub => a.checked_sub(b),
                    BinOp::Mul => a.checked_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(DslError::Invalid(
                                "division by zero in rank expression".into(),
                            ));
                        }
                        Some(a / b)
                    }
                };
                v.ok_or_else(|| {
                    DslError::Invalid(format!("constant arithmetic overflow: {a} {op} {b}"))
                })
            }
            Expr::Call(op, _) => Err(DslError::Invalid(format!(
                "KTH rank must be a compile-time constant; {op}(...) is evaluated at run time"
            ))),
            Expr::Values(..) => Err(DslError::Type(
                "a node set cannot be used where a number is required".into(),
            )),
        }
    }

    /// Expand a set expression to a sorted, deduplicated node list.
    fn eval_set(&self, set: &SetExpr) -> Result<Vec<NodeId>, DslError> {
        expand_set(set, self.topo, self.me)
    }
}

/// Expand a set expression to the sorted, deduplicated list of nodes it
/// denotes when evaluated at node `me` under `topo`.
///
/// This is the same expansion the resolver performs internally; it is
/// public so that tooling (notably the `stabilizer-analyze` lint engine)
/// can reason about individual sub-sets — e.g. to flag a set-difference
/// that removes nothing, or a sub-set that expands to no nodes inside an
/// otherwise non-empty reduction.
///
/// # Errors
///
/// Returns [`DslError::Resolve`] for an unknown node/AZ name or a node
/// operand outside `1..=num_nodes`.
pub fn expand_set(set: &SetExpr, topo: &Topology, me: NodeId) -> Result<Vec<NodeId>, DslError> {
    let mut nodes = match set {
        SetExpr::All => topo.all_nodes(),
        SetExpr::MyAz => topo.az_members(topo.az_of(me)).to_vec(),
        SetExpr::Me => vec![me],
        SetExpr::Node(n) => {
            // Paper operands are 1-based ($1 is the first node).
            if *n == 0 || *n as usize > topo.num_nodes() {
                return Err(DslError::Resolve(format!(
                    "node operand ${n} out of range 1..={}",
                    topo.num_nodes()
                )));
            }
            vec![NodeId((n - 1) as u16)]
        }
        SetExpr::NodeVar(name) => {
            let id = topo
                .node(name)
                .ok_or_else(|| DslError::Resolve(format!("unknown WAN node $WNODE_{name}")))?;
            vec![id]
        }
        SetExpr::AzVar(name) => {
            let az = topo.az(name).ok_or_else(|| {
                DslError::Resolve(format!("unknown availability zone $AZ_{name}"))
            })?;
            topo.az_members(az).to_vec()
        }
        SetExpr::Diff(a, b) => {
            let left = expand_set(a, topo, me)?;
            let right = expand_set(b, topo, me)?;
            left.into_iter().filter(|n| !right.contains(n)).collect()
        }
    };
    nodes.sort_unstable();
    nodes.dedup();
    Ok(nodes)
}

impl ResolvedExpr {
    /// Collect every `(node, ack-type)` cell this expression reads, in
    /// first-use order, deduplicated.
    pub fn dependencies(&self) -> Vec<(NodeId, AckTypeId)> {
        let mut out = Vec::new();
        self.collect_deps(&mut out);
        out
    }

    fn collect_deps(&self, out: &mut Vec<(NodeId, AckTypeId)>) {
        for op in &self.operands {
            match op {
                Operand::Cell(n, t) => {
                    if !out.contains(&(*n, *t)) {
                        out.push((*n, *t));
                    }
                }
                Operand::Nested(inner) => inner.collect_deps(out),
                Operand::Const(_) => {}
            }
        }
    }

    /// The monotone-threshold view of this reduction: how many of its
    /// operands must reach a value `v` for the reduction itself to reach
    /// `v`. The `k`-th largest is ≥ `v` iff at least `k` operands are;
    /// the `k`-th smallest iff at least `len − k + 1` are. Availability
    /// analysis builds on this: an operand's value under a crash probe
    /// is binary (high or low), so the whole tree is a composition of
    /// threshold functions over node-up sets.
    pub fn up_requirement(&self) -> usize {
        match self.kind {
            ReduceKind::Largest => self.k as usize,
            ReduceKind::Smallest => self.operands.len() - self.k as usize + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::types::PERSISTED;

    fn topo() -> Topology {
        Topology::builder()
            .az("North_California", &["n1", "n2"])
            .az("North_Virginia", &["n3", "n4", "n5", "n6"])
            .az("Oregon", &["n7"])
            .az("Ohio", &["n8"])
            .build()
            .unwrap()
    }

    fn res(src: &str, me: u16) -> Result<Resolved, DslError> {
        let acks = AckTypeRegistry::new();
        resolve(&parse(src).unwrap(), &topo(), &acks, NodeId(me))
    }

    fn cells(r: &Resolved) -> Vec<u16> {
        r.expr
            .operands
            .iter()
            .filter_map(|o| match o {
                Operand::Cell(n, _) => Some(n.0),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn allwnodes_minus_me_expands_to_remotes() {
        let r = res("MAX($ALLWNODES-$MYWNODE)", 0).unwrap();
        assert_eq!(cells(&r), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(r.expr.kind, ReduceKind::Largest);
        assert_eq!(r.expr.k, 1);
    }

    #[test]
    fn myaz_depends_on_executing_node() {
        let a = res("MIN($MYAZWNODES)", 0).unwrap();
        assert_eq!(cells(&a), vec![0, 1]);
        let b = res("MIN($MYAZWNODES)", 3).unwrap();
        assert_eq!(cells(&b), vec![2, 3, 4, 5]);
    }

    #[test]
    fn sizeof_arithmetic_folds_to_constant_rank() {
        // 8 nodes -> majority = 5.
        let r = res("KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)", 0).unwrap();
        assert_eq!(r.expr.k, 5);
        assert_eq!(r.expr.operands.len(), 8);
    }

    #[test]
    fn one_based_operands() {
        let r = res("MAX($1, $8)", 0).unwrap();
        assert_eq!(cells(&r), vec![0, 7]);
        assert!(matches!(res("MAX($0)", 0), Err(DslError::Resolve(_))));
        assert!(matches!(res("MAX($9)", 0), Err(DslError::Resolve(_))));
    }

    #[test]
    fn variables_resolve_by_name() {
        let r = res("MAX($WNODE_n7, $AZ_Ohio)", 0).unwrap();
        assert_eq!(cells(&r), vec![6, 7]);
        assert!(matches!(
            res("MAX($WNODE_nope)", 0),
            Err(DslError::Resolve(_))
        ));
        assert!(matches!(res("MAX($AZ_Mars)", 0), Err(DslError::Resolve(_))));
    }

    #[test]
    fn suffix_resolves_ack_type() {
        let r = res("MIN($ALLWNODES.persisted)", 0).unwrap();
        assert!(r
            .expr
            .operands
            .iter()
            .all(|o| matches!(o, Operand::Cell(_, t) if *t == PERSISTED)));
        assert!(matches!(
            res("MIN($ALLWNODES.verified)", 0),
            Err(DslError::Resolve(_))
        ));
    }

    #[test]
    fn custom_ack_types_resolve_after_registration() {
        let acks = AckTypeRegistry::new();
        let v = acks.register("verified");
        let r = resolve(
            &parse("MIN(($MYAZWNODES-$MYWNODE).verified)").unwrap(),
            &topo(),
            &acks,
            NodeId(2),
        )
        .unwrap();
        assert_eq!(r.expr.operands.len(), 3); // n4, n5, n6
        assert!(matches!(r.expr.operands[0], Operand::Cell(_, t) if t == v));
    }

    #[test]
    fn empty_expansion_is_invalid() {
        // Node 6 (n7) is alone in Oregon: $MYAZWNODES-$MYWNODE is empty.
        assert!(matches!(
            res("MIN($MYAZWNODES-$MYWNODE)", 6),
            Err(DslError::Invalid(_))
        ));
    }

    #[test]
    fn rank_out_of_range_is_invalid() {
        assert!(matches!(
            res("KTH_MAX(9, $ALLWNODES)", 0),
            Err(DslError::Invalid(_))
        ));
        assert!(matches!(
            res("KTH_MAX(0, $ALLWNODES)", 0),
            Err(DslError::Invalid(_))
        ));
        assert!(res("KTH_MAX(8, $ALLWNODES)", 0).is_ok());
    }

    #[test]
    fn non_constant_rank_is_invalid() {
        assert!(matches!(
            res("KTH_MAX(MAX($1)+1, $ALLWNODES)", 0),
            Err(DslError::Invalid(_))
        ));
    }

    #[test]
    fn division_by_zero_in_rank_is_invalid() {
        assert!(matches!(
            res("KTH_MAX(SIZEOF($ALLWNODES)/0, $ALLWNODES)", 0),
            Err(DslError::Invalid(_))
        ));
    }

    #[test]
    fn nested_calls_resolve_recursively() {
        let r = res(
            "MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            0,
        )
        .unwrap();
        assert_eq!(r.expr.operands.len(), 3);
        assert!(r
            .expr
            .operands
            .iter()
            .all(|o| matches!(o, Operand::Nested(_))));
    }

    #[test]
    fn dependencies_are_deduplicated() {
        let r = res("MAX($1, $1, MIN($1, $2))", 0).unwrap();
        assert_eq!(
            r.expr.dependencies(),
            vec![(NodeId(0), RECEIVED), (NodeId(1), RECEIVED)]
        );
    }

    #[test]
    fn duplicate_nodes_in_set_union_are_deduplicated() {
        // $ALLWNODES - ($MYAZWNODES - $MYAZWNODES) = all nodes.
        let r = res("MAX($ALLWNODES-($MYAZWNODES-$MYAZWNODES))", 0).unwrap();
        assert_eq!(cells(&r).len(), 8);
    }

    #[test]
    fn executing_node_must_be_in_topology() {
        assert!(matches!(res("MAX($1)", 99), Err(DslError::Resolve(_))));
    }
}
