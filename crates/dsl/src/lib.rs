//! # Stabilizer predicate DSL
//!
//! This crate implements the stability-frontier predicate language from
//! *Stabilizer: Geo-Replication with User-defined Consistency* (ICDCS 2022),
//! §III-C. A predicate is a variadic expression over the per-WAN-node
//! acknowledged sequence numbers recorded by the control plane:
//!
//! ```text
//! p = O(x)        O ∈ { MAX, MIN, KTH_MAX, KTH_MIN }
//! ```
//!
//! where the parameter list `x` contains node operands (`$3`), macros
//! (`$ALLWNODES`, `$MYAZWNODES`, `$MYWNODE`), variables (`$WNODE_Foo`,
//! `$AZ_Wisc`), set differences (`$ALLWNODES-$MYWNODE`), ACK-type suffixes
//! (`.received`, `.persisted`, or user-defined), `SIZEOF(...)` arithmetic,
//! and nested predicates.
//!
//! The paper compiles predicates with Flex/Bison + libgccjit. Here the
//! pipeline is: [`parse`] → [`resolve`](resolve::resolve) against a
//! [`Topology`] (macro/variable expansion, set evaluation, constant
//! folding) → [`compile`](compile::compile) into a flat, allocation-free
//! bytecode [`Program`] evaluated by a small stack VM. An AST
//! [`interpreter`](interp) is retained as the un-JIT-ed baseline for the
//! ablation benchmark.
//!
//! ## Example
//!
//! ```
//! use stabilizer_dsl::{parse, Topology, AckTypeRegistry, Predicate, AckView, NodeId};
//!
//! # fn main() -> Result<(), stabilizer_dsl::DslError> {
//! // Two availability zones with two nodes each.
//! let topo = Topology::builder()
//!     .az("East", &["e1", "e2"])
//!     .az("West", &["w1", "w2"])
//!     .build()?;
//! let acks = AckTypeRegistry::new();
//!
//! // "Stable once every node other than me has received it."
//! let pred = Predicate::compile("MIN($ALLWNODES-$MYWNODE)", &topo, &acks, topo.node("e1").unwrap())?;
//!
//! // A toy ack table: node i has acknowledged sequence number 10*i.
//! struct Table;
//! impl AckView for Table {
//!     fn ack(&self, node: NodeId, _ty: stabilizer_dsl::AckTypeId) -> u64 { 10 * node.0 as u64 }
//! }
//! assert_eq!(pred.eval(&Table), 10); // min over nodes 1,2,3
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod span;
pub mod token;
pub mod topology;
pub mod transform;
pub mod types;
pub mod vm;

pub use ast::{
    AckTypeName, BinOp, Expr, Op, SetExpr, SpannedAck, SpannedExpr, SpannedExprKind, SpannedSet,
    SpannedSetKind,
};
pub use compile::{compile, Program};
pub use error::DslError;
pub use interp::{eval_resolved, interpret};
pub use optimize::optimize;
pub use parser::{parse, parse_spanned};
pub use resolve::{expand_set, resolve, Operand, ReduceKind, Resolved, ResolvedExpr};
pub use span::Span;
pub use topology::{Topology, TopologyBuilder};
pub use transform::{exclude_node, restrict_nodes};
pub use types::{
    AckTypeId, AckTypeRegistry, AckView, AzId, NodeId, SeqNo, DELIVERED, PERSISTED, RECEIVED,
};
pub use vm::EvalScratch;

use std::fmt;

/// A fully compiled stability-frontier predicate, ready for repeated
/// low-overhead evaluation on the control-plane critical path.
///
/// This bundles the original source text, the resolved expression (used by
/// fault handling to rewrite the predicate when a node is excluded), and
/// the compiled bytecode program.
#[derive(Debug, Clone)]
pub struct Predicate {
    source: String,
    resolved: Resolved,
    program: Program,
}

impl Predicate {
    /// Parse, resolve, and compile `source` for execution at node `me`.
    ///
    /// # Errors
    ///
    /// Returns a [`DslError`] for lexical/syntax errors, unknown node or
    /// availability-zone names, unknown ACK types, type errors (e.g.
    /// subtracting a set from a number), or statically invalid predicates
    /// (empty reductions, `KTH_*` rank out of range).
    pub fn compile(
        source: &str,
        topo: &Topology,
        acks: &AckTypeRegistry,
        me: NodeId,
    ) -> Result<Self, DslError> {
        let ast = parse(source)?;
        let resolved = optimize::optimize(&resolve(&ast, topo, acks, me)?);
        let program = compile(&resolved);
        Ok(Predicate {
            source: source.to_owned(),
            resolved,
            program,
        })
    }

    /// Like [`Predicate::compile`] but skipping the optimizer — used by
    /// the optimizer-equivalence property tests and the compile-cost
    /// ablation.
    ///
    /// # Errors
    ///
    /// Same as [`Predicate::compile`].
    pub fn compile_unoptimized(
        source: &str,
        topo: &Topology,
        acks: &AckTypeRegistry,
        me: NodeId,
    ) -> Result<Self, DslError> {
        let ast = parse(source)?;
        let resolved = resolve(&ast, topo, acks, me)?;
        let program = compile(&resolved);
        Ok(Predicate {
            source: source.to_owned(),
            resolved,
            program,
        })
    }

    /// Evaluate the predicate against an ACK table, returning the stability
    /// frontier: the highest sequence number for which the user-defined
    /// stability property holds (and, by monotonicity, for all prior ones).
    pub fn eval<V: AckView>(&self, view: &V) -> SeqNo {
        self.program.eval(view)
    }

    /// Evaluate using a caller-provided scratch buffer, avoiding all
    /// allocation. Useful when evaluating at high rates.
    pub fn eval_with<V: AckView>(&self, view: &V, scratch: &mut EvalScratch) -> SeqNo {
        self.program.eval_with(view, scratch)
    }

    /// The original DSL source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The resolved (macro-expanded, constant-folded) form.
    pub fn resolved(&self) -> &Resolved {
        &self.resolved
    }

    /// The compiled bytecode program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The set of `(node, ack-type)` cells this predicate reads. The
    /// control plane uses this to re-evaluate only the predicates affected
    /// by an incoming ACK.
    pub fn dependencies(&self) -> &[(NodeId, AckTypeId)] {
        self.program.dependencies()
    }

    /// Rewrite this predicate so it no longer observes `node` (used when a
    /// secondary crashes, §III-E). `KTH_*` ranks are clamped to the shrunk
    /// set sizes.
    ///
    /// # Errors
    ///
    /// Fails if removing the node would leave a reduction with no operands.
    pub fn excluding(&self, node: NodeId) -> Result<Self, DslError> {
        let resolved = exclude_node(&self.resolved, node)?;
        let program = compile(&resolved);
        Ok(Predicate {
            source: format!("{} /* -{} */", self.source, node.0),
            resolved,
            program,
        })
    }

    /// Rewrite this predicate so it reads ACKs only from `allowed` — the
    /// partial-replication restriction: a predicate installed for a stream
    /// placed on a replica set must not wait on non-replicas, which never
    /// ack the stream. No-op (returns a clone) when nothing is removed.
    ///
    /// # Errors
    ///
    /// Fails if the restriction would leave a reduction with no operands
    /// (the predicate reads only non-replicas).
    pub fn restricted_to(&self, allowed: &[NodeId]) -> Result<Self, DslError> {
        if self.dependencies().iter().all(|(n, _)| allowed.contains(n)) {
            return Ok(self.clone());
        }
        let resolved = restrict_nodes(&self.resolved, allowed)?;
        let program = compile(&resolved);
        Ok(Predicate {
            source: self.source.clone(),
            resolved,
            program,
        })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlatAcks(Vec<u64>);
    impl AckView for FlatAcks {
        fn ack(&self, node: NodeId, _ty: AckTypeId) -> u64 {
            self.0[node.0 as usize]
        }
    }

    fn topo8() -> Topology {
        // The paper's Fig. 2 topology: 4 regions, 8 nodes.
        Topology::builder()
            .az("North_California", &["n1", "n2"])
            .az("North_Virginia", &["n3", "n4", "n5", "n6"])
            .az("Oregon", &["n7"])
            .az("Ohio", &["n8"])
            .build()
            .unwrap()
    }

    #[test]
    fn fig1_example_max_of_remotes() {
        let topo = topo8();
        let acks = AckTypeRegistry::new();
        let p = Predicate::compile("MAX($ALLWNODES-$MYWNODE)", &topo, &acks, NodeId(0)).unwrap();
        // Fig. 1 ack table: [33, 25, 19, 21, 23, 28] for 6 nodes; pad to 8.
        let v = FlatAcks(vec![33, 25, 19, 21, 23, 28, 0, 0]);
        assert_eq!(p.eval(&v), 28);
    }

    #[test]
    fn majority_regions_predicate_from_table3() {
        let topo = topo8();
        let acks = AckTypeRegistry::new();
        let p = Predicate::compile(
            "KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            &topo,
            &acks,
            NodeId(0),
        )
        .unwrap();
        // Regions: NV max = 7, OR = 3, OH = 9 -> 2nd largest = 7.
        let v = FlatAcks(vec![0, 0, 5, 7, 2, 1, 3, 9]);
        assert_eq!(p.eval(&v), 7);
    }

    #[test]
    fn excluding_a_node_rewrites_sets() {
        let topo = topo8();
        let acks = AckTypeRegistry::new();
        let p = Predicate::compile("MIN($ALLWNODES-$MYWNODE)", &topo, &acks, NodeId(0)).unwrap();
        let v = FlatAcks(vec![100, 9, 8, 7, 6, 5, 4, 3]);
        assert_eq!(p.eval(&v), 3);
        let p2 = p.excluding(NodeId(7)).unwrap();
        assert_eq!(p2.eval(&v), 4);
        assert!(p2.dependencies().iter().all(|(n, _)| *n != NodeId(7)));
    }
}
