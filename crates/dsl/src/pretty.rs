//! Pretty-printer: renders ASTs back to DSL source. `parse(print(ast))`
//! round-trips (verified by property tests in `tests/proptest_dsl.rs`).

use crate::ast::{BinOp, Expr, SetExpr};
use crate::resolve::{Operand, ReduceKind, ResolvedExpr};
use std::fmt;

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::All => write!(f, "$ALLWNODES"),
            SetExpr::MyAz => write!(f, "$MYAZWNODES"),
            SetExpr::Me => write!(f, "$MYWNODE"),
            SetExpr::Node(n) => write!(f, "${n}"),
            SetExpr::NodeVar(name) => write!(f, "$WNODE_{name}"),
            SetExpr::AzVar(name) => write!(f, "$AZ_{name}"),
            SetExpr::Diff(a, b) => {
                fmt_set_atom(a, f)?;
                write!(f, "-")?;
                fmt_set_atom(b, f)
            }
        }
    }
}

/// Parenthesize nested differences so printing re-parses with the same
/// left-associative structure.
fn fmt_set_atom(s: &SetExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match s {
        SetExpr::Diff(..) => write!(f, "({s})"),
        _ => write!(f, "{s}"),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Call(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Values(set, suffix) => {
                match (set, suffix) {
                    // A suffixed difference needs parens: ($A-$B).verified
                    (SetExpr::Diff(..), Some(s)) => write!(f, "({set}).{s}"),
                    (_, Some(s)) => write!(f, "{set}.{s}"),
                    (_, None) => write!(f, "{set}"),
                }
            }
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Sizeof(set) => write!(f, "SIZEOF({set})"),
            Expr::Arith(op, l, r) => {
                fmt_arith_operand(l, *op, true, f)?;
                write!(f, "{op}")?;
                fmt_arith_operand(r, *op, false, f)
            }
        }
    }
}

/// Parenthesize arithmetic operands where precedence or associativity
/// would otherwise change on re-parse.
fn fmt_arith_operand(
    e: &Expr,
    parent: BinOp,
    is_left: bool,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let needs_parens = match e {
        Expr::Arith(child, ..) => {
            let parent_mul = matches!(parent, BinOp::Mul | BinOp::Div);
            let child_mul = matches!(child, BinOp::Mul | BinOp::Div);
            if parent_mul && !child_mul {
                true // (a+b)*c
            } else {
                // Subtraction and division are not associative: parenthesize
                // right operands at equal precedence.
                !is_left && parent_mul == child_mul
            }
        }
        _ => false,
    };
    if needs_parens {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl fmt::Display for ResolvedExpr {
    /// Renders the normalized form, e.g.
    /// `KTH_MAX(2; n0.ack0, n3.ack1, KTH_MIN(1; ...))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.kind {
            ReduceKind::Largest => "KTH_MAX",
            ReduceKind::Smallest => "KTH_MIN",
        };
        write!(f, "{name}({};", self.k)?;
        for (i, op) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match op {
                Operand::Cell(n, t) => write!(f, " {n}.{t}")?,
                Operand::Const(v) => write!(f, " {v}")?,
                Operand::Nested(inner) => write!(f, " {inner}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {

    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let ast = parse(src).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(ast, reparsed, "source: {src}, printed: {printed}");
    }

    #[test]
    fn table3_predicates_roundtrip() {
        for src in [
            "MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            "KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            "MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            "MAX($ALLWNODES-$MYWNODE)",
            "KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)",
            "MIN($ALLWNODES-$MYWNODE)",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn suffixed_difference_roundtrips() {
        roundtrip("MIN(($MYAZWNODES-$MYWNODE).verified)");
    }

    #[test]
    fn nested_difference_parenthesized() {
        roundtrip("MAX($ALLWNODES-($MYAZWNODES-$MYWNODE))");
        roundtrip("MAX(($ALLWNODES-$MYWNODE)-$2)");
    }

    #[test]
    fn arithmetic_precedence_preserved() {
        roundtrip("KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)");
        roundtrip("KTH_MIN((SIZEOF($ALLWNODES)+1)/2, $ALLWNODES)");
        roundtrip("KTH_MIN(SIZEOF($ALLWNODES)-1-1, $ALLWNODES)");
        roundtrip("KTH_MIN(8/(2/2)*1, $ALLWNODES)");
    }
}
