//! Resolved-predicate optimizer: semantics-preserving rewrites applied
//! between resolution and compilation, shrinking the instruction stream
//! the VM executes on the control plane's critical path.
//!
//! Rewrites:
//!
//! 1. **Singleton collapse** — `KTH_*(1; x)` over exactly one operand is
//!    that operand.
//! 2. **Same-kind rank-1 flattening** — a rank-1 reduction absorbs
//!    nested rank-1 reductions of the same kind
//!    (`MAX(a, MAX(b, c)) = MAX(a, b, c)`).
//! 3. **Duplicate-cell elimination** — for *rank-1* reductions only,
//!    repeated cells/constants cannot change a max or min and are
//!    dropped. (For `k > 1`, duplicates are significant: the 2nd-largest
//!    of `{x, x}` is `x`.)
//! 4. **Constant folding of constant-only reductions.**
//!
//! Equivalence against the unoptimized form is property-tested in
//! `tests/proptest_dsl.rs`.

use crate::resolve::{Operand, ReduceKind, Resolved, ResolvedExpr};

/// Optimize a resolved predicate. The result evaluates to the same value
/// as the input for every ACK table.
pub fn optimize(resolved: &Resolved) -> Resolved {
    Resolved {
        expr: optimize_expr(&resolved.expr),
        me: resolved.me,
    }
}

fn optimize_expr(expr: &ResolvedExpr) -> ResolvedExpr {
    // Optimize children first.
    let mut operands: Vec<Operand> = expr
        .operands
        .iter()
        .map(|op| match op {
            Operand::Nested(inner) => {
                let inner = optimize_expr(inner);
                // Singleton collapse: a reduction over one operand *is*
                // that operand (rank must be 1 by the resolver's range
                // check).
                if inner.operands.len() == 1 {
                    inner.operands.into_iter().next().unwrap()
                } else {
                    Operand::Nested(inner)
                }
            }
            other => other.clone(),
        })
        .collect();

    // Flatten same-kind rank-1 nests into this reduction (only valid
    // when *both* levels are rank 1).
    if expr.k == 1 {
        let mut flattened = Vec::with_capacity(operands.len());
        for op in operands {
            match op {
                Operand::Nested(inner) if inner.kind == expr.kind && inner.k == 1 => {
                    flattened.extend(inner.operands);
                }
                other => flattened.push(other),
            }
        }
        operands = flattened;

        // Duplicate elimination is only sound at rank 1.
        let mut seen = Vec::new();
        operands.retain(|op| match op {
            Operand::Cell(n, t) => {
                if seen.contains(&(*n, *t)) {
                    false
                } else {
                    seen.push((*n, *t));
                    true
                }
            }
            _ => true,
        });

        // Collapse multiple constants to the single winning constant.
        let consts: Vec<u64> = operands
            .iter()
            .filter_map(|op| match op {
                Operand::Const(v) => Some(*v),
                _ => None,
            })
            .collect();
        if consts.len() > 1 {
            let keep = match expr.kind {
                ReduceKind::Largest => consts.iter().copied().max().unwrap(),
                ReduceKind::Smallest => consts.iter().copied().min().unwrap(),
            };
            let mut kept_one = false;
            operands.retain(|op| match op {
                Operand::Const(v) => {
                    if *v == keep && !kept_one {
                        kept_one = true;
                        true
                    } else {
                        false
                    }
                }
                _ => true,
            });
        }
    }

    ResolvedExpr {
        kind: expr.kind,
        k: expr.k,
        operands,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;
    use crate::resolve::resolve;
    use crate::topology::Topology;
    use crate::types::{AckTypeId, AckTypeRegistry, AckView, NodeId};

    struct FlatAcks(Vec<u64>);
    impl AckView for FlatAcks {
        fn ack(&self, node: NodeId, _ty: AckTypeId) -> u64 {
            self.0[node.0 as usize]
        }
    }

    fn topo() -> Topology {
        Topology::builder()
            .az("A", &["a", "b"])
            .az("B", &["c", "d"])
            .build()
            .unwrap()
    }

    fn resolved(src: &str) -> Resolved {
        resolve(
            &parse(src).unwrap(),
            &topo(),
            &AckTypeRegistry::new(),
            NodeId(0),
        )
        .unwrap()
    }

    fn instr_count(r: &Resolved) -> usize {
        compile(r).instrs().len()
    }

    #[test]
    fn flattens_nested_same_kind_reductions() {
        let r = resolved("MAX($1, MAX($2, MAX($3, $4)))");
        let o = optimize(&r);
        assert_eq!(o.expr.operands.len(), 4);
        assert!(o
            .expr
            .operands
            .iter()
            .all(|op| matches!(op, Operand::Cell(..))));
        assert!(instr_count(&o) < instr_count(&r));
        let v = FlatAcks(vec![3, 9, 2, 7]);
        assert_eq!(compile(&o).eval(&v), compile(&r).eval(&v));
    }

    #[test]
    fn does_not_flatten_mixed_kinds_or_ranks() {
        let r = resolved("MAX($1, MIN($2, $3))");
        let o = optimize(&r);
        assert!(o
            .expr
            .operands
            .iter()
            .any(|op| matches!(op, Operand::Nested(_))));
        let r = resolved("KTH_MAX(2, $1, MAX($2, $3), $4)");
        let o = optimize(&r);
        // Outer rank is 2: nested rank-1 MAX must stay nested.
        assert!(o
            .expr
            .operands
            .iter()
            .any(|op| matches!(op, Operand::Nested(_))));
    }

    #[test]
    fn singleton_reductions_collapse() {
        // Table III's regional predicates contain MAX($AZ_x) over
        // single-node regions at resolution time.
        let r = resolved("MIN(MAX($1), MAX($2))");
        let o = optimize(&r);
        assert_eq!(o.expr.operands.len(), 2);
        assert!(o
            .expr
            .operands
            .iter()
            .all(|op| matches!(op, Operand::Cell(..))));
    }

    #[test]
    fn duplicates_dropped_at_rank_one_only() {
        let r = resolved("MAX($1, $1, $2)");
        let o = optimize(&r);
        assert_eq!(o.expr.operands.len(), 2);

        // KTH_MAX(2, $1, $1): the duplicate is load-bearing.
        let r = resolved("KTH_MAX(2, $1, $1)");
        let o = optimize(&r);
        assert_eq!(o.expr.operands.len(), 2);
        let v = FlatAcks(vec![5, 0, 0, 0]);
        assert_eq!(compile(&o).eval(&v), 5);
    }

    #[test]
    fn constant_only_sets_collapse_to_one() {
        let r = resolved("MAX($1, SIZEOF($ALLWNODES), SIZEOF($ALLWNODES)*2)");
        let o = optimize(&r);
        let consts: Vec<_> = o
            .expr
            .operands
            .iter()
            .filter(|op| matches!(op, Operand::Const(_)))
            .collect();
        assert_eq!(consts.len(), 1);
        let v = FlatAcks(vec![3, 0, 0, 0]);
        assert_eq!(compile(&o).eval(&v), 8);
    }

    #[test]
    fn table3_predicates_shrink_but_agree() {
        let acks = AckTypeRegistry::new();
        let topo8 = Topology::builder()
            .az("North_California", &["n1", "n2"])
            .az("North_Virginia", &["n3", "n4", "n5", "n6"])
            .az("Oregon", &["n7"])
            .az("Ohio", &["n8"])
            .build()
            .unwrap();
        let v = FlatAcks(vec![14, 3, 27, 9, 31, 6, 8, 22]);
        for src in [
            "MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            "KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            "MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
            "MIN($ALLWNODES-$MYWNODE)",
        ] {
            let r = resolve(&parse(src).unwrap(), &topo8, &acks, NodeId(0)).unwrap();
            let o = optimize(&r);
            assert!(instr_count(&o) <= instr_count(&r), "{src} grew");
            assert_eq!(compile(&o).eval(&v), compile(&r).eval(&v), "{src} diverged");
        }
        // OneRegion flattens fully: MAX of MAXes (singletons included).
        let r = resolve(
            &parse("MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))").unwrap(),
            &topo8,
            &acks,
            NodeId(0),
        )
        .unwrap();
        let o = optimize(&r);
        assert_eq!(instr_count(&o), 7, "6 cells + 1 reduce");
    }
}
