//! Abstract syntax tree for stability-frontier predicates.
//!
//! Two parallel tree shapes live here: the plain [`Expr`]/[`SetExpr`]
//! tree the resolver and interpreter consume, and the span-carrying
//! [`SpannedExpr`]/[`SpannedSet`] tree the parser actually builds. The
//! spanned tree records the byte range of every node so the static
//! analyzer can point diagnostics at the exact offending source text;
//! [`SpannedExpr::strip`] recovers the plain tree.

use crate::span::Span;
use std::fmt;

/// The four reduction operators of the DSL (§III-C, eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `MAX` — the largest value among the operands.
    Max,
    /// `MIN` — the smallest value among the operands.
    Min,
    /// `KTH_MAX` — the k-th largest value (k is the first argument).
    KthMax,
    /// `KTH_MIN` — the k-th smallest value (k is the first argument).
    KthMin,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Max => write!(f, "MAX"),
            Op::Min => write!(f, "MIN"),
            Op::KthMax => write!(f, "KTH_MAX"),
            Op::KthMin => write!(f, "KTH_MIN"),
        }
    }
}

/// Arithmetic operators usable in rank expressions such as
/// `SIZEOF($ALLWNODES)/2+1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-` (between numbers; between sets `-` is set difference)
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinOp::Add => write!(f, "+"),
            BinOp::Sub => write!(f, "-"),
            BinOp::Mul => write!(f, "*"),
            BinOp::Div => write!(f, "/"),
        }
    }
}

/// An ACK-type suffix name, e.g. `received`, `persisted`, `verified`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AckTypeName(pub String);

impl fmt::Display for AckTypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A WAN-node *set* expression: macros, variables, operands, and set
/// difference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SetExpr {
    /// `$ALLWNODES` — every WAN node in the deployment.
    All,
    /// `$MYAZWNODES` — every WAN node in the executing node's AZ.
    MyAz,
    /// `$MYWNODE` — the executing node, as a singleton set.
    Me,
    /// `$<n>` — the 1-based node operand as written in predicates.
    Node(u64),
    /// `$WNODE_<name>` — a node referenced by configuration-file name.
    NodeVar(String),
    /// `$AZ_<name>` — all members of the named availability zone.
    AzVar(String),
    /// `a - b` — set difference.
    Diff(Box<SetExpr>, Box<SetExpr>),
}

/// A predicate expression.
///
/// `Values` is the bridge between sets and numbers: used as a reduction
/// argument, a set expands to one acknowledged-sequence-number value per
/// member node, read at the given ACK type (default `received`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A reduction call, e.g. `MAX($1, $2)`.
    Call(Op, Vec<Expr>),
    /// A node set used as a list of acknowledged sequence numbers, with an
    /// optional ACK-type suffix: `($ALLWNODES-$MYWNODE).persisted`.
    Values(SetExpr, Option<AckTypeName>),
    /// Integer literal.
    Int(u64),
    /// `SIZEOF(set)` — number of nodes in the set.
    Sizeof(SetExpr),
    /// Integer arithmetic, e.g. `SIZEOF($ALLWNODES)/2+1`.
    Arith(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// True if this expression is number-valued (usable as a `KTH_*` rank
    /// or an arithmetic operand); false if it denotes a list of per-node
    /// values.
    pub fn is_scalar(&self) -> bool {
        match self {
            Expr::Call(..) | Expr::Int(_) | Expr::Sizeof(_) | Expr::Arith(..) => true,
            Expr::Values(..) => false,
        }
    }
}

/// An ACK-type suffix as written in the source, with the byte range of
/// the `.name` text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpannedAck {
    /// The suffix name (without the leading dot).
    pub name: AckTypeName,
    /// Byte range covering `.name` in the source.
    pub span: Span,
}

/// A WAN-node set expression with source spans on every node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpannedSet {
    /// The set constructor.
    pub kind: SpannedSetKind,
    /// Byte range of this (sub-)expression in the source.
    pub span: Span,
}

/// The constructors of [`SpannedSet`], mirroring [`SetExpr`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpannedSetKind {
    /// `$ALLWNODES`
    All,
    /// `$MYAZWNODES`
    MyAz,
    /// `$MYWNODE`
    Me,
    /// `$<n>` — 1-based node operand.
    Node(u64),
    /// `$WNODE_<name>`
    NodeVar(String),
    /// `$AZ_<name>`
    AzVar(String),
    /// `a - b` — set difference.
    Diff(Box<SpannedSet>, Box<SpannedSet>),
}

impl SpannedSet {
    /// Drop the spans, recovering the plain [`SetExpr`].
    pub fn strip(&self) -> SetExpr {
        match &self.kind {
            SpannedSetKind::All => SetExpr::All,
            SpannedSetKind::MyAz => SetExpr::MyAz,
            SpannedSetKind::Me => SetExpr::Me,
            SpannedSetKind::Node(n) => SetExpr::Node(*n),
            SpannedSetKind::NodeVar(s) => SetExpr::NodeVar(s.clone()),
            SpannedSetKind::AzVar(s) => SetExpr::AzVar(s.clone()),
            SpannedSetKind::Diff(a, b) => SetExpr::Diff(Box::new(a.strip()), Box::new(b.strip())),
        }
    }
}

/// A predicate expression with source spans on every node. This is what
/// the parser builds; [`SpannedExpr::strip`] recovers the plain [`Expr`]
/// consumed by the resolver and interpreter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpannedExpr {
    /// The expression constructor.
    pub kind: SpannedExprKind,
    /// Byte range of this (sub-)expression in the source.
    pub span: Span,
}

/// The constructors of [`SpannedExpr`], mirroring [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpannedExprKind {
    /// A reduction call; the span on the tuple is the operator keyword's.
    Call(Op, Span, Vec<SpannedExpr>),
    /// A node set used as per-node values, with an optional ACK suffix.
    Values(SpannedSet, Option<SpannedAck>),
    /// Integer literal.
    Int(u64),
    /// `SIZEOF(set)`.
    Sizeof(SpannedSet),
    /// Integer arithmetic.
    Arith(BinOp, Box<SpannedExpr>, Box<SpannedExpr>),
}

impl SpannedExpr {
    /// Drop the spans, recovering the plain [`Expr`].
    pub fn strip(&self) -> Expr {
        match &self.kind {
            SpannedExprKind::Call(op, _, args) => {
                Expr::Call(*op, args.iter().map(SpannedExpr::strip).collect())
            }
            SpannedExprKind::Values(set, suffix) => {
                Expr::Values(set.strip(), suffix.as_ref().map(|s| s.name.clone()))
            }
            SpannedExprKind::Int(n) => Expr::Int(*n),
            SpannedExprKind::Sizeof(set) => Expr::Sizeof(set.strip()),
            SpannedExprKind::Arith(op, l, r) => {
                Expr::Arith(*op, Box::new(l.strip()), Box::new(r.strip()))
            }
        }
    }

    /// True if this expression is number-valued; mirrors
    /// [`Expr::is_scalar`].
    pub fn is_scalar(&self) -> bool {
        match &self.kind {
            SpannedExprKind::Call(..)
            | SpannedExprKind::Int(_)
            | SpannedExprKind::Sizeof(_)
            | SpannedExprKind::Arith(..) => true,
            SpannedExprKind::Values(..) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_classification() {
        assert!(Expr::Int(3).is_scalar());
        assert!(Expr::Sizeof(SetExpr::All).is_scalar());
        assert!(Expr::Call(Op::Max, vec![Expr::Int(1)]).is_scalar());
        assert!(!Expr::Values(SetExpr::All, None).is_scalar());
    }

    #[test]
    fn ops_display_as_source_keywords() {
        assert_eq!(Op::KthMax.to_string(), "KTH_MAX");
        assert_eq!(BinOp::Div.to_string(), "/");
    }
}
