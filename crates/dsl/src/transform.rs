//! Predicate transforms used by fault tolerance (§III-E): when a
//! secondary node crashes, "the primary can adjust the predicate to
//! eliminate the impact". [`exclude_node`] rewrites a resolved predicate
//! so it no longer observes a given node.

use crate::error::DslError;
use crate::resolve::{Operand, Resolved, ResolvedExpr};
use crate::types::NodeId;

/// Rewrite `resolved` so no operand reads ACKs from `node`.
///
/// `KTH_*` ranks are clamped to the shrunk operand-list length, preserving
/// the predicate's intent for quorum-style expressions: a majority
/// predicate over 8 nodes (`k = 5`) whose operand set shrinks to 7 keeps
/// `k = 5` (still a majority of the original cluster), while an
/// `AllWNodes`-style `MIN` (rank `len`) keeps selecting the last value.
///
/// # Errors
///
/// Returns [`DslError::Invalid`] if any reduction would be left with no
/// operands at all.
pub fn exclude_node(resolved: &Resolved, node: NodeId) -> Result<Resolved, DslError> {
    Ok(Resolved {
        expr: exclude_in(&resolved.expr, node)?,
        me: resolved.me,
    })
}

fn exclude_in(expr: &ResolvedExpr, node: NodeId) -> Result<ResolvedExpr, DslError> {
    let mut operands = Vec::with_capacity(expr.operands.len());
    for op in &expr.operands {
        match op {
            Operand::Cell(n, _) if *n == node => {}
            Operand::Nested(inner) => operands.push(Operand::Nested(exclude_in(inner, node)?)),
            other => operands.push(other.clone()),
        }
    }
    if operands.is_empty() {
        return Err(DslError::Invalid(format!(
            "excluding {node} leaves a reduction with no operands"
        )));
    }
    let min_rank_ops = match expr.kind {
        // `MIN` over all operands is rank == len; keep that meaning.
        _ if expr.k as usize == expr.operands.len() => operands.len() as u32,
        _ => expr.k.min(operands.len() as u32),
    };
    Ok(ResolvedExpr {
        kind: expr.kind,
        k: min_rank_ops,
        operands,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::{resolve, ReduceKind};
    use crate::topology::Topology;
    use crate::types::AckTypeRegistry;

    fn topo() -> Topology {
        Topology::builder()
            .az("A", &["a", "b", "c", "d", "e"])
            .build()
            .unwrap()
    }

    fn res(src: &str) -> Resolved {
        let acks = AckTypeRegistry::new();
        resolve(&parse(src).unwrap(), &topo(), &acks, NodeId(0)).unwrap()
    }

    #[test]
    fn removes_cells_for_the_node() {
        let r = res("MAX($ALLWNODES)");
        let r2 = exclude_node(&r, NodeId(2)).unwrap();
        assert_eq!(r2.expr.operands.len(), 4);
        assert!(r2.expr.dependencies().iter().all(|(n, _)| *n != NodeId(2)));
    }

    #[test]
    fn min_rank_tracks_shrinking_set() {
        // MIN over 5 nodes is KTH_MIN(k=1). "All nodes" MIN written as
        // KTH_MAX(len) must keep rank == len after shrinking.
        let r = res("KTH_MAX(5, $ALLWNODES)"); // == MIN over 5 nodes
        let r2 = exclude_node(&r, NodeId(4)).unwrap();
        assert_eq!(r2.expr.k, 4);
        assert_eq!(r2.expr.operands.len(), 4);
    }

    #[test]
    fn majority_rank_is_preserved_when_possible() {
        let r = res("KTH_MIN(3, $ALLWNODES)"); // majority of 5
        let r2 = exclude_node(&r, NodeId(1)).unwrap();
        assert_eq!(r2.expr.k, 3); // still requires 3 acks
        assert_eq!(r2.expr.operands.len(), 4);
    }

    #[test]
    fn rank_clamps_when_it_must() {
        let r = res("KTH_MIN(4, $ALLWNODES)");
        let mut cur = r;
        for dead in [4u16, 3, 2] {
            cur = exclude_node(&cur, NodeId(dead)).unwrap();
        }
        assert_eq!(cur.expr.operands.len(), 2);
        assert!(cur.expr.k as usize <= cur.expr.operands.len());
    }

    #[test]
    fn nested_reductions_are_rewritten() {
        let r = res("MIN(MAX($1, $2), MAX($3, $4))");
        let r2 = exclude_node(&r, NodeId(0)).unwrap();
        assert_eq!(r2.expr.kind, ReduceKind::Smallest);
        let deps = r2.expr.dependencies();
        assert_eq!(deps.len(), 3);
    }

    #[test]
    fn emptying_a_reduction_is_an_error() {
        let r = res("MIN(MAX($1), $2)");
        assert!(exclude_node(&r, NodeId(0)).is_err());
    }

    #[test]
    fn excluding_absent_node_is_identity() {
        let r = res("MAX($1, $2)");
        let r2 = exclude_node(&r, NodeId(4)).unwrap();
        assert_eq!(r.expr, r2.expr);
    }
}
