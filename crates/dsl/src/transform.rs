//! Predicate transforms used by fault tolerance (§III-E): when a
//! secondary node crashes, "the primary can adjust the predicate to
//! eliminate the impact". [`exclude_node`] rewrites a resolved predicate
//! so it no longer observes a given node.

use crate::error::DslError;
use crate::resolve::{Operand, Resolved, ResolvedExpr};
use crate::types::NodeId;

/// Rewrite `resolved` so no operand reads ACKs from `node`.
///
/// `KTH_*` ranks are clamped to the shrunk operand-list length, preserving
/// the predicate's intent for quorum-style expressions: a majority
/// predicate over 8 nodes (`k = 5`) whose operand set shrinks to 7 keeps
/// `k = 5` (still a majority of the original cluster), while an
/// `AllWNodes`-style `MIN` (rank `len`) keeps selecting the last value.
///
/// # Errors
///
/// Returns [`DslError::Invalid`] if any reduction would be left with no
/// operands at all.
pub fn exclude_node(resolved: &Resolved, node: NodeId) -> Result<Resolved, DslError> {
    Ok(Resolved {
        expr: exclude_in(&resolved.expr, node)?,
        me: resolved.me,
    })
}

fn exclude_in(expr: &ResolvedExpr, node: NodeId) -> Result<ResolvedExpr, DslError> {
    let mut operands = Vec::with_capacity(expr.operands.len());
    for op in &expr.operands {
        match op {
            Operand::Cell(n, _) if *n == node => {}
            Operand::Nested(inner) => operands.push(Operand::Nested(exclude_in(inner, node)?)),
            other => operands.push(other.clone()),
        }
    }
    if operands.is_empty() {
        return Err(DslError::Invalid(format!(
            "excluding {node} leaves a reduction with no operands"
        )));
    }
    let min_rank_ops = match expr.kind {
        // `MIN` over all operands is rank == len; keep that meaning.
        _ if expr.k as usize == expr.operands.len() => operands.len() as u32,
        _ => expr.k.min(operands.len() as u32),
    };
    Ok(ResolvedExpr {
        kind: expr.kind,
        k: min_rank_ops,
        operands,
    })
}

/// Rewrite `resolved` so every operand reads ACKs only from nodes in
/// `allowed` — the partial-replication counterpart of [`exclude_node`]:
/// when a stream is placed on a replica set, macro-expanded predicates
/// (`$ALLWNODES`, `$AZ_*`, ...) must shrink to the replicas instead of
/// waiting forever on nodes that will never ack the stream.
///
/// Rank clamping follows [`exclude_node`]: a rank equal to the original
/// operand count (an "all of them" MIN) tracks the shrunk count, any
/// other rank is preserved when possible and clamped otherwise.
///
/// # Errors
///
/// Returns [`DslError::Invalid`] if any reduction would be left with no
/// operands at all (the predicate reads only non-replicas).
pub fn restrict_nodes(resolved: &Resolved, allowed: &[NodeId]) -> Result<Resolved, DslError> {
    Ok(Resolved {
        expr: restrict_in(&resolved.expr, allowed)?,
        me: resolved.me,
    })
}

fn restrict_in(expr: &ResolvedExpr, allowed: &[NodeId]) -> Result<ResolvedExpr, DslError> {
    let mut operands = Vec::with_capacity(expr.operands.len());
    for op in &expr.operands {
        match op {
            Operand::Cell(n, _) if !allowed.contains(n) => {}
            Operand::Nested(inner) => operands.push(Operand::Nested(restrict_in(inner, allowed)?)),
            other => operands.push(other.clone()),
        }
    }
    if operands.is_empty() {
        return Err(DslError::Invalid(
            "restricting to the replica set leaves a reduction with no operands".to_owned(),
        ));
    }
    let k = match expr.kind {
        _ if expr.k as usize == expr.operands.len() => operands.len() as u32,
        _ => expr.k.min(operands.len() as u32),
    };
    Ok(ResolvedExpr {
        kind: expr.kind,
        k,
        operands,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::{resolve, ReduceKind};
    use crate::topology::Topology;
    use crate::types::AckTypeRegistry;

    fn topo() -> Topology {
        Topology::builder()
            .az("A", &["a", "b", "c", "d", "e"])
            .build()
            .unwrap()
    }

    fn res(src: &str) -> Resolved {
        let acks = AckTypeRegistry::new();
        resolve(&parse(src).unwrap(), &topo(), &acks, NodeId(0)).unwrap()
    }

    #[test]
    fn removes_cells_for_the_node() {
        let r = res("MAX($ALLWNODES)");
        let r2 = exclude_node(&r, NodeId(2)).unwrap();
        assert_eq!(r2.expr.operands.len(), 4);
        assert!(r2.expr.dependencies().iter().all(|(n, _)| *n != NodeId(2)));
    }

    #[test]
    fn min_rank_tracks_shrinking_set() {
        // MIN over 5 nodes is KTH_MIN(k=1). "All nodes" MIN written as
        // KTH_MAX(len) must keep rank == len after shrinking.
        let r = res("KTH_MAX(5, $ALLWNODES)"); // == MIN over 5 nodes
        let r2 = exclude_node(&r, NodeId(4)).unwrap();
        assert_eq!(r2.expr.k, 4);
        assert_eq!(r2.expr.operands.len(), 4);
    }

    #[test]
    fn majority_rank_is_preserved_when_possible() {
        let r = res("KTH_MIN(3, $ALLWNODES)"); // majority of 5
        let r2 = exclude_node(&r, NodeId(1)).unwrap();
        assert_eq!(r2.expr.k, 3); // still requires 3 acks
        assert_eq!(r2.expr.operands.len(), 4);
    }

    #[test]
    fn rank_clamps_when_it_must() {
        let r = res("KTH_MIN(4, $ALLWNODES)");
        let mut cur = r;
        for dead in [4u16, 3, 2] {
            cur = exclude_node(&cur, NodeId(dead)).unwrap();
        }
        assert_eq!(cur.expr.operands.len(), 2);
        assert!(cur.expr.k as usize <= cur.expr.operands.len());
    }

    #[test]
    fn nested_reductions_are_rewritten() {
        let r = res("MIN(MAX($1, $2), MAX($3, $4))");
        let r2 = exclude_node(&r, NodeId(0)).unwrap();
        assert_eq!(r2.expr.kind, ReduceKind::Smallest);
        let deps = r2.expr.dependencies();
        assert_eq!(deps.len(), 3);
    }

    #[test]
    fn emptying_a_reduction_is_an_error() {
        let r = res("MIN(MAX($1), $2)");
        assert!(exclude_node(&r, NodeId(0)).is_err());
    }

    #[test]
    fn excluding_absent_node_is_identity() {
        let r = res("MAX($1, $2)");
        let r2 = exclude_node(&r, NodeId(4)).unwrap();
        assert_eq!(r.expr, r2.expr);
    }

    #[test]
    fn restrict_drops_non_replica_cells() {
        let r = res("MIN($ALLWNODES-$MYWNODE)");
        let allowed = [NodeId(0), NodeId(1), NodeId(2)];
        let r2 = restrict_nodes(&r, &allowed).unwrap();
        assert_eq!(r2.expr.operands.len(), 2); // replicas minus me
        assert!(r2
            .expr
            .dependencies()
            .iter()
            .all(|(n, _)| allowed.contains(n)));
    }

    #[test]
    fn restrict_tracks_all_of_them_rank() {
        // MIN over 5 == KTH_MAX(5); restricted to 3 replicas it must
        // become KTH_MAX(3), not wait on a rank past the operand count.
        let r = res("KTH_MAX(5, $ALLWNODES)");
        let r2 = restrict_nodes(&r, &[NodeId(0), NodeId(2), NodeId(4)]).unwrap();
        assert_eq!(r2.expr.operands.len(), 3);
        assert_eq!(r2.expr.k, 3);
    }

    #[test]
    fn restrict_preserves_quorum_rank_when_possible() {
        let r = res("KTH_MIN(2, $ALLWNODES)");
        let r2 = restrict_nodes(&r, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(r2.expr.k, 2);
    }

    #[test]
    fn restrict_to_superset_is_identity() {
        let r = res("MAX($1, $2)");
        let all: Vec<NodeId> = (0..5).map(NodeId).collect();
        assert_eq!(restrict_nodes(&r, &all).unwrap().expr, r.expr);
    }

    #[test]
    fn restrict_emptying_a_reduction_is_an_error() {
        let r = res("MAX($3, $4)");
        assert!(restrict_nodes(&r, &[NodeId(0), NodeId(1)]).is_err());
    }
}
