//! The stack VM that executes compiled predicate programs.

use crate::compile::Instr;
use crate::types::{AckView, SeqNo};

/// Reusable evaluation scratch space. Re-using one scratch across
/// evaluations makes [`Program::eval_with`](crate::Program::eval_with)
/// allocation-free, which matters because the control plane re-evaluates
/// predicates on every ACK arrival.
#[derive(Debug, Default, Clone)]
pub struct EvalScratch {
    stack: Vec<SeqNo>,
    sel: Vec<SeqNo>,
}

impl EvalScratch {
    /// Create an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a scratch pre-sized for programs with stack depth `cap`.
    pub fn with_capacity(cap: usize) -> Self {
        EvalScratch {
            stack: Vec::with_capacity(cap),
            sel: Vec::with_capacity(cap),
        }
    }
}

/// Execute `instrs` against `view`.
///
/// # Panics
///
/// Panics (in debug builds, via internal assertions) if the program is
/// malformed — compiled programs from [`crate::compile::compile`] are
/// always well-formed.
pub fn run<V: AckView>(instrs: &[Instr], view: &V, scratch: &mut EvalScratch) -> SeqNo {
    let stack = &mut scratch.stack;
    stack.clear();
    for instr in instrs {
        match *instr {
            Instr::PushCell(node, ty) => stack.push(view.ack(node, ty)),
            Instr::PushConst(v) => stack.push(v),
            Instr::KthLargest { n, k } => {
                let v = select(stack, &mut scratch.sel, n as usize, k as usize, true);
                stack.push(v);
            }
            Instr::KthSmallest { n, k } => {
                let v = select(stack, &mut scratch.sel, n as usize, k as usize, false);
                stack.push(v);
            }
        }
    }
    debug_assert_eq!(stack.len(), 1, "program must leave exactly one result");
    stack.pop().unwrap_or(0)
}

/// Pop `n` values off `stack` and return the `k`-th largest (or smallest).
///
/// Fast paths avoid sorting for ranks 1 (plain MAX/MIN); general ranks use
/// `select_nth_unstable`, which is O(n) expected.
fn select(
    stack: &mut Vec<SeqNo>,
    sel: &mut Vec<SeqNo>,
    n: usize,
    k: usize,
    largest: bool,
) -> SeqNo {
    debug_assert!(n >= 1 && k >= 1 && k <= n && stack.len() >= n);
    let base = stack.len() - n;
    let vals = &mut stack[base..];
    let result = if k == 1 {
        if largest {
            vals.iter().copied().max().unwrap_or(0)
        } else {
            vals.iter().copied().min().unwrap_or(0)
        }
    } else {
        sel.clear();
        sel.extend_from_slice(vals);
        // k-th largest = (n - k)-th element ascending; k-th smallest = (k-1)-th.
        let idx = if largest { n - k } else { k - 1 };
        *sel.select_nth_unstable(idx).1
    };
    stack.truncate(base);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AckTypeId, NodeId};

    struct Zero;
    impl AckView for Zero {
        fn ack(&self, _n: NodeId, _t: AckTypeId) -> u64 {
            0
        }
    }

    fn run_consts(vals: &[u64], tail: Instr) -> u64 {
        let mut instrs: Vec<Instr> = vals.iter().map(|v| Instr::PushConst(*v)).collect();
        instrs.push(tail);
        run(&instrs, &Zero, &mut EvalScratch::new())
    }

    #[test]
    fn max_and_min_fast_paths() {
        assert_eq!(run_consts(&[3, 9, 1], Instr::KthLargest { n: 3, k: 1 }), 9);
        assert_eq!(run_consts(&[3, 9, 1], Instr::KthSmallest { n: 3, k: 1 }), 1);
    }

    #[test]
    fn general_rank_selection() {
        let vals = [50, 10, 40, 20, 30];
        for (k, want) in [(1, 50), (2, 40), (3, 30), (4, 20), (5, 10)] {
            assert_eq!(
                run_consts(&vals, Instr::KthLargest { n: 5, k }),
                want,
                "k={k}"
            );
        }
        for (k, want) in [(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)] {
            assert_eq!(
                run_consts(&vals, Instr::KthSmallest { n: 5, k }),
                want,
                "k={k}"
            );
        }
    }

    #[test]
    fn rank_with_duplicates() {
        // Values {7,7,3}: 2nd largest is 7, 3rd largest is 3.
        assert_eq!(run_consts(&[7, 7, 3], Instr::KthLargest { n: 3, k: 2 }), 7);
        assert_eq!(run_consts(&[7, 7, 3], Instr::KthLargest { n: 3, k: 3 }), 3);
    }

    #[test]
    fn singleton_reduction() {
        assert_eq!(run_consts(&[42], Instr::KthLargest { n: 1, k: 1 }), 42);
    }

    #[test]
    fn cells_read_through_view() {
        struct V;
        impl AckView for V {
            fn ack(&self, n: NodeId, t: AckTypeId) -> u64 {
                (n.0 as u64) * 10 + t.0 as u64
            }
        }
        let instrs = [
            Instr::PushCell(NodeId(3), AckTypeId(1)),
            Instr::PushCell(NodeId(1), AckTypeId(0)),
            Instr::KthLargest { n: 2, k: 1 },
        ];
        assert_eq!(run(&instrs, &V, &mut EvalScratch::new()), 31);
    }
}
