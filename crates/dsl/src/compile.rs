//! Bytecode compiler: lowers a [`Resolved`] predicate into a flat
//! [`Program`] for the stack VM in [`crate::vm`].
//!
//! This plays the role of the paper's libgccjit back end: after a one-time
//! compilation, evaluation on the control-plane critical path is a tight,
//! allocation-free loop over a handful of instructions.

use crate::resolve::{Operand, ReduceKind, Resolved, ResolvedExpr};
use crate::types::{AckTypeId, AckView, NodeId, SeqNo};
use crate::vm::{self, EvalScratch};

/// One VM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Push the ACK-table cell `(node, ty)`.
    PushCell(NodeId, AckTypeId),
    /// Push a constant.
    PushConst(SeqNo),
    /// Pop `n` values, push the `k`-th largest (1-based).
    KthLargest {
        /// Number of stack values consumed.
        n: u32,
        /// 1-based rank to select.
        k: u32,
    },
    /// Pop `n` values, push the `k`-th smallest (1-based).
    KthSmallest {
        /// Number of stack values consumed.
        n: u32,
        /// 1-based rank to select.
        k: u32,
    },
}

/// A compiled predicate program.
///
/// Evaluation is stack-based and allocation-free when used with
/// [`Program::eval_with`]; [`Program::eval`] allocates a scratch on the
/// fly for convenience.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    deps: Vec<(NodeId, AckTypeId)>,
    max_stack: usize,
}

impl Program {
    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Deduplicated `(node, ack-type)` cells read by this program.
    pub fn dependencies(&self) -> &[(NodeId, AckTypeId)] {
        &self.deps
    }

    /// Worst-case evaluation stack depth (used to pre-size scratch).
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Evaluate the program against an ACK view, allocating scratch.
    pub fn eval<V: AckView>(&self, view: &V) -> SeqNo {
        let mut scratch = EvalScratch::with_capacity(self.max_stack);
        self.eval_with(view, &mut scratch)
    }

    /// Evaluate with caller-provided scratch; allocation-free once the
    /// scratch has grown to `max_stack`.
    pub fn eval_with<V: AckView>(&self, view: &V, scratch: &mut EvalScratch) -> SeqNo {
        vm::run(&self.instrs, view, scratch)
    }
}

/// Compile a resolved predicate.
pub fn compile(resolved: &Resolved) -> Program {
    let mut instrs = Vec::new();
    emit(&resolved.expr, &mut instrs);
    let deps = resolved.expr.dependencies();
    let max_stack = simulate_stack(&instrs);
    Program {
        instrs,
        deps,
        max_stack,
    }
}

fn emit(expr: &ResolvedExpr, out: &mut Vec<Instr>) {
    for op in &expr.operands {
        match op {
            Operand::Cell(node, ty) => out.push(Instr::PushCell(*node, *ty)),
            Operand::Const(v) => out.push(Instr::PushConst(*v)),
            Operand::Nested(inner) => emit(inner, out),
        }
    }
    let n = expr.operands.len() as u32;
    match expr.kind {
        ReduceKind::Largest => out.push(Instr::KthLargest { n, k: expr.k }),
        ReduceKind::Smallest => out.push(Instr::KthSmallest { n, k: expr.k }),
    }
}

/// Compute the maximum stack depth a program can reach. Compilation
/// guarantees the stack never underflows; this is asserted in debug
/// builds by the VM.
fn simulate_stack(instrs: &[Instr]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for i in instrs {
        match i {
            Instr::PushCell(..) | Instr::PushConst(_) => depth += 1,
            Instr::KthLargest { n, .. } | Instr::KthSmallest { n, .. } => {
                depth = depth - *n as usize + 1;
            }
        }
        max = max.max(depth);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;
    use crate::topology::Topology;
    use crate::types::{AckTypeRegistry, RECEIVED};

    struct FlatAcks(Vec<u64>);
    impl AckView for FlatAcks {
        fn ack(&self, node: NodeId, _ty: AckTypeId) -> u64 {
            self.0[node.0 as usize]
        }
    }

    fn topo() -> Topology {
        Topology::builder()
            .az("A", &["a1", "a2"])
            .az("B", &["b1", "b2"])
            .build()
            .unwrap()
    }

    fn program(src: &str) -> Program {
        let acks = AckTypeRegistry::new();
        compile(&resolve(&parse(src).unwrap(), &topo(), &acks, NodeId(0)).unwrap())
    }

    #[test]
    fn compiles_flat_reduction() {
        let p = program("MAX($ALLWNODES)");
        assert_eq!(p.instrs().len(), 5);
        assert_eq!(p.instrs()[4], Instr::KthLargest { n: 4, k: 1 });
        assert_eq!(p.max_stack(), 4);
    }

    #[test]
    fn evaluates_nested_reductions() {
        let p = program("MIN(MAX($AZ_A), MAX($AZ_B))");
        let v = FlatAcks(vec![5, 9, 3, 4]);
        assert_eq!(p.eval(&v), 4); // min(max(5,9)=9, max(3,4)=4)
        assert_eq!(p.max_stack(), 3);
    }

    #[test]
    fn kth_selection() {
        let p = program("KTH_MAX(2, $ALLWNODES)");
        let v = FlatAcks(vec![10, 40, 20, 30]);
        assert_eq!(p.eval(&v), 30);
        let p = program("KTH_MIN(3, $ALLWNODES)");
        assert_eq!(p.eval(&v), 30);
    }

    #[test]
    fn constants_participate() {
        let p = program("MAX($1, SIZEOF($ALLWNODES)*100)");
        let v = FlatAcks(vec![7, 0, 0, 0]);
        assert_eq!(p.eval(&v), 400);
    }

    #[test]
    fn dependencies_are_exposed() {
        let p = program("MAX($1, $2)");
        assert_eq!(
            p.dependencies(),
            &[(NodeId(0), RECEIVED), (NodeId(1), RECEIVED)]
        );
    }

    #[test]
    fn eval_with_reuses_scratch() {
        let p = program("MIN($ALLWNODES)");
        let mut scratch = EvalScratch::with_capacity(p.max_stack());
        let v = FlatAcks(vec![4, 2, 8, 6]);
        assert_eq!(p.eval_with(&v, &mut scratch), 2);
        assert_eq!(p.eval_with(&v, &mut scratch), 2);
    }

    #[test]
    fn duplicate_operands_both_counted() {
        // MAX($1,$1) is legal: two operands, same cell.
        let p = program("KTH_MAX(2, $1, $1)");
        let v = FlatAcks(vec![5, 0, 0, 0]);
        assert_eq!(p.eval(&v), 5);
    }
}
