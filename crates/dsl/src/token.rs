//! Token set for the predicate DSL.

use crate::span::Span;
use std::fmt;

/// A lexical token with the byte range it occupies in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// Byte range `start..end` of the token in the source string.
    pub span: Span,
    /// The token itself.
    pub tok: Token,
}

/// The tokens of the predicate language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `MAX`
    Max,
    /// `MIN`
    Min,
    /// `KTH_MAX`
    KthMax,
    /// `KTH_MIN`
    KthMin,
    /// `SIZEOF`
    Sizeof,
    /// `$ALLWNODES`
    AllWNodes,
    /// `$MYAZWNODES`
    MyAzWNodes,
    /// `$MYWNODE` (the paper also writes the plural `$MYWNODES`)
    MyWNode,
    /// `$WNODE_<name>` — node variable, carries `<name>`.
    WNodeVar(String),
    /// `$AZ_<name>` — availability-zone variable, carries `<name>`.
    AzVar(String),
    /// `$<number>` — 1-based node operand as written in predicates.
    NodeOperand(u64),
    /// Integer literal.
    Int(u64),
    /// Identifier (used after `.` for ACK-type suffixes).
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Max => write!(f, "MAX"),
            Token::Min => write!(f, "MIN"),
            Token::KthMax => write!(f, "KTH_MAX"),
            Token::KthMin => write!(f, "KTH_MIN"),
            Token::Sizeof => write!(f, "SIZEOF"),
            Token::AllWNodes => write!(f, "$ALLWNODES"),
            Token::MyAzWNodes => write!(f, "$MYAZWNODES"),
            Token::MyWNode => write!(f, "$MYWNODE"),
            Token::WNodeVar(n) => write!(f, "$WNODE_{n}"),
            Token::AzVar(n) => write!(f, "$AZ_{n}"),
            Token::NodeOperand(n) => write!(f, "${n}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}
