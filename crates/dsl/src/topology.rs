//! Cluster topology: the list of WAN nodes (data centers) and their
//! grouping into availability zones, as declared in the Stabilizer
//! configuration file (§III-C, "Operands").
//!
//! The DSL resolver uses the topology to expand macros
//! (`$ALLWNODES`, `$MYAZWNODES`, `$MYWNODE`) and variables
//! (`$WNODE_name`, `$AZ_name`) into concrete node sets.

use crate::error::DslError;
use crate::types::{AzId, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Immutable description of the WAN deployment: node names in index order
/// and availability-zone membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    node_names: Vec<String>,
    az_names: Vec<String>,
    /// az of each node, indexed by NodeId.
    node_az: Vec<AzId>,
    /// members of each az, indexed by AzId, sorted.
    az_members: Vec<Vec<NodeId>>,
    node_by_name: HashMap<String, NodeId>,
    az_by_name: HashMap<String, AzId>,
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Total number of WAN nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Total number of availability zones.
    pub fn num_azs(&self) -> usize {
        self.az_names.len()
    }

    /// Resolve a node name to its id.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.node_by_name.get(name).copied()
    }

    /// Resolve an availability-zone name to its id.
    pub fn az(&self, name: &str) -> Option<AzId> {
        self.az_by_name.get(name).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0 as usize]
    }

    /// Name of an availability zone.
    pub fn az_name(&self, id: AzId) -> &str {
        &self.az_names[id.0 as usize]
    }

    /// Availability zone of a node.
    pub fn az_of(&self, node: NodeId) -> AzId {
        self.node_az[node.0 as usize]
    }

    /// Members of an availability zone, sorted by node id.
    pub fn az_members(&self, az: AzId) -> &[NodeId] {
        &self.az_members[az.0 as usize]
    }

    /// All node ids, in index order.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as u16).map(NodeId).collect()
    }

    /// Iterate over `(AzId, members)` pairs.
    pub fn azs(&self) -> impl Iterator<Item = (AzId, &[NodeId])> {
        self.az_members
            .iter()
            .enumerate()
            .map(|(i, m)| (AzId(i as u16), m.as_slice()))
    }

    /// True if `a` and `b` are in the same availability zone.
    pub fn same_az(&self, a: NodeId, b: NodeId) -> bool {
        self.az_of(a) == self.az_of(b)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (az, members) in self.azs() {
            write!(f, "{}: [", self.az_name(az))?;
            for (i, m) in members.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.node_name(*m))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Builder for [`Topology`]. Add availability zones in order; node ids are
/// assigned in declaration order (matching the paper's "rank in the
/// overall list").
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    azs: Vec<(String, Vec<String>)>,
}

impl TopologyBuilder {
    /// Declare an availability zone named `az_name` containing `nodes`.
    pub fn az(mut self, az_name: &str, nodes: &[&str]) -> Self {
        self.azs.push((
            az_name.to_owned(),
            nodes.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Finish building.
    ///
    /// # Errors
    ///
    /// Fails on duplicate node or AZ names, empty AZs, or an empty
    /// topology.
    pub fn build(self) -> Result<Topology, DslError> {
        if self.azs.is_empty() {
            return Err(DslError::Topology(
                "topology has no availability zones".into(),
            ));
        }
        let mut t = Topology {
            node_names: Vec::new(),
            az_names: Vec::new(),
            node_az: Vec::new(),
            az_members: Vec::new(),
            node_by_name: HashMap::new(),
            az_by_name: HashMap::new(),
        };
        for (az_name, nodes) in self.azs {
            if nodes.is_empty() {
                return Err(DslError::Topology(format!(
                    "availability zone {az_name} is empty"
                )));
            }
            if t.az_by_name.contains_key(&az_name) {
                return Err(DslError::Topology(format!(
                    "duplicate availability zone {az_name}"
                )));
            }
            let az = AzId(t.az_names.len() as u16);
            t.az_names.push(az_name.clone());
            t.az_by_name.insert(az_name, az);
            let mut members = Vec::new();
            for node_name in nodes {
                if t.node_by_name.contains_key(&node_name) {
                    return Err(DslError::Topology(format!("duplicate node {node_name}")));
                }
                let id = NodeId(t.node_names.len() as u16);
                t.node_names.push(node_name.clone());
                t.node_by_name.insert(node_name, id);
                t.node_az.push(az);
                members.push(id);
            }
            t.az_members.push(members);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::builder()
            .az("East", &["e1", "e2"])
            .az("West", &["w1", "w2", "w3"])
            .build()
            .unwrap()
    }

    #[test]
    fn indices_follow_declaration_order() {
        let t = topo();
        assert_eq!(t.node("e1"), Some(NodeId(0)));
        assert_eq!(t.node("w3"), Some(NodeId(4)));
        assert_eq!(t.az("West"), Some(AzId(1)));
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_azs(), 2);
    }

    #[test]
    fn az_membership() {
        let t = topo();
        assert_eq!(t.az_of(NodeId(0)), AzId(0));
        assert_eq!(t.az_of(NodeId(4)), AzId(1));
        assert_eq!(t.az_members(AzId(1)), &[NodeId(2), NodeId(3), NodeId(4)]);
        assert!(t.same_az(NodeId(2), NodeId(4)));
        assert!(!t.same_az(NodeId(0), NodeId(2)));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Topology::builder()
            .az("A", &["x"])
            .az("A", &["y"])
            .build()
            .is_err());
        assert!(Topology::builder().az("A", &["x", "x"]).build().is_err());
        assert!(Topology::builder()
            .az("A", &["x"])
            .az("B", &["x"])
            .build()
            .is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Topology::builder().build().is_err());
        assert!(Topology::builder().az("A", &[]).build().is_err());
    }

    #[test]
    fn display_lists_zones() {
        let t = topo();
        let s = t.to_string();
        assert!(s.contains("East: [e1, e2]"));
        assert!(s.contains("West: [w1, w2, w3]"));
    }
}
