//! The cross-shard stability-frontier aggregator.
//!
//! Each shard runs a full `stabilizer-core` frontier engine over its own
//! per-shard sequence space. The aggregator recombines those per-shard
//! frontiers into the node-level frontier over **global** sequence
//! numbers with the min-combine rule:
//!
//! > global message `g` is covered ⇔ `g` is covered in the shard it was
//! > routed to, and the aggregated frontier is the largest `G` such that
//! > every global message `1..=G` is covered.
//!
//! Because global numbers increase monotonically *within* each shard,
//! the first uncovered global of shard `s` is simply the mapping entry
//! at the shard's frontier, and the aggregate is
//! `min over shards of first-uncovered − 1`. Where a mirror does not yet
//! know a shard's next mapping entry, the aggregate is additionally
//! bounded by the contiguous prefix of known mappings — conservative
//! (never claims coverage of a message it cannot place) and monotone
//! (mappings are append-only, per-shard frontiers are monotone within a
//! predicate generation, and the known prefix only grows).
//!
//! The aggregator also owns the delivery reassembly buffers that merge
//! the S per-shard FIFO streams back into global FIFO order per origin.

use crate::codec::decode_global;
use bytes::Bytes;
use stabilizer_core::{CoreError, FrontierUpdate, NodeId, SeqNo, WaitToken};
use std::collections::{BTreeMap, BTreeSet};

/// Aggregated events produced by feeding the aggregator: node-level
/// frontier updates and completed node-level `waitfor` tokens.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AggOutput {
    /// Node-level frontier advances (global sequence numbers).
    pub updates: Vec<FrontierUpdate>,
    /// Completed node-level wait tokens.
    pub completed: Vec<WaitToken>,
}

impl AggOutput {
    /// No events.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty() && self.completed.is_empty()
    }

    /// Append `other`'s events.
    pub fn merge(&mut self, other: AggOutput) {
        self.updates.extend(other.updates);
        self.completed.extend(other.completed);
    }
}

#[derive(Debug)]
struct KeyState {
    /// Per-shard frontier (shard-local sequence numbers) for the current
    /// generation.
    per_shard: Vec<SeqNo>,
    generation: u32,
    /// Current aggregated frontier (global sequence number).
    agg: SeqNo,
}

/// One shard's learned `shard-seq → global` mapping for one origin.
/// After a §III-E fast-forward the prefix of skipped shard seqs is never
/// learned: `globals[i]` maps shard seq `base + i + 1`, and `base` is the
/// highest skipped shard seq (0 before any fast-forward).
#[derive(Debug, Clone, Default)]
struct ShardMap {
    base: SeqNo,
    globals: Vec<SeqNo>,
}

#[derive(Debug)]
struct OriginState {
    /// Per shard: global sequence numbers in shard-seq order. Append-only
    /// except for the fast-forward prefix drop.
    mapping: Vec<ShardMap>,
    /// Per shard: the fast-forward mark from the donor's snapshot — every
    /// global skipped on that shard is `≤ mark`, every replayed or future
    /// global on it is `> mark`.
    marks: Vec<SeqNo>,
    /// Largest `G` such that every global `1..=G` is either mapped here
    /// or known to be skipped (never arriving).
    known_prefix: SeqNo,
    /// Known globals beyond the contiguous prefix.
    beyond: BTreeSet<SeqNo>,
    /// Highest global delivered to the application, and payloads parked
    /// until their global predecessor arrives (cross-shard reassembly).
    delivered: SeqNo,
    pending: BTreeMap<SeqNo, Bytes>,
}

impl OriginState {
    fn new(shards: usize) -> Self {
        OriginState {
            mapping: vec![ShardMap::default(); shards],
            marks: vec![0; shards],
            known_prefix: 0,
            beyond: BTreeSet::new(),
            delivered: 0,
            pending: BTreeMap::new(),
        }
    }

    fn learn(&mut self, shard: usize, global: SeqNo) {
        debug_assert!(
            self.mapping[shard]
                .globals
                .last()
                .is_none_or(|&g| g < global),
            "mapping must be learned in increasing global order per shard"
        );
        self.mapping[shard].globals.push(global);
        if global > self.known_prefix {
            self.beyond.insert(global);
        }
        self.advance_known();
    }

    /// True once this node can prove global `g` will never be delivered
    /// here: on every shard, `g` is either at or below the shard's
    /// fast-forward mark (so it fell in the skipped prefix if routed
    /// there) or provably absent from the shard's gapless learned suffix.
    /// Conservative: a shard with no evidence either way blocks the
    /// verdict, so reassembly waits instead of dropping data.
    fn never_arrives(&self, g: SeqNo) -> bool {
        self.mapping.iter().zip(&self.marks).all(|(m, &mark)| {
            g <= mark
                || match m.globals.binary_search(&g) {
                    Ok(_) => false,
                    Err(pos) => pos < m.globals.len(),
                }
        })
    }

    /// Grow `known_prefix` over globals that are mapped or never arrive.
    fn advance_known(&mut self) {
        loop {
            let next = self.known_prefix + 1;
            if self.beyond.remove(&next) || self.never_arrives(next) {
                self.known_prefix = next;
            } else {
                break;
            }
        }
    }

    /// Release parked deliveries, hopping over globals proven skipped.
    fn drain_ready(&mut self) -> Vec<(SeqNo, Bytes)> {
        let mut ready = Vec::new();
        loop {
            if let Some(p) = self.pending.remove(&(self.delivered + 1)) {
                self.delivered += 1;
                ready.push((self.delivered, p));
            } else if !self.pending.is_empty() && self.never_arrives(self.delivered + 1) {
                self.delivered += 1; // skipped prefix: no upcall (§III-E)
            } else {
                break;
            }
        }
        ready
    }
}

/// Min-combines per-shard frontiers into the node-level stability
/// frontier and reassembles per-shard deliveries into global FIFO order.
#[derive(Debug)]
pub struct ShardedFrontier {
    shards: usize,
    origins: Vec<OriginState>,
    keys: BTreeMap<(NodeId, String), KeyState>,
    waiters: Vec<(WaitToken, NodeId, String, SeqNo)>,
    next_token: WaitToken,
    next_global: SeqNo,
}

impl ShardedFrontier {
    /// An aggregator for `num_nodes` origins and `shards` shards.
    pub fn new(num_nodes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedFrontier {
            shards,
            origins: (0..num_nodes).map(|_| OriginState::new(shards)).collect(),
            keys: BTreeMap::new(),
            waiters: Vec::new(),
            next_token: 1,
            next_global: 0,
        }
    }

    /// Number of shards aggregated over.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Reserve the next global sequence number for a publish on `me`'s
    /// own stream. Commit it with [`ShardedFrontier::note_published`]
    /// once the shard accepted the message; an uncommitted reservation
    /// is simply reused by the next publish.
    pub fn peek_next_global(&self) -> SeqNo {
        self.next_global + 1
    }

    /// Record that the global `global` (from
    /// [`ShardedFrontier::peek_next_global`]) was published on `shard`
    /// of `me`'s own stream.
    pub fn note_published(&mut self, me: NodeId, shard: u16, global: SeqNo) -> AggOutput {
        debug_assert_eq!(global, self.next_global + 1);
        self.next_global = global;
        self.learn_mapping(me, shard, global)
    }

    /// Total globals published locally.
    pub fn last_published(&self) -> SeqNo {
        self.next_global
    }

    /// Record a learned `(shard, shard_seq) → global` mapping entry for
    /// `origin`'s stream. Must be called in shard-seq order per
    /// `(origin, shard)` — which both the origin's publish path and the
    /// mirrors' FIFO shard deliveries naturally satisfy.
    pub fn learn_mapping(&mut self, origin: NodeId, shard: u16, global: SeqNo) -> AggOutput {
        self.origins[origin.0 as usize].learn(shard as usize, global);
        self.recompute_origin(origin)
    }

    /// A shard machine delivered `(origin, shard_seq)` with the framed
    /// payload. Returns the globally ordered deliveries this releases
    /// (possibly none, possibly several parked ones) plus aggregated
    /// frontier events from the newly learned mapping.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] if the payload lacks the global-seq header.
    pub fn on_shard_deliver(
        &mut self,
        shard: u16,
        origin: NodeId,
        framed: &Bytes,
    ) -> Result<(Vec<(SeqNo, Bytes)>, AggOutput), CoreError> {
        let (global, payload) = decode_global(framed)?;
        let out = self.learn_mapping(origin, shard, global);
        let o = &mut self.origins[origin.0 as usize];
        debug_assert!(global > o.delivered, "shard re-delivered a global");
        o.pending.insert(global, payload);
        Ok((o.drain_ready(), out))
    }

    /// A shard machine fast-forwarded `origin`'s sub-stream to
    /// `shard_seq` (§III-E catch-up): shard seqs `1..=shard_seq` on that
    /// shard will never be delivered here, and the donor's `mark` bounds
    /// their globals (every skipped global on the shard is `≤ mark`,
    /// every replayed or future one is `> mark`). Reassembly and the
    /// frontier min-combine step over globals once *every* shard rules
    /// them out, so a shard with no traffic and no mark conservatively
    /// parks the aggregate rather than risking a drop.
    pub fn fast_forward_origin(
        &mut self,
        origin: NodeId,
        shard: u16,
        shard_seq: SeqNo,
        mark: SeqNo,
    ) -> (Vec<(SeqNo, Bytes)>, AggOutput) {
        let o = &mut self.origins[origin.0 as usize];
        let s = shard as usize;
        if mark > o.marks[s] {
            o.marks[s] = mark;
        }
        let m = &mut o.mapping[s];
        if shard_seq > m.base {
            // Entries at or below the new skip point were delivered
            // before the jump; drop them so index arithmetic stays
            // aligned with the replayed suffix.
            let drop_n = ((shard_seq - m.base) as usize).min(m.globals.len());
            m.globals.drain(..drop_n);
            m.base = shard_seq;
        }
        o.advance_known();
        let ready = o.drain_ready();
        let out = self.recompute_origin(origin);
        (ready, out)
    }

    /// Highest global delivered to the application for `origin`.
    pub fn delivered_global(&self, origin: NodeId) -> SeqNo {
        self.origins[origin.0 as usize].delivered
    }

    /// Globals parked waiting for a cross-shard predecessor of `origin`.
    pub fn parked(&self, origin: NodeId) -> usize {
        self.origins[origin.0 as usize].pending.len()
    }

    /// Number of `origin`'s messages routed to `shard` with global
    /// sequence ≤ `global` (translates node-level stability reports into
    /// shard-local ones). Counts only known mappings, so mirrors with
    /// partial knowledge under-report — conservative by construction.
    pub fn shard_progress(&self, origin: NodeId, shard: u16, global: SeqNo) -> SeqNo {
        let m = &self.origins[origin.0 as usize].mapping[shard as usize];
        let pp = m.globals.partition_point(|&g| g <= global) as SeqNo;
        if pp > 0 {
            // Retained entry `pp-1` has global ≤ `global`, so every
            // skipped predecessor (smaller globals) does too.
            m.base + pp
        } else {
            0
        }
    }

    /// Global sequence numbers of `origin`'s messages routed to `shard`,
    /// in shard-seq order (entry `i` is the global of shard seq
    /// `skip + i + 1`, where `skip` is the fast-forwarded prefix — 0 on
    /// the origin itself) — the inverse of
    /// [`ShardedFrontier::shard_progress`], for telemetry that folds
    /// per-shard frontier advances back into global terms.
    pub fn shard_globals(&self, origin: NodeId, shard: u16) -> &[SeqNo] {
        &self.origins[origin.0 as usize].mapping[shard as usize].globals
    }

    /// Make `(stream, key)` queryable (frontier 0) before any shard
    /// reports — called when a predicate is registered.
    pub fn ensure_key(&mut self, stream: NodeId, key: &str) {
        let shards = self.shards;
        self.keys
            .entry((stream, key.to_owned()))
            .or_insert_with(|| KeyState {
                per_shard: vec![0; shards],
                generation: 0,
                agg: 0,
            });
    }

    /// Drop `(stream, key)`; its pending waiters complete immediately
    /// (mirroring the core engine's unregister semantics).
    pub fn unregister_key(&mut self, stream: NodeId, key: &str) -> AggOutput {
        self.keys.remove(&(stream, key.to_owned()));
        let mut out = AggOutput::default();
        self.waiters.retain(|(token, s, k, _)| {
            if *s == stream && k == key {
                out.completed.push(*token);
                false
            } else {
                true
            }
        });
        out
    }

    /// Feed one per-shard frontier advance. Generations bump in lockstep
    /// across shards (predicate changes fan out to every shard); the
    /// first update carrying a newer generation resets the per-shard
    /// frontiers and re-announces the aggregate under the new
    /// generation, exactly like the core engine's `change_predicate`.
    pub fn on_shard_frontier(&mut self, shard: u16, update: &FrontierUpdate) -> AggOutput {
        let shards = self.shards;
        let st = self
            .keys
            .entry((update.stream, update.key.clone()))
            .or_insert_with(|| KeyState {
                per_shard: vec![0; shards],
                generation: update.generation,
                agg: 0,
            });
        let mut force = false;
        if update.generation > st.generation {
            st.generation = update.generation;
            st.per_shard = vec![0; shards];
            force = true;
        } else if update.generation < st.generation {
            return AggOutput::default(); // stale shard update from an old generation
        }
        let cell = &mut st.per_shard[shard as usize];
        if update.seq > *cell {
            *cell = update.seq;
        }
        self.recompute_key(update.stream, &update.key, force)
    }

    /// Current aggregated `(frontier, generation)` of a predicate.
    pub fn frontier(&self, stream: NodeId, key: &str) -> Option<(SeqNo, u32)> {
        self.keys
            .get(&(stream, key.to_owned()))
            .map(|st| (st.agg, st.generation))
    }

    /// Register a node-level wait for the aggregated frontier of
    /// `(stream, key)` to reach the **global** sequence `seq`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] if the key was never registered.
    pub fn waitfor(
        &mut self,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
    ) -> Result<(WaitToken, AggOutput), CoreError> {
        let st = self
            .keys
            .get(&(stream, key.to_owned()))
            .ok_or_else(|| CoreError::UnknownPredicate(key.to_owned()))?;
        let token = self.next_token;
        self.next_token += 1;
        let mut out = AggOutput::default();
        if st.agg >= seq {
            out.completed.push(token);
        } else {
            self.waiters.push((token, stream, key.to_owned(), seq));
        }
        Ok((token, out))
    }

    /// Node-level waits still blocked.
    pub fn pending_waiters(&self) -> usize {
        self.waiters.len()
    }

    /// First global of `stream` not yet covered by shard `s` under the
    /// current per-shard frontier `f`, from this node's knowledge.
    fn first_uncovered(&self, stream: NodeId, shard: usize, f: SeqNo) -> SeqNo {
        let o = &self.origins[stream.0 as usize];
        let m = &o.mapping[shard];
        if f < m.base {
            // The shard's frontier has not yet caught up past its
            // fast-forwarded prefix; the first uncovered message is a
            // skipped one whose global we will never learn. Pin the
            // aggregate until the shard frontier clears the skip point.
            return 1;
        }
        let idx = (f - m.base) as usize;
        if idx < m.globals.len() {
            m.globals[idx]
        } else {
            // The shard's next message (if any) is one we cannot place
            // yet; bound by the first globally unknown mapping.
            o.known_prefix + 1
        }
    }

    fn recompute_key(&mut self, stream: NodeId, key: &str, force: bool) -> AggOutput {
        let Some(st) = self.keys.get(&(stream, key.to_owned())) else {
            return AggOutput::default();
        };
        let mut min_first = SeqNo::MAX;
        for s in 0..self.shards {
            min_first = min_first.min(self.first_uncovered(stream, s, st.per_shard[s]));
        }
        let agg = min_first.saturating_sub(1);
        let st = self.keys.get_mut(&(stream, key.to_owned())).unwrap();
        let mut out = AggOutput::default();
        if agg > st.agg || force {
            debug_assert!(
                force || st.generation == 0 || agg >= st.agg,
                "aggregated frontier regressed within a generation"
            );
            st.agg = if force { agg } else { st.agg.max(agg) };
            out.updates.push(FrontierUpdate {
                stream,
                key: key.to_owned(),
                seq: st.agg,
                generation: st.generation,
            });
            self.drain_waiters(stream, key, &mut out);
        }
        out
    }

    /// Recompute every key of `stream` after its mapping grew (a new
    /// mapping entry can raise aggregates without any frontier traffic).
    fn recompute_origin(&mut self, stream: NodeId) -> AggOutput {
        let keys: Vec<String> = self
            .keys
            .range((stream, String::new())..)
            .take_while(|((s, _), _)| *s == stream)
            .map(|((_, k), _)| k.clone())
            .collect();
        let mut out = AggOutput::default();
        for key in keys {
            out.merge(self.recompute_key(stream, &key, false));
        }
        out
    }

    fn drain_waiters(&mut self, stream: NodeId, key: &str, out: &mut AggOutput) {
        let agg = match self.keys.get(&(stream, key.to_owned())) {
            Some(st) => st.agg,
            None => return,
        };
        self.waiters.retain(|(token, s, k, seq)| {
            if *s == stream && k == key && agg >= *seq {
                out.completed.push(*token);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_global;

    const ME: NodeId = NodeId(0);

    fn update(stream: NodeId, key: &str, seq: SeqNo, generation: u32) -> FrontierUpdate {
        FrontierUpdate {
            stream,
            key: key.to_owned(),
            seq,
            generation,
        }
    }

    #[test]
    fn min_combine_over_two_shards() {
        let mut agg = ShardedFrontier::new(2, 2);
        agg.ensure_key(ME, "All");
        // Globals 1,3 on shard 0; global 2 on shard 1.
        for (shard, global) in [(0, 1), (1, 2), (0, 3)] {
            let g = agg.peek_next_global();
            assert_eq!(g, global);
            agg.note_published(ME, shard, g);
        }
        // Shard 0 covers its first message (global 1): aggregate stops at
        // 1 because shard 1's first message (global 2) is uncovered.
        let out = agg.on_shard_frontier(0, &update(ME, "All", 1, 0));
        assert_eq!(out.updates.len(), 1);
        assert_eq!(agg.frontier(ME, "All"), Some((1, 0)));
        // Shard 1 covers global 2: aggregate jumps to 2 (global 3 still
        // uncovered in shard 0).
        agg.on_shard_frontier(1, &update(ME, "All", 1, 0));
        assert_eq!(agg.frontier(ME, "All"), Some((2, 0)));
        // Shard 0 covers its second message: everything covered.
        agg.on_shard_frontier(0, &update(ME, "All", 2, 0));
        assert_eq!(agg.frontier(ME, "All"), Some((3, 0)));
    }

    #[test]
    fn stalled_shard_pins_the_aggregate() {
        let mut agg = ShardedFrontier::new(1, 2);
        agg.ensure_key(ME, "All");
        for (shard, _) in [(0, ()), (1, ()), (0, ()), (0, ())] {
            let g = agg.peek_next_global();
            agg.note_published(ME, shard, g);
        }
        // Shard 0 races ahead; shard 1 (owning global 2) is stalled.
        agg.on_shard_frontier(0, &update(ME, "All", 3, 0));
        assert_eq!(agg.frontier(ME, "All"), Some((1, 0)));
        // Shard 1 catches up: the whole prefix unlocks at once.
        agg.on_shard_frontier(1, &update(ME, "All", 1, 0));
        assert_eq!(agg.frontier(ME, "All"), Some((4, 0)));
    }

    #[test]
    fn waiters_complete_on_aggregate_not_per_shard() {
        let mut agg = ShardedFrontier::new(1, 2);
        agg.ensure_key(ME, "All");
        for shard in [0u16, 1] {
            let g = agg.peek_next_global();
            agg.note_published(ME, shard, g);
        }
        let (token, out) = agg.waitfor(ME, "All", 2).unwrap();
        assert!(out.completed.is_empty());
        let out = agg.on_shard_frontier(0, &update(ME, "All", 1, 0));
        assert!(out.completed.is_empty(), "global 2 is in shard 1");
        let out = agg.on_shard_frontier(1, &update(ME, "All", 1, 0));
        assert_eq!(out.completed, vec![token]);
        assert_eq!(agg.pending_waiters(), 0);
    }

    #[test]
    fn waitfor_already_satisfied_completes_immediately() {
        let mut agg = ShardedFrontier::new(1, 1);
        agg.ensure_key(ME, "All");
        let g = agg.peek_next_global();
        agg.note_published(ME, 0, g);
        agg.on_shard_frontier(0, &update(ME, "All", 1, 0));
        let (token, out) = agg.waitfor(ME, "All", 1).unwrap();
        assert_eq!(out.completed, vec![token]);
    }

    #[test]
    fn unknown_key_waitfor_errors() {
        let mut agg = ShardedFrontier::new(1, 1);
        assert!(matches!(
            agg.waitfor(ME, "nope", 1),
            Err(CoreError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn generation_bump_resets_and_reannounces() {
        let mut agg = ShardedFrontier::new(1, 2);
        agg.ensure_key(ME, "All");
        for shard in [0u16, 1] {
            let g = agg.peek_next_global();
            agg.note_published(ME, shard, g);
        }
        agg.on_shard_frontier(0, &update(ME, "All", 1, 0));
        agg.on_shard_frontier(1, &update(ME, "All", 1, 0));
        assert_eq!(agg.frontier(ME, "All"), Some((2, 0)));
        // A predicate change starts generation 1; the first shard update
        // under it resets the other shard's contribution.
        let out = agg.on_shard_frontier(0, &update(ME, "All", 1, 1));
        assert_eq!(out.updates.len(), 1);
        let (f, g) = agg.frontier(ME, "All").unwrap();
        assert_eq!(g, 1);
        assert_eq!(f, 1, "shard 1 unreported under the new generation");
        // Stale generation-0 updates are ignored.
        let out = agg.on_shard_frontier(1, &update(ME, "All", 9, 0));
        assert!(out.is_empty());
        assert_eq!(agg.frontier(ME, "All"), Some((1, 1)));
    }

    #[test]
    fn mirror_reassembles_global_fifo() {
        let origin = NodeId(1);
        let mut agg = ShardedFrontier::new(2, 2);
        // Origin published globals 1 (shard 0), 2 (shard 1), 3 (shard 0).
        // Mirror's shard 1 delivers first: global 2 parks.
        let (ready, _) = agg
            .on_shard_deliver(1, origin, &encode_global(2, &Bytes::from_static(b"b")))
            .unwrap();
        assert!(ready.is_empty());
        assert_eq!(agg.parked(origin), 1);
        // Shard 0 delivers global 1: both release in order.
        let (ready, _) = agg
            .on_shard_deliver(0, origin, &encode_global(1, &Bytes::from_static(b"a")))
            .unwrap();
        assert_eq!(
            ready,
            vec![(1, Bytes::from_static(b"a")), (2, Bytes::from_static(b"b"))]
        );
        let (ready, _) = agg
            .on_shard_deliver(0, origin, &encode_global(3, &Bytes::from_static(b"c")))
            .unwrap();
        assert_eq!(ready, vec![(3, Bytes::from_static(b"c"))]);
        assert_eq!(agg.delivered_global(origin), 3);
    }

    #[test]
    fn mirror_aggregate_is_bounded_by_known_mappings() {
        let origin = NodeId(1);
        let mut agg = ShardedFrontier::new(2, 2);
        agg.ensure_key(origin, "All");
        // A remote frontier report says shard 0 covered 5 messages, but
        // this mirror has placed none of them: the aggregate stays 0.
        agg.on_shard_frontier(0, &update(origin, "All", 5, 0));
        agg.on_shard_frontier(1, &update(origin, "All", 5, 0));
        assert_eq!(agg.frontier(origin, "All"), Some((0, 0)));
        // Learning globals 1 and 2 (both covered per the shard reports)
        // advances the aggregate to the known prefix.
        agg.on_shard_deliver(0, origin, &encode_global(1, &Bytes::new()))
            .unwrap();
        let (_, out) = agg
            .on_shard_deliver(1, origin, &encode_global(2, &Bytes::new()))
            .unwrap();
        assert!(!out.updates.is_empty());
        assert_eq!(agg.frontier(origin, "All"), Some((2, 0)));
    }

    #[test]
    fn unregister_completes_waiters() {
        let mut agg = ShardedFrontier::new(1, 1);
        agg.ensure_key(ME, "All");
        let g = agg.peek_next_global();
        agg.note_published(ME, 0, g);
        let (token, out) = agg.waitfor(ME, "All", 1).unwrap();
        assert!(out.completed.is_empty());
        let out = agg.unregister_key(ME, "All");
        assert_eq!(out.completed, vec![token]);
        assert_eq!(agg.frontier(ME, "All"), None);
    }

    #[test]
    fn shard_progress_translates_globals() {
        let mut agg = ShardedFrontier::new(1, 2);
        for shard in [0u16, 1, 0, 0, 1] {
            let g = agg.peek_next_global();
            agg.note_published(ME, shard, g);
        }
        // Shard 0 holds globals 1,3,4; shard 1 holds 2,5.
        assert_eq!(agg.shard_progress(ME, 0, 3), 2);
        assert_eq!(agg.shard_progress(ME, 0, 4), 3);
        assert_eq!(agg.shard_progress(ME, 1, 4), 1);
        assert_eq!(agg.shard_progress(ME, 1, 5), 2);
        assert_eq!(agg.shard_progress(ME, 0, 0), 0);
    }
}
