//! # Stabilizer shard
//!
//! A sharded multi-stream engine layered over `stabilizer-core`: each
//! node runs S independent shard instances — each a complete
//! `StabilizerNode` with its own sequencer, send buffer, ACK recorder
//! and frontier engine — so publishes, ACK processing and predicate
//! evaluation parallelize across cores without touching the single-shard
//! protocol logic.
//!
//! The pieces:
//!
//! * [`router`] — deterministic publish routing (round-robin or
//!   key-hash), pure state-machine code so seed replay stays
//!   byte-identical.
//! * [`codec`] — the 8-byte global-sequence header every sharded payload
//!   carries, which teaches mirrors the `(shard, shard_seq) → global`
//!   mapping for free at delivery time.
//! * [`frontier`] — the [`ShardedFrontier`] aggregator: min-combines
//!   per-shard stability frontiers into the node-level frontier (a
//!   global sequence is covered iff its shard covers it and nothing
//!   before it is uncovered) and reassembles per-shard FIFO deliveries
//!   into global FIFO order.
//! * [`engine`] — the [`ShardedEngine`] facade with the unsharded
//!   node-level API: `publish`, `register_predicate`/`change_predicate`,
//!   `stability_frontier`, `waitfor`, stability reports, timers,
//!   membership — all in global sequence numbers.
//! * [`sim`] — the deterministic-simulator driver
//!   ([`ShardedSimNode`], [`build_sharded_cluster`]), mirroring the
//!   unsharded `sim_driver` so sharded scenarios replay byte-identically
//!   under the chaos harness.
//!
//! The TCP runtime counterpart (one worker thread per shard) lives in
//! `stabilizer-transport::sharded`.

pub mod codec;
pub mod engine;
pub mod frontier;
pub mod router;
pub mod sim;

pub use codec::{decode_global, encode_global, GLOBAL_HEADER};
pub use engine::{ShardedAction, ShardedEngine};
pub use frontier::{AggOutput, ShardedFrontier};
pub use router::{fnv1a, RoutePolicy, ShardRouter};
pub use sim::{build_sharded_cluster, build_sharded_cluster_with_hooks, ShardMsg, ShardedSimNode};
