//! The sharded node: S independent `StabilizerNode` machines behind one
//! node-level facade.
//!
//! Each shard owns a full stack — sequencer, send buffer, ACK recorder,
//! frontier engine — over its own per-shard sequence space. The engine
//! routes publishes across shards (deterministically, see
//! [`crate::router`]), tags every payload with its node-level global
//! sequence number ([`crate::codec`]), and recombines per-shard frontier
//! advances and deliveries through the [`ShardedFrontier`] aggregator so
//! the application-visible API (`publish`, `waitfor`,
//! `stability_frontier`, frontier monitors, FIFO delivery) keeps exactly
//! the unsharded semantics.
//!
//! Like `StabilizerNode`, the engine is sans-IO: drivers feed messages
//! and timer ticks in, and drain [`ShardedAction`]s out.

use crate::codec::{encode_global, GLOBAL_HEADER};
use crate::frontier::{AggOutput, ShardedFrontier};
use crate::router::{RoutePolicy, ShardRouter};
use bytes::Bytes;
use stabilizer_core::{
    AckTypeId, Action, ClusterConfig, CoreError, FrontierUpdate, Metrics, NodeId, SeqNo,
    StabilizerNode, WaitToken, WireMsg,
};
use stabilizer_dsl::AckTypeRegistry;
use std::sync::Arc;

/// Side effects drained from a [`ShardedEngine`], in order.
#[derive(Debug)]
pub enum ShardedAction {
    /// Transmit `msg` to `to` on the sub-stream of `shard`.
    Send {
        /// Shard whose machine produced the message; the receiver must
        /// feed it to the same shard index.
        shard: u16,
        /// Destination node.
        to: NodeId,
        /// The wire message.
        msg: WireMsg,
    },
    /// Deliver an application payload in **global** FIFO order.
    Deliver {
        /// Stream the message belongs to.
        origin: NodeId,
        /// Node-level global sequence number.
        seq: SeqNo,
        /// The payload (global header stripped).
        payload: Bytes,
    },
    /// The node-level aggregated stability frontier advanced.
    Frontier(FrontierUpdate),
    /// A node-level `waitfor` completed.
    WaitDone {
        /// The token returned by [`ShardedEngine::waitfor`].
        token: WaitToken,
    },
    /// A peer went silent on at least one shard sub-stream (deduplicated:
    /// emitted on the first shard to suspect, cleared when every shard
    /// recovered).
    Suspected {
        /// The suspect.
        node: NodeId,
    },
    /// All shards un-suspected the peer.
    Recovered {
        /// The returning node.
        node: NodeId,
    },
    /// Auto-exclusion broke a predicate (reported once, from shard 0 —
    /// shards hold identical predicates so they break in lockstep).
    PredicateBroken {
        /// Stream of the broken predicate.
        stream: NodeId,
        /// Its key.
        key: String,
    },
    /// Observability: a single shard's own frontier advanced (per-shard
    /// sequence space). Telemetry and the chaos checker consume these;
    /// applications should watch [`ShardedAction::Frontier`].
    ShardFrontier {
        /// The shard.
        shard: u16,
        /// The per-shard update.
        update: FrontierUpdate,
    },
    /// A shard sub-stream fast-forwarded out of band (§III-E state
    /// transfer): shard seqs up to `seq` were skipped, and global
    /// reassembly for `stream` resumes after `global` without upcalls
    /// for the proven-skipped prefix.
    CatchUp {
        /// The shard that jumped.
        shard: u16,
        /// Stream that was fast-forwarded.
        stream: NodeId,
        /// Per-shard sequence jumped to.
        seq: SeqNo,
        /// Node-level delivered global after the jump.
        global: SeqNo,
    },
    /// Observability: a shard machine delivered one message (before
    /// global reassembly).
    ShardDeliver {
        /// The shard.
        shard: u16,
        /// Stream of the message.
        origin: NodeId,
        /// Per-shard sequence number.
        seq: SeqNo,
        /// Application payload length (header excluded).
        len: usize,
    },
}

/// S shard machines, a router, and the frontier aggregator.
#[derive(Debug)]
pub struct ShardedEngine {
    me: NodeId,
    cfg: ClusterConfig,
    shards: Vec<StabilizerNode>,
    router: ShardRouter,
    agg: ShardedFrontier,
    actions: Vec<ShardedAction>,
    /// Per peer: how many shards currently suspect it.
    suspect_counts: Vec<u32>,
}

impl ShardedEngine {
    /// Create the sharded node `me` with `cfg.options().shards` shards.
    ///
    /// # Errors
    ///
    /// Fails if a configured predicate does not compile.
    pub fn new(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
        policy: RoutePolicy,
    ) -> Result<Self, CoreError> {
        let num_shards = cfg.options().shards.max(1);
        // Shard machines carry the 8-byte global header on every payload,
        // so their payload cap is widened to keep the application-visible
        // cap unchanged.
        let mut inner_opts = cfg.options().clone();
        inner_opts.max_payload_bytes += GLOBAL_HEADER;
        let inner_cfg = cfg.clone().with_options(inner_opts);
        let mut shards = Vec::with_capacity(num_shards as usize);
        for _ in 0..num_shards {
            shards.push(StabilizerNode::new(inner_cfg.clone(), me, acks.clone())?);
        }
        let mut agg = ShardedFrontier::new(cfg.num_nodes(), num_shards as usize);
        for (key, _) in cfg.predicates() {
            agg.ensure_key(me, key);
        }
        let mut engine = ShardedEngine {
            me,
            suspect_counts: vec![0; cfg.num_nodes()],
            cfg,
            shards,
            router: ShardRouter::new(num_shards, policy),
            agg,
            actions: Vec::new(),
        };
        engine.drain_all_shards();
        Ok(engine)
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The cluster configuration (application-visible options, not the
    /// widened per-shard ones).
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u16 {
        self.shards.len() as u16
    }

    /// The cluster's stream placement. Every shard machine carries the
    /// same map, so the node-level view is authoritative: a stream's
    /// shard sub-streams live exactly on that stream's replica set, and
    /// the aggregated frontier min-combines over replica shards only
    /// (each shard machine's predicates are already restricted to the
    /// replica set).
    pub fn placement(&self) -> &Arc<stabilizer_place::PlacementMap> {
        self.cfg.placement()
    }

    /// Read-only view of one shard machine.
    pub fn shard(&self, shard: u16) -> &StabilizerNode {
        &self.shards[shard as usize]
    }

    /// Mutable access to one shard machine, for drivers that need to run
    /// per-shard repair (`resend_from`, `announce_acks_to`). Call
    /// [`ShardedEngine::drain_shard`] afterwards.
    pub fn shard_mut(&mut self, shard: u16) -> &mut StabilizerNode {
        &mut self.shards[shard as usize]
    }

    /// Read-only view of the frontier aggregator.
    pub fn aggregator(&self) -> &ShardedFrontier {
        &self.agg
    }

    /// Drain pending sharded actions, in order.
    pub fn take_actions(&mut self) -> Vec<ShardedAction> {
        std::mem::take(&mut self.actions)
    }

    /// True if any actions are pending.
    pub fn has_actions(&self) -> bool {
        !self.actions.is_empty()
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Publish on this node's stream: assign the next global sequence,
    /// route to a shard, and hand the header-framed payload to that
    /// shard's sequencer. Returns the **global** sequence number.
    ///
    /// # Errors
    ///
    /// [`CoreError::PayloadTooLarge`] or [`CoreError::WouldBlock`] (the
    /// routed shard's send buffer is full — the failed attempt does not
    /// consume a global sequence number or perturb routing).
    pub fn publish(&mut self, payload: Bytes) -> Result<SeqNo, CoreError> {
        self.publish_routed(payload, None)
    }

    /// [`ShardedEngine::publish`] with a routing key: under
    /// [`RoutePolicy::KeyHash`], all publishes sharing `key` land on one
    /// shard (and therefore stay FIFO relative to each other even before
    /// global reassembly).
    pub fn publish_with_key(&mut self, payload: Bytes, key: &[u8]) -> Result<SeqNo, CoreError> {
        self.publish_routed(payload, Some(key))
    }

    fn publish_routed(&mut self, payload: Bytes, key: Option<&[u8]>) -> Result<SeqNo, CoreError> {
        if payload.len() > self.cfg.options().max_payload_bytes {
            return Err(CoreError::PayloadTooLarge {
                size: payload.len(),
                max: self.cfg.options().max_payload_bytes,
            });
        }
        let shard = self.router.route(key);
        let global = self.agg.peek_next_global();
        let framed = encode_global(global, &payload);
        match self.shards[shard as usize].publish(framed) {
            Ok(_shard_seq) => {
                let out = self.agg.note_published(self.me, shard, global);
                self.emit_agg(out);
                self.drain_shard(shard);
                Ok(global)
            }
            Err(e) => {
                // Only keyless (round-robin) routes advanced the cursor.
                if key.is_none() || self.router.policy() == RoutePolicy::RoundRobin {
                    self.router.rollback_last();
                }
                Err(e)
            }
        }
    }

    /// Highest global sequence number assigned to this node's stream.
    pub fn last_published(&self) -> SeqNo {
        self.agg.last_published()
    }

    /// Feed an incoming wire message for shard sub-stream `shard`.
    pub fn on_message(&mut self, now_nanos: u64, shard: u16, from: NodeId, msg: WireMsg) {
        self.shards[shard as usize].on_message(now_nanos, from, msg);
        self.drain_shard(shard);
    }

    // ------------------------------------------------------------------
    // Predicates, frontiers, waits
    // ------------------------------------------------------------------

    /// Register a predicate on every shard and make the aggregated key
    /// queryable.
    ///
    /// # Errors
    ///
    /// Propagates DSL compile errors (deterministic, so no shard
    /// registers when the first fails).
    pub fn register_predicate(
        &mut self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        for shard in &mut self.shards {
            shard.register_predicate(stream, key, source)?;
        }
        self.agg.ensure_key(stream, key);
        self.sync_key(stream, key);
        self.drain_all_shards();
        Ok(())
    }

    /// Replace the predicate under `key` on every shard, bumping the
    /// generation everywhere in lockstep.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] or a DSL compile error.
    pub fn change_predicate(
        &mut self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        for shard in &mut self.shards {
            shard.change_predicate(stream, key, source)?;
        }
        self.sync_key(stream, key);
        self.drain_all_shards();
        Ok(())
    }

    /// Remove a predicate everywhere; pending node-level waiters complete
    /// immediately.
    pub fn unregister_predicate(&mut self, stream: NodeId, key: &str) {
        for shard in &mut self.shards {
            shard.unregister_predicate(stream, key);
        }
        let out = self.agg.unregister_key(stream, key);
        self.emit_agg(out);
        self.drain_all_shards();
    }

    /// Current aggregated `(frontier, generation)` of a predicate, in
    /// global sequence numbers.
    pub fn stability_frontier(&self, stream: NodeId, key: &str) -> Option<(SeqNo, u32)> {
        self.agg.frontier(stream, key)
    }

    /// Wait for the aggregated frontier of `(stream, key)` to reach the
    /// global sequence `seq`; completion surfaces as
    /// [`ShardedAction::WaitDone`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] for an unregistered key.
    pub fn waitfor(
        &mut self,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
    ) -> Result<WaitToken, CoreError> {
        let (token, out) = self.agg.waitfor(stream, key, seq)?;
        self.emit_agg(out);
        Ok(token)
    }

    /// Node-level waits still blocked.
    pub fn pending_waiters(&self) -> usize {
        self.agg.pending_waiters()
    }

    /// Register an application-defined stability level on every shard.
    /// The shared registry deduplicates by name, so every shard returns
    /// the same id.
    pub fn register_ack_type(&mut self, name: &str) -> AckTypeId {
        let mut ty = AckTypeId(0);
        for shard in &mut self.shards {
            ty = shard.register_ack_type(name);
        }
        self.drain_all_shards();
        ty
    }

    /// Report stability level `ty` for `stream` up to the **global**
    /// sequence `seq`. The report is translated into per-shard sequence
    /// numbers through the mapping this node has learned so far
    /// (conservative: unknown suffixes are simply not reported yet).
    pub fn report_stability(&mut self, stream: NodeId, ty: AckTypeId, seq: SeqNo) {
        for s in 0..self.num_shards() {
            let shard_seq = self.agg.shard_progress(stream, s, seq);
            if shard_seq > 0 {
                self.shards[s as usize].report_stability(stream, ty, shard_seq);
            }
        }
        self.drain_all_shards();
    }

    // ------------------------------------------------------------------
    // Timers and membership
    // ------------------------------------------------------------------

    /// Flush coalesced ACKs on every shard.
    pub fn on_ack_flush(&mut self) {
        for shard in &mut self.shards {
            shard.on_ack_flush();
        }
        self.drain_all_shards();
    }

    /// Heartbeat on every shard sub-stream.
    pub fn on_heartbeat(&mut self) {
        for shard in &mut self.shards {
            shard.on_heartbeat();
        }
        self.drain_all_shards();
    }

    /// Failure detection on every shard.
    pub fn on_failure_check(&mut self, now_nanos: u64) {
        for shard in &mut self.shards {
            shard.on_failure_check(now_nanos);
        }
        self.drain_all_shards();
    }

    /// Retransmission timeout check on every shard.
    pub fn on_retransmit_check(&mut self, now_nanos: u64) {
        for shard in &mut self.shards {
            shard.on_retransmit_check(now_nanos);
        }
        self.drain_all_shards();
    }

    /// State-transfer progress check on every shard (§III-E).
    pub fn on_transfer_tick(&mut self, now_nanos: u64) {
        for shard in &mut self.shards {
            shard.on_transfer_tick(now_nanos);
        }
        self.drain_all_shards();
    }

    /// Start §III-E catch-up on every shard sub-stream: each shard
    /// machine asks its per-shard donors for a snapshot plus retained-log
    /// replay. Resumability is inherited per shard (each shard is a full
    /// `StabilizerNode`). No-op unless `transfer_millis` is configured.
    pub fn begin_catch_up(&mut self, now_nanos: u64) {
        for shard in &mut self.shards {
            shard.begin_catch_up(now_nanos);
        }
        self.drain_all_shards();
    }

    /// Live transfer sessions summed across shards.
    pub fn active_transfers(&self) -> usize {
        self.shards
            .iter()
            .map(StabilizerNode::active_transfers)
            .sum()
    }

    /// True if any shard currently suspects `node`.
    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.suspect_counts[node.0 as usize] > 0
    }

    /// Exclude `node` from every shard's predicates.
    pub fn exclude_node(&mut self, node: NodeId) {
        for shard in &mut self.shards {
            shard.exclude_node(node);
        }
        self.drain_all_shards();
    }

    /// Reinstate `node` into every shard's predicates.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's restore error.
    pub fn reinstate_node(&mut self, node: NodeId) -> Result<(), CoreError> {
        for shard in &mut self.shards {
            shard.reinstate_node(node)?;
        }
        self.drain_all_shards();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Traffic counters summed across shards. `data_bytes_sent` includes
    /// the 8-byte global header each sharded payload carries.
    pub fn metrics(&self) -> Metrics {
        let mut total = Metrics::default();
        for shard in &self.shards {
            let m = shard.metrics();
            total.data_msgs_sent += m.data_msgs_sent;
            total.data_bytes_sent += m.data_bytes_sent;
            total.control_msgs_sent += m.control_msgs_sent;
            total.acks_sent += m.acks_sent;
            total.deliveries += m.deliveries;
            total.acks_received += m.acks_received;
            total.acks_stale += m.acks_stale;
            total.retransmits += m.retransmits;
            total.predicate_evals += m.predicate_evals;
            total.frontier_updates += m.frontier_updates;
            total.transfer_requests += m.transfer_requests;
            total.transfer_chunks_sent += m.transfer_chunks_sent;
            total.transfer_bytes_sent += m.transfer_bytes_sent;
            total.transfer_chunks_received += m.transfer_chunks_received;
            total.transfer_fast_forwards += m.transfer_fast_forwards;
        }
        total
    }

    /// One shard's own traffic counters.
    pub fn shard_metrics(&self, shard: u16) -> Metrics {
        self.shards[shard as usize].metrics()
    }

    /// Frontier blame for every `(shard, stream, key)`: each shard
    /// machine diagnoses its own sub-stream (sequence numbers in the
    /// reports are per-shard). Render with
    /// [`stabilizer_core::render_sharded_stall_reports_json`].
    pub fn explain_all(&self) -> Vec<(u16, stabilizer_core::StallReport)> {
        let mut reports = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for report in shard.explain_all() {
                reports.push((s as u16, report));
            }
        }
        reports
    }

    /// Sum of all shard send-buffer occupancies, in bytes.
    pub fn send_buffer_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(StabilizerNode::send_buffer_bytes)
            .sum()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Push each shard's current `(frontier, generation)` for
    /// `(stream, key)` into the aggregator. Used after register/change so
    /// the aggregate adopts the new generation even on shards whose
    /// frontier starts at zero (which emit no update action).
    fn sync_key(&mut self, stream: NodeId, key: &str) {
        for s in 0..self.num_shards() {
            if let Some((seq, generation)) = self.shards[s as usize].stability_frontier(stream, key)
            {
                let out = self.agg.on_shard_frontier(
                    s,
                    &FrontierUpdate {
                        stream,
                        key: key.to_owned(),
                        seq,
                        generation,
                    },
                );
                self.emit_agg(out);
            }
        }
    }

    /// Drain one shard's pending actions through the aggregator.
    pub fn drain_shard(&mut self, shard: u16) {
        self.refresh_transfer_mark(shard);
        let actions = self.shards[shard as usize].take_actions();
        for action in actions {
            self.process_shard_action(shard, action);
        }
    }

    /// Keep the shard machine's outgoing snapshot mark equal to the
    /// global of its last non-replayable own-stream message, so a
    /// requester learns which globals fell in the skipped prefix
    /// (`ShardedFrontier::fast_forward_origin` relies on every skipped
    /// global being ≤ mark and every replayable one being > mark).
    fn refresh_transfer_mark(&mut self, shard: u16) {
        let floor = self.shards[shard as usize]
            .first_replayable()
            .saturating_sub(1);
        if floor == 0 {
            return;
        }
        let globals = self.agg.shard_globals(self.me, shard);
        if let Some(&mark) = globals.get(floor as usize - 1) {
            self.shards[shard as usize].set_app_mark(mark);
        }
    }

    fn drain_all_shards(&mut self) {
        for s in 0..self.num_shards() {
            self.drain_shard(s);
        }
    }

    fn emit_agg(&mut self, out: AggOutput) {
        for update in out.updates {
            self.actions.push(ShardedAction::Frontier(update));
        }
        for token in out.completed {
            self.actions.push(ShardedAction::WaitDone { token });
        }
    }

    fn process_shard_action(&mut self, shard: u16, action: Action) {
        match action {
            Action::Send { to, msg } => {
                self.actions.push(ShardedAction::Send { shard, to, msg });
            }
            Action::Deliver {
                origin,
                seq,
                payload,
            } => {
                self.actions.push(ShardedAction::ShardDeliver {
                    shard,
                    origin,
                    seq,
                    len: payload.len().saturating_sub(GLOBAL_HEADER),
                });
                let (ready, out) = self
                    .agg
                    .on_shard_deliver(shard, origin, &payload)
                    .expect("sharded payload carried no global-sequence header");
                for (global, app_payload) in ready {
                    self.actions.push(ShardedAction::Deliver {
                        origin,
                        seq: global,
                        payload: app_payload,
                    });
                }
                self.emit_agg(out);
            }
            Action::Frontier(update) => {
                let out = self.agg.on_shard_frontier(shard, &update);
                self.actions
                    .push(ShardedAction::ShardFrontier { shard, update });
                self.emit_agg(out);
            }
            // Shard-level waits are never created; node-level waits live
            // in the aggregator.
            Action::WaitDone { .. } => {}
            Action::Suspected { node } => {
                let c = &mut self.suspect_counts[node.0 as usize];
                *c += 1;
                if *c == 1 {
                    self.actions.push(ShardedAction::Suspected { node });
                }
            }
            Action::Recovered { node } => {
                let c = &mut self.suspect_counts[node.0 as usize];
                *c = c.saturating_sub(1);
                if *c == 0 {
                    self.actions.push(ShardedAction::Recovered { node });
                }
            }
            Action::PredicateBroken { stream, key } => {
                if shard == 0 {
                    self.actions
                        .push(ShardedAction::PredicateBroken { stream, key });
                }
            }
            Action::CatchUp {
                stream,
                seq,
                app_mark,
            } => {
                let (ready, out) = self.agg.fast_forward_origin(stream, shard, seq, app_mark);
                self.actions.push(ShardedAction::CatchUp {
                    shard,
                    stream,
                    seq,
                    global: self.agg.delivered_global(stream),
                });
                for (global, payload) in ready {
                    self.actions.push(ShardedAction::Deliver {
                        origin: stream,
                        seq: global,
                        payload,
                    });
                }
                self.emit_agg(out);
            }
        }
    }
}
