//! Deterministic publish routing across stream shards.
//!
//! The router is pure state-machine code: given the same sequence of
//! `route` calls (and keys), it produces the same shard assignment in
//! every process, which is what keeps sharded seed replay byte-identical
//! — there is no RNG and no dependence on wall time or thread identity.

/// How publishes are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Cycle through shards in order. Balances perfectly under uniform
    /// publish rates and is the default for keyless streams.
    RoundRobin,
    /// FNV-1a hash of the routing key modulo the shard count, so all
    /// messages of one key share a shard (per-key FIFO within the shard).
    /// Keyless publishes fall back to round-robin.
    KeyHash,
}

/// Assigns each publish to one of `shards` stream shards.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: u16,
    policy: RoutePolicy,
    rr: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `key` — the stable, dependency-free hash used for
/// key-affine routing.
pub fn fnv1a(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    pub fn new(shards: u16, policy: RoutePolicy) -> Self {
        ShardRouter {
            shards: shards.max(1),
            policy,
            rr: 0,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Pick the shard for the next publish. `key` is consulted only
    /// under [`RoutePolicy::KeyHash`]; `None` (or round-robin policy)
    /// cycles deterministically.
    pub fn route(&mut self, key: Option<&[u8]>) -> u16 {
        if self.policy == RoutePolicy::KeyHash {
            if let Some(k) = key {
                return (fnv1a(k) % u64::from(self.shards)) as u16;
            }
        }
        let s = (self.rr % u64::from(self.shards)) as u16;
        self.rr += 1;
        s
    }

    /// Undo the round-robin advance of the last keyless [`ShardRouter::route`]
    /// call — used when the routed publish failed (backpressure), so the
    /// failed attempt does not perturb the assignment of later publishes.
    pub fn rollback_last(&mut self) {
        self.rr = self.rr.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut r = ShardRouter::new(3, RoutePolicy::RoundRobin);
        let got: Vec<u16> = (0..7).map(|_| r.route(None)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn key_hash_is_sticky_and_keyless_falls_back() {
        let mut r = ShardRouter::new(4, RoutePolicy::KeyHash);
        let a1 = r.route(Some(b"alpha"));
        let a2 = r.route(Some(b"alpha"));
        assert_eq!(a1, a2);
        // Keyless publishes interleaved with keyed ones keep cycling.
        let k1 = r.route(None);
        let _ = r.route(Some(b"alpha"));
        let k2 = r.route(None);
        assert_eq!((k1 + 1) % 4, k2 % 4);
    }

    #[test]
    fn rollback_repeats_the_shard() {
        let mut r = ShardRouter::new(2, RoutePolicy::RoundRobin);
        assert_eq!(r.route(None), 0);
        let s = r.route(None);
        r.rollback_last();
        assert_eq!(r.route(None), s);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut r = ShardRouter::new(0, RoutePolicy::RoundRobin);
        assert_eq!(r.shards(), 1);
        assert_eq!(r.route(None), 0);
    }
}
