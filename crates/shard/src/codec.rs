//! The global-sequence payload header.
//!
//! A sharded node assigns every publish a node-level **global** sequence
//! number in addition to the per-shard sequence the shard's own
//! sequencer hands out. The global number rides in front of the payload
//! (8 bytes, little-endian), so every mirror learns the
//! `(shard, shard_seq) → global` mapping exactly when the shard machine
//! delivers the message — no separate mapping channel, no extra
//! round-trips — and can reassemble the S per-shard FIFO streams back
//! into one global-FIFO stream before the application upcall.

use bytes::Bytes;
use stabilizer_core::{CoreError, SeqNo};

/// Bytes prepended to every sharded payload.
pub const GLOBAL_HEADER: usize = 8;

/// Prepend the global sequence header to `payload`.
pub fn encode_global(global: SeqNo, payload: &Bytes) -> Bytes {
    let mut v = Vec::with_capacity(GLOBAL_HEADER + payload.len());
    v.extend_from_slice(&global.to_le_bytes());
    v.extend_from_slice(payload);
    Bytes::from(v)
}

/// Split a framed payload into its global sequence number and the
/// application payload (zero-copy slice).
///
/// # Errors
///
/// [`CoreError::Wire`] if the buffer is shorter than the header.
pub fn decode_global(framed: &Bytes) -> Result<(SeqNo, Bytes), CoreError> {
    if framed.len() < GLOBAL_HEADER {
        return Err(CoreError::Wire(format!(
            "sharded payload of {} bytes lacks the global-seq header",
            framed.len()
        )));
    }
    let global = u64::from_le_bytes(framed[..GLOBAL_HEADER].try_into().unwrap());
    Ok((global, framed.slice(GLOBAL_HEADER..)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let payload = Bytes::from_static(b"payload");
        let framed = encode_global(42, &payload);
        assert_eq!(framed.len(), GLOBAL_HEADER + payload.len());
        let (g, p) = decode_global(&framed).unwrap();
        assert_eq!(g, 42);
        assert_eq!(p, payload);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let framed = encode_global(u64::MAX, &Bytes::new());
        let (g, p) = decode_global(&framed).unwrap();
        assert_eq!(g, u64::MAX);
        assert!(p.is_empty());
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(decode_global(&Bytes::from_static(b"1234567")).is_err());
    }
}
