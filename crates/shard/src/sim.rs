//! Deterministic-simulator driver for the sharded engine.
//!
//! Mirrors `stabilizer_core::sim_driver::SimNode` one-for-one (same timer
//! tags, same re-arm cadence, same log shapes) so sharded scenarios slot
//! into the existing experiment and chaos harnesses. All shard
//! sub-streams share one simulated link per node pair: a [`ShardMsg`]
//! envelope carries the shard index plus the inner wire message, and the
//! interleave across shards is fully determined by the simulator's
//! event order — same seed, same byte stream, in any process.

use crate::engine::{ShardedAction, ShardedEngine};
use crate::router::RoutePolicy;
use bytes::Bytes;
use stabilizer_core::sim_driver::{AppHooks, NoHooks};
use stabilizer_core::{ClusterConfig, CoreError, FrontierUpdate, WaitToken, WireMsg};
use stabilizer_dsl::{AckTypeId, AckTypeRegistry, NodeId, SeqNo};
use stabilizer_netsim::{Actor, Ctx, MsgSize, SimDuration, SimTime, TimerId};
use std::sync::Arc;

const TAG_ACK_FLUSH: u64 = 1;
const TAG_HEARTBEAT: u64 = 2;
const TAG_FAILURE: u64 = 3;
const TAG_RETRANSMIT: u64 = 4;
const TAG_TRANSFER: u64 = 5;

/// Wire envelope multiplexing shard sub-streams over one simulated link.
#[derive(Debug, Clone)]
pub struct ShardMsg {
    /// Destination shard index.
    pub shard: u16,
    /// The inner protocol message.
    pub msg: WireMsg,
}

impl MsgSize for ShardMsg {
    fn wire_size(&self) -> usize {
        // The shard index costs two bytes on the wire, exactly as in the
        // TCP runtime's sharded frame header.
        self.msg.wire_size() + 2
    }
}

/// A sharded Stabilizer node embedded in the simulator.
pub struct ShardedSimNode<H: AppHooks = NoHooks> {
    engine: ShardedEngine,
    /// Application hooks (invoked for node-level events only).
    pub hooks: H,
    /// Timestamped node-level (aggregated) frontier log.
    pub frontier_log: Vec<(SimTime, FrontierUpdate)>,
    /// Timestamped node-level delivery log in global FIFO order:
    /// `(time, origin, global_seq, payload_len)`.
    pub delivery_log: Vec<(SimTime, NodeId, SeqNo, usize)>,
    /// Completed node-level wait tokens.
    pub completed_waits: Vec<(SimTime, WaitToken)>,
    /// Suspected peers (deduplicated across shards).
    pub suspected_log: Vec<(SimTime, NodeId)>,
    /// Peers that came back after suspicion.
    pub recovered_log: Vec<(SimTime, NodeId)>,
    /// Out-of-band global fast-forwards (§III-E state transfer):
    /// `(time, stream, delivered_global_after_jump)`.
    pub catchup_log: Vec<(SimTime, NodeId, SeqNo)>,
    /// Per shard: that shard's own frontier log (per-shard sequence
    /// space) — consumed by per-shard invariant checking and telemetry.
    pub shard_frontier_logs: Vec<Vec<(SimTime, FrontierUpdate)>>,
    /// Per shard: that shard's own delivery log (per-shard sequence
    /// space), before global reassembly.
    pub shard_delivery_logs: Vec<Vec<(SimTime, NodeId, SeqNo, usize)>>,
    record_deliveries: bool,
}

impl<H: AppHooks> ShardedSimNode<H> {
    /// Wrap an engine with hooks.
    pub fn new(engine: ShardedEngine, hooks: H) -> Self {
        let shards = engine.num_shards() as usize;
        ShardedSimNode {
            engine,
            hooks,
            frontier_log: Vec::new(),
            delivery_log: Vec::new(),
            completed_waits: Vec::new(),
            suspected_log: Vec::new(),
            recovered_log: Vec::new(),
            catchup_log: Vec::new(),
            shard_frontier_logs: vec![Vec::new(); shards],
            shard_delivery_logs: vec![Vec::new(); shards],
            record_deliveries: true,
        }
    }

    /// Disable the delivery logs (node-level and per-shard) for
    /// long-running throughput scenarios.
    pub fn without_delivery_log(mut self) -> Self {
        self.record_deliveries = false;
        self
    }

    /// Whether the delivery logs are being populated.
    pub fn records_deliveries(&self) -> bool {
        self.record_deliveries
    }

    /// Access the underlying engine (for assertions).
    pub fn inner(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Mutable engine access for *query-only* operations outside the
    /// event loop; action-emitting calls go through the `*_in` methods.
    pub fn inner_mut(&mut self) -> &mut ShardedEngine {
        &mut self.engine
    }

    /// Publish inside the simulation; returns the global sequence.
    pub fn publish_in(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg>,
        payload: Bytes,
    ) -> Result<SeqNo, CoreError> {
        let seq = self.engine.publish(payload)?;
        self.drain(ctx);
        Ok(seq)
    }

    /// Publish with a routing key inside the simulation.
    pub fn publish_with_key_in(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg>,
        payload: Bytes,
        key: &[u8],
    ) -> Result<SeqNo, CoreError> {
        let seq = self.engine.publish_with_key(payload, key)?;
        self.drain(ctx);
        Ok(seq)
    }

    /// Register a predicate (on every shard) inside the simulation.
    pub fn register_predicate_in(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg>,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        self.engine.register_predicate(stream, key, source)?;
        self.drain(ctx);
        Ok(())
    }

    /// Change a predicate inside the simulation.
    pub fn change_predicate_in(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg>,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        self.engine.change_predicate(stream, key, source)?;
        self.drain(ctx);
        Ok(())
    }

    /// `waitfor` on the aggregated frontier inside the simulation.
    pub fn waitfor_in(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg>,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
    ) -> Result<WaitToken, CoreError> {
        let token = self.engine.waitfor(stream, key, seq)?;
        self.drain(ctx);
        Ok(token)
    }

    /// Report application-defined stability (global sequence numbers)
    /// inside the simulation.
    pub fn report_stability_in(
        &mut self,
        ctx: &mut Ctx<'_, ShardMsg>,
        stream: NodeId,
        ty: AckTypeId,
        seq: SeqNo,
    ) {
        self.engine.report_stability(stream, ty, seq);
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, ShardMsg>) {
        let actions = self.engine.take_actions();
        self.process_actions(ctx, actions);
    }

    /// Execute a batch of externally drained [`ShardedAction`]s through
    /// this driver's bookkeeping (sends, hooks, logs).
    pub fn process_actions(&mut self, ctx: &mut Ctx<'_, ShardMsg>, actions: Vec<ShardedAction>) {
        for action in actions {
            match action {
                ShardedAction::Send { shard, to, msg } => {
                    ctx.send(to.0 as usize, ShardMsg { shard, msg });
                }
                ShardedAction::Deliver {
                    origin,
                    seq,
                    payload,
                } => {
                    self.hooks.on_deliver(ctx.now(), origin, seq, &payload);
                    if self.record_deliveries {
                        self.delivery_log
                            .push((ctx.now(), origin, seq, payload.len()));
                    }
                }
                ShardedAction::Frontier(update) => {
                    self.hooks.on_frontier(ctx.now(), &update);
                    self.frontier_log.push((ctx.now(), update));
                }
                ShardedAction::WaitDone { token } => {
                    self.hooks.on_wait_done(ctx.now(), token);
                    self.completed_waits.push((ctx.now(), token));
                }
                ShardedAction::Suspected { node } => {
                    self.hooks.on_suspected(ctx.now(), node);
                    self.suspected_log.push((ctx.now(), node));
                }
                ShardedAction::Recovered { node } => {
                    self.recovered_log.push((ctx.now(), node));
                }
                ShardedAction::CatchUp { stream, global, .. } => {
                    self.hooks.on_catch_up(ctx.now(), stream, global);
                    self.catchup_log.push((ctx.now(), stream, global));
                }
                ShardedAction::PredicateBroken { .. } => {}
                ShardedAction::ShardFrontier { shard, update } => {
                    self.shard_frontier_logs[shard as usize].push((ctx.now(), update));
                }
                ShardedAction::ShardDeliver {
                    shard,
                    origin,
                    seq,
                    len,
                } => {
                    if self.record_deliveries {
                        self.shard_delivery_logs[shard as usize].push((
                            ctx.now(),
                            origin,
                            seq,
                            len,
                        ));
                    }
                }
            }
        }
    }
}

impl<H: AppHooks> Actor for ShardedSimNode<H> {
    type Msg = ShardMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ShardMsg>) {
        let opts = self.engine.config().options().clone();
        if opts.ack_flush_micros > 0 {
            ctx.set_timer(
                SimDuration::from_micros(opts.ack_flush_micros),
                TAG_ACK_FLUSH,
            );
        }
        if opts.heartbeat_millis > 0 {
            ctx.set_timer(
                SimDuration::from_millis(opts.heartbeat_millis),
                TAG_HEARTBEAT,
            );
        }
        if opts.failure_timeout_millis > 0 {
            ctx.set_timer(
                SimDuration::from_millis(opts.failure_timeout_millis / 2),
                TAG_FAILURE,
            );
        }
        if opts.retransmit_millis > 0 {
            ctx.set_timer(
                SimDuration::from_millis((opts.retransmit_millis / 2).max(1)),
                TAG_RETRANSMIT,
            );
        }
        if opts.transfer_millis > 0 {
            ctx.set_timer(
                SimDuration::from_millis((opts.transfer_millis / 2).max(1)),
                TAG_TRANSFER,
            );
        }
        // A restarted engine may have queued catch-up requests during
        // construction; flush them now that the context exists.
        self.drain(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ShardMsg>, from: usize, msg: ShardMsg) {
        if msg.shard >= self.engine.num_shards() {
            return; // malformed shard index; drop rather than panic
        }
        self.engine.on_message(
            ctx.now().as_nanos(),
            msg.shard,
            NodeId(from as u16),
            msg.msg,
        );
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ShardMsg>, _timer: TimerId, tag: u64) {
        let opts = self.engine.config().options().clone();
        match tag {
            TAG_ACK_FLUSH => {
                self.engine.on_ack_flush();
                ctx.set_timer(
                    SimDuration::from_micros(opts.ack_flush_micros.max(1)),
                    TAG_ACK_FLUSH,
                );
            }
            TAG_HEARTBEAT => {
                self.engine.on_heartbeat();
                ctx.set_timer(
                    SimDuration::from_millis(opts.heartbeat_millis.max(1)),
                    TAG_HEARTBEAT,
                );
            }
            TAG_FAILURE => {
                self.engine.on_failure_check(ctx.now().as_nanos());
                ctx.set_timer(
                    SimDuration::from_millis((opts.failure_timeout_millis / 2).max(1)),
                    TAG_FAILURE,
                );
            }
            TAG_RETRANSMIT => {
                self.engine.on_retransmit_check(ctx.now().as_nanos());
                ctx.set_timer(
                    SimDuration::from_millis((opts.retransmit_millis / 2).max(1)),
                    TAG_RETRANSMIT,
                );
            }
            TAG_TRANSFER => {
                self.engine.on_transfer_tick(ctx.now().as_nanos());
                ctx.set_timer(
                    SimDuration::from_millis((opts.transfer_millis / 2).max(1)),
                    TAG_TRANSFER,
                );
            }
            _ => {}
        }
        self.drain(ctx);
    }
}

/// Build a ready-to-run sharded simulated cluster: one
/// [`ShardedSimNode`] per topology node (each with
/// `cfg.options().shards` shards) over the given network, with a shared
/// ACK-type registry.
///
/// # Errors
///
/// Fails if a configured predicate does not compile.
///
/// # Panics
///
/// Panics if `net.len()` differs from the cluster topology size.
pub fn build_sharded_cluster(
    cfg: &ClusterConfig,
    net: stabilizer_netsim::NetTopology,
    seed: u64,
    policy: RoutePolicy,
) -> Result<stabilizer_netsim::Simulation<ShardedSimNode>, CoreError> {
    build_sharded_cluster_with_hooks(cfg, net, seed, policy, |_| NoHooks)
}

/// [`build_sharded_cluster`] with per-node application hooks.
///
/// # Errors
///
/// Fails if a configured predicate does not compile.
///
/// # Panics
///
/// Panics if `net.len()` differs from the cluster topology size.
pub fn build_sharded_cluster_with_hooks<H: AppHooks>(
    cfg: &ClusterConfig,
    net: stabilizer_netsim::NetTopology,
    seed: u64,
    policy: RoutePolicy,
    mut mk_hooks: impl FnMut(usize) -> H,
) -> Result<stabilizer_netsim::Simulation<ShardedSimNode<H>>, CoreError> {
    assert_eq!(
        net.len(),
        cfg.num_nodes(),
        "network and cluster sizes must match"
    );
    let acks = Arc::new(AckTypeRegistry::new());
    let mut nodes = Vec::with_capacity(cfg.num_nodes());
    for i in 0..cfg.num_nodes() {
        let engine = ShardedEngine::new(cfg.clone(), NodeId(i as u16), Arc::clone(&acks), policy)?;
        nodes.push(ShardedSimNode::new(engine, mk_hooks(i)));
    }
    Ok(stabilizer_netsim::Simulation::new(net, nodes, seed))
}
