//! Integration tests for the sharded engine in the deterministic
//! simulator:
//!
//! * end-to-end stability across shards with unchanged node-level
//!   semantics (global FIFO delivery, aggregated frontier, waitfor);
//! * byte-identical seed replay of a sharded scenario;
//! * the stalled-shard regression: the aggregated frontier is pinned by
//!   the slowest shard and never regresses when one shard stalls;
//! * property tests: deterministic routing (same seed ⇒ same shard
//!   assignment) and per-origin-per-shard FIFO under random loss.

use bytes::Bytes;
use proptest::prelude::*;
use stabilizer_core::{ClusterConfig, NodeId, WireMsg};
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};
use stabilizer_shard::{
    build_sharded_cluster, RoutePolicy, ShardedAction, ShardedEngine, ShardedSimNode,
};
use std::fmt::Write as _;
use std::sync::Arc;

const N0: NodeId = NodeId(0);

fn cfg_with_shards(shards: u16) -> ClusterConfig {
    ClusterConfig::parse(&format!(
        "az A a b\naz B c\npredicate All MIN($ALLWNODES-$MYWNODE)\noption shards {shards}\n"
    ))
    .unwrap()
}

fn mesh(n: usize) -> NetTopology {
    NetTopology::full_mesh(n, SimDuration::from_millis(5), 1e9)
}

#[test]
fn sharded_end_to_end_reaches_full_stability() {
    let cfg = cfg_with_shards(4);
    let mut sim = build_sharded_cluster(&cfg, mesh(3), 7, RoutePolicy::RoundRobin).unwrap();
    // Mirrors explicitly track the origin's stream (configured predicates
    // only cover each node's own stream, as in the unsharded engine).
    for i in 1..3 {
        sim.with_ctx(i, |n, ctx| {
            n.register_predicate_in(ctx, N0, "All", "MIN($ALLWNODES-$MYWNODE)")
        })
        .unwrap();
    }
    let total = 40u64;
    for i in 0..total {
        let seq = sim
            .with_ctx(0, |n, ctx| {
                n.publish_in(ctx, Bytes::from(vec![i as u8; 64]))
            })
            .unwrap();
        assert_eq!(seq, i + 1, "publish returns global sequence numbers");
    }
    let token = sim
        .with_ctx(0, |n, ctx| n.waitfor_in(ctx, N0, "All", total))
        .unwrap();
    sim.run_until_idle();

    // The aggregated frontier reaches the full global prefix everywhere.
    for i in 0..3 {
        assert_eq!(
            sim.actor(i).inner().stability_frontier(N0, "All"),
            Some((total, 0)),
            "node {i}"
        );
    }
    // The waitfor completed.
    assert!(sim
        .actor(0)
        .completed_waits
        .iter()
        .any(|(_, t)| *t == token));
    // Mirrors delivered the stream in global FIFO order with the header
    // stripped (payload length is the application's 64 bytes).
    for i in 1..3 {
        let seqs: Vec<u64> = sim
            .actor(i)
            .delivery_log
            .iter()
            .filter(|(_, o, _, _)| *o == N0)
            .map(|(_, _, s, _)| *s)
            .collect();
        assert_eq!(seqs, (1..=total).collect::<Vec<u64>>(), "node {i} FIFO");
        assert!(sim
            .actor(i)
            .delivery_log
            .iter()
            .all(|(_, _, _, len)| *len == 64));
    }
    // Every shard carried traffic (round-robin actually spread the load).
    let origin = sim.actor(0).inner();
    for s in 0..4 {
        assert_eq!(origin.shard_metrics(s).data_msgs_sent, (total / 4) * 2);
    }
    // Publishes landed in the origin's send buffers and fully reclaimed.
    assert_eq!(origin.send_buffer_bytes(), 0);
}

#[test]
fn sharded_placement_scopes_streams_to_replicas() {
    // Six nodes; stream a lives on {a, b, c} only. The sharded engine
    // must keep every sub-stream of a off the non-replicas, and the
    // aggregated frontier must stabilize from replica acks alone.
    let cfg = ClusterConfig::parse(
        "az A a b c\naz B d e f\nreplicate a a b c\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\noption shards 4\n",
    )
    .unwrap();
    let mut sim = build_sharded_cluster(&cfg, mesh(6), 11, RoutePolicy::RoundRobin).unwrap();
    for i in 1..3 {
        sim.with_ctx(i, |n, ctx| {
            n.register_predicate_in(ctx, N0, "All", "MIN($ALLWNODES-$MYWNODE)")
        })
        .unwrap();
    }
    let total = 20u64;
    for i in 0..total {
        sim.with_ctx(0, |n, ctx| {
            n.publish_in(ctx, Bytes::from(vec![i as u8; 32]))
        })
        .unwrap();
    }
    sim.run_until_idle();
    // Replicas converge on the full global prefix.
    for i in 0..3 {
        assert_eq!(
            sim.actor(i).inner().stability_frontier(N0, "All"),
            Some((total, 0)),
            "replica {i}"
        );
    }
    // Non-replicas saw nothing of stream a: no deliveries, no ack cells.
    for i in 3..6 {
        assert!(
            sim.actor(i)
                .delivery_log
                .iter()
                .all(|(_, o, _, _)| *o != N0),
            "node {i} must not deliver stream a"
        );
        for s in 0..4 {
            assert_eq!(sim.actor(i).inner().shard_metrics(s).deliveries, 0);
        }
    }
    // And the origin never addressed them.
    assert_eq!(
        sim.actor(0).inner().placement().replicas(N0),
        &[NodeId(0), NodeId(1), NodeId(2)]
    );
}

/// Flatten every observable log of a simulation into one string — the
/// "byte stream" compared across replays.
fn transcript(sim: &stabilizer_netsim::Simulation<ShardedSimNode>) -> String {
    let mut out = String::new();
    for i in 0..3 {
        let a = sim.actor(i);
        for (t, u) in &a.frontier_log {
            writeln!(
                out,
                "{i} F {t:?} {} {} {} {}",
                u.stream.0, u.key, u.seq, u.generation
            )
            .unwrap();
        }
        for (t, o, s, l) in &a.delivery_log {
            writeln!(out, "{i} D {t:?} {} {s} {l}", o.0).unwrap();
        }
        for (shard, log) in a.shard_delivery_logs.iter().enumerate() {
            for (t, o, s, l) in log {
                writeln!(out, "{i} d{shard} {t:?} {} {s} {l}", o.0).unwrap();
            }
        }
        for (shard, log) in a.shard_frontier_logs.iter().enumerate() {
            for (t, u) in log {
                writeln!(
                    out,
                    "{i} f{shard} {t:?} {} {} {} {}",
                    u.stream.0, u.key, u.seq, u.generation
                )
                .unwrap();
            }
        }
    }
    out
}

fn replay_once(seed: u64) -> String {
    let cfg = cfg_with_shards(4);
    let mut sim = build_sharded_cluster(&cfg, mesh(3), seed, RoutePolicy::KeyHash).unwrap();
    for i in 0..30u64 {
        let key = format!("user-{}", i % 7);
        sim.with_ctx(0, |n, ctx| {
            n.publish_with_key_in(ctx, Bytes::from(vec![i as u8; 32]), key.as_bytes())
        })
        .unwrap();
        if i % 3 == 0 {
            sim.run_for(SimDuration::from_millis(2));
        }
    }
    sim.run_until_idle();
    transcript(&sim)
}

#[test]
fn seed_replay_is_byte_identical() {
    let a = replay_once(42);
    let b = replay_once(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the same transcript");
}

/// Hand-driven two-engine harness that lets a test withhold (stall) one
/// shard's data sub-stream while everything else flows.
struct Pair {
    a: ShardedEngine,
    b: ShardedEngine,
    /// Withheld shard-`stall` Data messages from a → b, in order.
    parked: Vec<(u16, WireMsg)>,
    stall: Option<u16>,
    now: u64,
}

impl Pair {
    fn new(cfg: &ClusterConfig, stall: Option<u16>) -> Self {
        let acks = Arc::new(stabilizer_core::AckTypeRegistry::new());
        Pair {
            a: ShardedEngine::new(
                cfg.clone(),
                NodeId(0),
                acks.clone(),
                RoutePolicy::RoundRobin,
            )
            .unwrap(),
            b: ShardedEngine::new(cfg.clone(), NodeId(1), acks, RoutePolicy::RoundRobin).unwrap(),
            parked: Vec::new(),
            stall,
            now: 0,
        }
    }

    /// Shuttle messages both ways until quiescent, parking stalled-shard
    /// data messages. Returns node-level frontier updates observed at A.
    fn settle(&mut self) -> Vec<u64> {
        let mut frontiers = Vec::new();
        loop {
            self.now += 1;
            let mut moved = false;
            for act in self.a.take_actions() {
                match act {
                    ShardedAction::Send { shard, to, msg } => {
                        assert_eq!(to, NodeId(1));
                        let is_data = matches!(msg, WireMsg::Data { .. });
                        if is_data && Some(shard) == self.stall {
                            self.parked.push((shard, msg));
                        } else {
                            self.b.on_message(self.now, shard, NodeId(0), msg);
                            moved = true;
                        }
                    }
                    ShardedAction::Frontier(u) => frontiers.push(u.seq),
                    _ => {}
                }
            }
            for act in self.b.take_actions() {
                if let ShardedAction::Send { shard, to, msg } = act {
                    assert_eq!(to, NodeId(0));
                    self.a.on_message(self.now, shard, NodeId(1), msg);
                    moved = true;
                }
            }
            if !moved && !self.a.has_actions() && !self.b.has_actions() {
                return frontiers;
            }
        }
    }

    /// Release the stalled shard and deliver everything parked.
    fn unstall(&mut self) {
        self.stall = None;
        for (shard, msg) in std::mem::take(&mut self.parked) {
            self.now += 1;
            self.b.on_message(self.now, shard, NodeId(0), msg);
        }
    }
}

#[test]
fn stalled_shard_pins_aggregate_without_regression() {
    let cfg = ClusterConfig::parse(
        "az A a\naz B b\npredicate All MIN($ALLWNODES-$MYWNODE)\noption shards 2\n",
    )
    .unwrap();
    // Shard 1 is stalled: globals 2 and 4 (round-robin) never reach B.
    let mut pair = Pair::new(&cfg, Some(1));
    for i in 0..4u64 {
        assert_eq!(
            pair.a.publish(Bytes::from(vec![i as u8; 16])).unwrap(),
            i + 1
        );
    }
    let mut frontiers = pair.settle();
    // Shard 0 fully acked globals 1 and 3, but the aggregate is pinned at
    // 1 by the stalled shard owning global 2 — and it got there without
    // ever stepping backwards.
    assert!(frontiers.windows(2).all(|w| w[0] <= w[1]), "{frontiers:?}");
    assert_eq!(pair.a.stability_frontier(N0, "All"), Some((1, 0)));
    assert_eq!(pair.b.aggregator().delivered_global(N0), 1);
    assert_eq!(pair.b.aggregator().parked(N0), 1, "global 3 waits for 2");

    // Releasing the stalled shard unlocks the whole prefix monotonically.
    pair.unstall();
    frontiers.extend(pair.settle());
    assert!(frontiers.windows(2).all(|w| w[0] <= w[1]), "{frontiers:?}");
    assert_eq!(pair.a.stability_frontier(N0, "All"), Some((4, 0)));
    assert_eq!(pair.b.aggregator().delivered_global(N0), 4);
    assert_eq!(pair.b.aggregator().parked(N0), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ same shard assignment: replaying an identical keyed
    /// workload in two independently built clusters produces identical
    /// per-shard delivery logs on every mirror.
    #[test]
    fn routing_is_deterministic_across_replays(
        seed in 0u64..500,
        shards in 1u16..6,
        keys in proptest::collection::vec(0u8..20, 1..40),
    ) {
        let run = |policy| {
            let cfg = cfg_with_shards(shards);
            let mut sim = build_sharded_cluster(&cfg, mesh(3), seed, policy).unwrap();
            for (i, k) in keys.iter().enumerate() {
                let key = [*k];
                sim.with_ctx(0, |n, ctx| {
                    n.publish_with_key_in(ctx, Bytes::from(vec![i as u8; 8]), &key)
                })
                .unwrap();
            }
            sim.run_until_idle();
            let mut shape = Vec::new();
            for i in 0..3 {
                shape.push(sim.actor(i).shard_delivery_logs.clone());
            }
            shape
        };
        for policy in [RoutePolicy::KeyHash, RoutePolicy::RoundRobin] {
            prop_assert_eq!(run(policy), run(policy));
        }
    }

    /// Under random loss with retransmission, every mirror still sees
    /// each shard sub-stream in per-shard FIFO order, the reassembled
    /// global stream in global FIFO order, and the aggregated frontier
    /// converges to the full prefix without ever regressing.
    #[test]
    fn per_shard_fifo_and_convergence_under_loss(
        loss_pct in 1u32..25,
        count in 4u64..30,
        shards in 2u16..5,
        seed in 0u64..500,
    ) {
        let opts = stabilizer_core::Options::default()
            .retransmit_millis(40)
            .shards(shards);
        let cfg = ClusterConfig::parse("az A a b\naz B c\npredicate All MIN($ALLWNODES-$MYWNODE)\n")
            .unwrap()
            .with_options(opts);
        let mut sim = build_sharded_cluster(&cfg, mesh(3), seed, RoutePolicy::RoundRobin).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    sim.set_link_loss(a, b, f64::from(loss_pct) / 100.0);
                }
            }
        }
        for i in 0..count {
            sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![i as u8; 100]))).unwrap();
        }
        let deadline = SimTime::ZERO + SimDuration::from_secs(120);
        loop {
            sim.run_for(SimDuration::from_millis(200));
            let (f, _) = sim.actor(0).inner().stability_frontier(N0, "All").unwrap();
            if f >= count || sim.now() >= deadline {
                break;
            }
        }
        let (frontier, _) = sim.actor(0).inner().stability_frontier(N0, "All").unwrap();
        prop_assert_eq!(frontier, count, "stalled under {}% loss", loss_pct);
        for i in 1..3 {
            let actor = sim.actor(i);
            // Global FIFO after reassembly.
            let seqs: Vec<u64> = actor
                .delivery_log
                .iter()
                .filter(|(_, o, _, _)| *o == N0)
                .map(|(_, _, s, _)| *s)
                .collect();
            prop_assert_eq!(&seqs, &(1..=count).collect::<Vec<u64>>(), "node {} global FIFO", i);
            // Per-shard FIFO before reassembly: shard sequences are the
            // contiguous prefix 1.. in order, no gaps, no duplicates.
            for (s, log) in actor.shard_delivery_logs.iter().enumerate() {
                let shard_seqs: Vec<u64> = log
                    .iter()
                    .filter(|(_, o, _, _)| *o == N0)
                    .map(|(_, _, q, _)| *q)
                    .collect();
                let want: Vec<u64> = (1..=shard_seqs.len() as u64).collect();
                prop_assert_eq!(&shard_seqs, &want, "node {} shard {} FIFO", i, s);
            }
            // The aggregated frontier log never regresses within a
            // generation.
            let mut last = 0u64;
            for (_, u) in &actor.frontier_log {
                prop_assert!(u.generation == 0, "no predicate changes in this run");
                prop_assert!(u.seq >= last, "aggregate regressed {} -> {}", last, u.seq);
                last = u.seq;
            }
        }
    }
}
