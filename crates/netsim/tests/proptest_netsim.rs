//! Property tests for the simulator's delivery guarantees: per-link
//! FIFO, message conservation, latency lower bounds, and bandwidth
//! upper bounds — the invariants every experiment in this repository
//! leans on.

use proptest::prelude::*;
use stabilizer_netsim::{
    Actor, Ctx, LinkSpec, MsgSize, NetTopology, SimDuration, SimTime, Simulation,
};

#[derive(Clone, Debug)]
struct Tagged {
    from_batch: usize,
    idx: u64,
    size: usize,
}

impl MsgSize for Tagged {
    fn wire_size(&self) -> usize {
        self.size
    }
}

#[derive(Default)]
struct Sink {
    got: Vec<(SimTime, usize, u64)>,
}

impl Actor for Sink {
    type Msg = Tagged;
    fn on_message(&mut self, ctx: &mut Ctx<'_, Tagged>, _from: usize, msg: Tagged) {
        self.got.push((ctx.now(), msg.from_batch, msg.idx));
    }
}

#[derive(Debug, Clone)]
struct Case {
    n: usize,
    rtt_ms: u64,
    mbit: u64,
    /// batches of (destination, count, size) sent from node 0
    batches: Vec<(usize, u64, usize)>,
    gap_us: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (2usize..=5).prop_flat_map(|n| {
        (
            1u64..100,
            1u64..1000,
            proptest::collection::vec((1..n, 1u64..30, 1usize..4096), 1..6),
            0u64..5000,
        )
            .prop_map(move |(rtt_ms, mbit, batches, gap_us)| Case {
                n,
                rtt_ms,
                mbit,
                batches,
                gap_us,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fifo_conservation_and_latency_bounds(case in arb_case()) {
        let mut net = NetTopology::full_mesh(case.n, SimDuration::ZERO, 1e12);
        let spec = LinkSpec::from_rtt_mbit(case.rtt_ms as f64, case.mbit as f64);
        for a in 0..case.n {
            for b in 0..case.n {
                if a != b {
                    net.set_link(a, b, spec);
                }
            }
        }
        let actors = (0..case.n).map(|_| Sink::default()).collect();
        let mut sim = Simulation::new(net, actors, 1);

        let mut sent_per_dest = vec![0u64; case.n];
        for (batch_no, (dest, count, size)) in case.batches.iter().enumerate() {
            for idx in 0..*count {
                sim.with_ctx(0, |_, ctx| {
                    ctx.send(*dest, Tagged { from_batch: batch_no, idx, size: *size })
                });
            }
            sent_per_dest[*dest] += count;
            sim.run_for(SimDuration::from_micros(case.gap_us));
        }
        sim.run_until_idle();

        let one_way = SimDuration::from_millis_f64(case.rtt_ms as f64 / 2.0);
        for (dest, &sent) in sent_per_dest.iter().enumerate().skip(1) {
            let got = &sim.actor(dest).got;
            // Conservation: everything sent arrives, exactly once.
            prop_assert_eq!(got.len() as u64, sent);
            // FIFO per link: (batch, idx) arrive in send order.
            for w in got.windows(2) {
                prop_assert!((w[0].1, w[0].2) < (w[1].1, w[1].2), "FIFO violated at {dest}");
            }
            // Latency lower bound: nothing beats the propagation delay.
            for (t, batch, _) in got {
                let _ = batch;
                prop_assert!(t.as_nanos() >= one_way.as_nanos());
            }
        }
    }

    #[test]
    fn throughput_never_exceeds_configured_bandwidth(
        mbit in 1u64..500,
        count in 2u64..200,
        size in 64usize..8192,
    ) {
        let mut net = NetTopology::new(&["a", "b"]);
        net.set_symmetric(0, 1, LinkSpec::from_rtt_mbit(1.0, mbit as f64));
        let mut sim = Simulation::new(net, vec![Sink::default(), Sink::default()], 1);
        sim.with_ctx(0, |_, ctx| {
            for idx in 0..count {
                ctx.send(1, Tagged { from_batch: 0, idx, size });
            }
        });
        sim.run_until_idle();
        let got = &sim.actor(1).got;
        prop_assert_eq!(got.len() as u64, count);
        let last = got.last().unwrap().0;
        // Achieved goodput cannot exceed the configured line rate.
        let bits = (count * size as u64 * 8) as f64;
        let achieved = bits / last.as_secs_f64() / 1e6;
        prop_assert!(achieved <= mbit as f64 * 1.001, "achieved {achieved} > configured {mbit}");
    }

    #[test]
    fn identical_seeds_replay_identically(case in arb_case()) {
        let run = |seed: u64| {
            let net = NetTopology::full_mesh(case.n, SimDuration::from_millis(case.rtt_ms / 2 + 1), 1e9);
            let actors = (0..case.n).map(|_| Sink::default()).collect();
            let mut sim = Simulation::new(net, actors, seed);
            for (batch_no, (dest, count, size)) in case.batches.iter().enumerate() {
                for idx in 0..*count {
                    sim.with_ctx(0, |_, ctx| {
                        ctx.send(*dest, Tagged { from_batch: batch_no, idx, size: *size })
                    });
                }
            }
            sim.run_until_idle();
            (1..case.n).map(|i| sim.actor(i).got.clone()).collect::<Vec<_>>()
        };
        let a: Vec<Vec<(SimTime, usize, u64)>> = run(7);
        let b = run(7);
        prop_assert_eq!(a, b);
    }
}

// --- Fault-knob properties: the chaos harness's injection primitives ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `set_link_loss` drops some messages but never reorders the
    /// survivors: per-link FIFO holds for whatever gets through.
    #[test]
    fn loss_drops_but_never_reorders(
        loss in 0.05f64..0.9,
        count in 10u64..150,
        size in 64usize..2048,
        seed in 0u64..1000,
    ) {
        let mut net = NetTopology::new(&["a", "b"]);
        net.set_symmetric(0, 1, LinkSpec::from_rtt_mbit(10.0, 100.0));
        let mut sim = Simulation::new(net, vec![Sink::default(), Sink::default()], seed);
        sim.set_link_loss(0, 1, loss);
        sim.with_ctx(0, |_, ctx| {
            for idx in 0..count {
                ctx.send(1, Tagged { from_batch: 0, idx, size });
            }
        });
        sim.run_until_idle();
        let got = &sim.actor(1).got;
        // Conservation with loss: delivered + dropped == sent.
        prop_assert_eq!(got.len() as u64 + sim.dropped(), count);
        // Survivors keep send order (no reordering, no duplication).
        for w in got.windows(2) {
            prop_assert!(w[0].2 < w[1].2, "loss reordered the survivors");
        }
    }

    /// While a link is administratively down, nothing sent on it is
    /// delivered; re-upping it restores delivery for later sends (the
    /// in-flight-at-cut messages still arrive — cuts are at send time).
    #[test]
    fn downed_link_delivers_nothing(
        count in 1u64..50,
        size in 64usize..2048,
        seed in 0u64..1000,
    ) {
        let mut net = NetTopology::new(&["a", "b"]);
        net.set_symmetric(0, 1, LinkSpec::from_rtt_mbit(10.0, 100.0));
        let mut sim = Simulation::new(net, vec![Sink::default(), Sink::default()], seed);
        sim.set_link_up(0, 1, false);
        sim.with_ctx(0, |_, ctx| {
            for idx in 0..count {
                ctx.send(1, Tagged { from_batch: 0, idx, size });
            }
        });
        sim.run_until_idle();
        prop_assert_eq!(sim.actor(1).got.len(), 0, "downed link leaked a message");
        prop_assert_eq!(sim.dropped(), count);

        // Heal and send a second batch: all of it arrives.
        sim.set_link_up(0, 1, true);
        sim.with_ctx(0, |_, ctx| {
            for idx in 0..count {
                ctx.send(1, Tagged { from_batch: 1, idx, size });
            }
        });
        sim.run_until_idle();
        let got = &sim.actor(1).got;
        prop_assert_eq!(got.len() as u64, count);
        prop_assert!(got.iter().all(|(_, batch, _)| *batch == 1));
    }

    /// `set_egress_limit` caps achieved throughput at the limit even
    /// when the links themselves are much faster.
    #[test]
    fn egress_limit_caps_throughput(
        limit_kbps in 50u64..5000,   // kilobytes/second
        count in 5u64..80,
        size in 256usize..4096,
    ) {
        let mut net = NetTopology::new(&["a", "b"]);
        // A fat, fast link: 1 Gbit, 1 ms RTT. The egress limit must bind.
        net.set_symmetric(0, 1, LinkSpec::from_rtt_mbit(1.0, 1000.0));
        let mut sim = Simulation::new(net, vec![Sink::default(), Sink::default()], 1);
        let limit = limit_kbps as f64 * 1000.0; // bytes/sec
        sim.set_egress_limit(0, limit);
        sim.with_ctx(0, |_, ctx| {
            for idx in 0..count {
                ctx.send(1, Tagged { from_batch: 0, idx, size });
            }
        });
        sim.run_until_idle();
        let got = &sim.actor(1).got;
        prop_assert_eq!(got.len() as u64, count);
        let last = got.last().unwrap().0;
        let achieved = (count * size as u64) as f64 / last.as_secs_f64();
        prop_assert!(
            achieved <= limit * 1.01,
            "achieved {achieved} B/s > egress limit {limit} B/s"
        );
    }
}
