//! # Deterministic discrete-event WAN simulator
//!
//! The paper evaluates Stabilizer on (a) an emulated Amazon EC2 WAN built
//! with `tc`-shaped links between eight physical servers (Table I /
//! Fig. 2) and (b) a real five-site CloudLab deployment (Table II). This
//! crate replaces both with a deterministic discrete-event network
//! simulator: every link has a configurable propagation delay and
//! bandwidth, messages experience serialization delay plus FIFO queueing
//! exactly as they would behind a traffic shaper, and virtual time makes
//! every experiment reproducible bit-for-bit.
//!
//! The model per directed link is the classic store-and-forward shaper:
//!
//! ```text
//! start    = max(now, link.busy_until)        -- FIFO queueing
//! tx_done  = start + size / bandwidth         -- serialization delay
//! arrival  = tx_done + propagation_delay      -- one-way latency
//! ```
//!
//! which is precisely what `tc netem delay X rate Y` imposes.
//!
//! Actors (one per WAN node) implement [`Actor`] and exchange typed
//! messages; the [`Simulation`] drives them in virtual time.
//!
//! ```
//! use stabilizer_netsim::{Actor, Ctx, MsgSize, NetTopology, Simulation, SimDuration};
//!
//! #[derive(Clone)]
//! struct Ping(u32);
//! impl MsgSize for Ping { fn wire_size(&self) -> usize { 64 } }
//!
//! struct Node { got: u32 }
//! impl Actor for Node {
//!     type Msg = Ping;
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: usize, msg: Ping) {
//!         self.got = msg.0;
//!         if ctx.me() == 1 { ctx.send(from, Ping(msg.0 + 1)); }
//!     }
//! }
//!
//! let topo = NetTopology::full_mesh(2, SimDuration::from_millis(10), 1_000_000_000.0);
//! let mut sim = Simulation::new(topo, vec![Node { got: 0 }, Node { got: 0 }], 42);
//! sim.with_ctx(0, |node, ctx| { let _ = node; ctx.send(1, Ping(1)); });
//! sim.run_until_idle();
//! assert_eq!(sim.actor(0).got, 2); // ping went out and came back
//! ```

pub mod link;
pub mod probe;
pub mod sim;
pub mod time;
pub mod topology;

pub use link::{LinkSpec, LinkStats};
pub use probe::{measure_rtt, measure_throughput};
pub use sim::{Actor, Ctx, MsgSize, Simulation, TimerId};
pub use time::{SimDuration, SimTime};
pub use topology::NetTopology;
