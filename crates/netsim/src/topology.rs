//! Network topologies, including presets for the paper's two testbeds:
//! the emulated EC2 WAN of Table I / Fig. 2 and the CloudLab deployment
//! of Table II.

use crate::link::LinkSpec;
use crate::time::SimDuration;

/// A directed graph of WAN links between `n` named sites.
#[derive(Debug, Clone)]
pub struct NetTopology {
    names: Vec<String>,
    /// Row-major `n x n`; `None` on the diagonal and for absent links.
    links: Vec<Option<LinkSpec>>,
}

impl NetTopology {
    /// An `n`-site topology with no links yet.
    pub fn new(names: &[&str]) -> Self {
        let n = names.len();
        NetTopology {
            names: names.iter().map(|s| (*s).to_owned()).collect(),
            links: vec![None; n * n],
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the topology has no sites.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Site name by index.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Site index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Set the directed link `a -> b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn set_link(&mut self, a: usize, b: usize, spec: LinkSpec) -> &mut Self {
        assert!(a != b, "no self links");
        let n = self.len();
        self.links[a * n + b] = Some(spec);
        self
    }

    /// Set both directions of `a <-> b` to the same spec.
    pub fn set_symmetric(&mut self, a: usize, b: usize, spec: LinkSpec) -> &mut Self {
        self.set_link(a, b, spec).set_link(b, a, spec)
    }

    /// The directed link `a -> b`, if present.
    pub fn link(&self, a: usize, b: usize) -> Option<&LinkSpec> {
        self.links[a * self.len() + b].as_ref()
    }

    /// A fully connected topology of `n` sites, every link identical.
    pub fn full_mesh(n: usize, one_way: SimDuration, bytes_per_sec: f64) -> Self {
        let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut t = NetTopology::new(&name_refs);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    t.set_link(
                        a,
                        b,
                        LinkSpec {
                            one_way,
                            bytes_per_sec,
                            jitter: SimDuration::ZERO,
                        },
                    );
                }
            }
        }
        t
    }

    /// The emulated EC2 WAN of §VI: eight servers in four regions
    /// (Fig. 2), with the *halved* Table I throughputs the paper applies
    /// to avoid saturating its gigabit NICs.
    ///
    /// Index map: 0–1 North California (n1 is the sender), 2–5 North
    /// Virginia, 6 Oregon, 7 Ohio.
    ///
    /// Table I only reports links from North California (the sender's
    /// region). Links between the other regions use representative AWS
    /// inter-region numbers; they carry no experiment traffic since all
    /// writes originate at n1, but exist so control traffic can flow.
    pub fn ec2_fig2() -> Self {
        let mut t = NetTopology::new(&["n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"]);
        let nc: [usize; 2] = [0, 1];
        let nva: [usize; 4] = [2, 3, 4, 5];
        let oregon = 6usize;
        let ohio = 7usize;

        // Table I rows (Lat ms RTT, halved throughput Mbit/s).
        let intra_nc = LinkSpec::from_rtt_mbit(3.7, 333.5);
        let nc_nva = LinkSpec::from_rtt_mbit(64.12, 37.0);
        let nc_oregon = LinkSpec::from_rtt_mbit(23.29, 56.5);
        let nc_ohio = LinkSpec::from_rtt_mbit(53.87, 44.5);
        // Representative values for pairs Table I does not report.
        let intra_nva = LinkSpec::from_rtt_mbit(1.5, 333.5);
        let nva_oregon = LinkSpec::from_rtt_mbit(67.0, 37.0);
        let nva_ohio = LinkSpec::from_rtt_mbit(11.5, 60.0);
        let oregon_ohio = LinkSpec::from_rtt_mbit(49.0, 50.0);

        t.set_symmetric(nc[0], nc[1], intra_nc);
        for i in 0..nva.len() {
            for j in (i + 1)..nva.len() {
                t.set_symmetric(nva[i], nva[j], intra_nva);
            }
        }
        for &a in &nc {
            for &b in &nva {
                t.set_symmetric(a, b, nc_nva);
            }
            t.set_symmetric(a, oregon, nc_oregon);
            t.set_symmetric(a, ohio, nc_ohio);
        }
        for &b in &nva {
            t.set_symmetric(b, oregon, nva_oregon);
            t.set_symmetric(b, ohio, nva_ohio);
        }
        t.set_symmetric(oregon, ohio, oregon_ohio);
        t
    }

    /// The CloudLab deployment of Table II: Utah1 (sender), Utah2,
    /// Wisconsin, Clemson, Massachusetts.
    ///
    /// Table II reports links from Utah1 only; the remaining pairs use
    /// representative CloudLab inter-cluster numbers (the experiments are
    /// Utah1-centric).
    pub fn cloudlab_table2() -> Self {
        let mut t = NetTopology::new(&["UT1", "UT2", "WI", "CLEM", "MA"]);
        let (ut1, ut2, wi, clem, ma) = (0usize, 1usize, 2usize, 3usize, 4usize);
        // Table II rows: Thp (Mbit/s), Lat (ms RTT).
        t.set_symmetric(ut1, ut2, LinkSpec::from_rtt_mbit(0.124, 9246.99));
        t.set_symmetric(ut1, wi, LinkSpec::from_rtt_mbit(35.612, 361.82));
        t.set_symmetric(ut1, clem, LinkSpec::from_rtt_mbit(50.918, 416.27));
        t.set_symmetric(ut1, ma, LinkSpec::from_rtt_mbit(48.083, 437.11));
        // Utah2 shares Utah1's cluster uplink.
        t.set_symmetric(ut2, wi, LinkSpec::from_rtt_mbit(35.7, 361.82));
        t.set_symmetric(ut2, clem, LinkSpec::from_rtt_mbit(51.0, 416.27));
        t.set_symmetric(ut2, ma, LinkSpec::from_rtt_mbit(48.2, 437.11));
        // Representative east-coast/midwest pairs.
        t.set_symmetric(wi, clem, LinkSpec::from_rtt_mbit(28.0, 400.0));
        t.set_symmetric(wi, ma, LinkSpec::from_rtt_mbit(24.0, 400.0));
        t.set_symmetric(clem, ma, LinkSpec::from_rtt_mbit(20.0, 400.0));
        t
    }

    /// Return a copy of this topology with every link given uniform
    /// per-message jitter of up to `jitter` one-way — the natural
    /// variance a real WAN adds on top of a `tc` shaper.
    pub fn with_jitter(&self, jitter: SimDuration) -> Self {
        let mut t = self.clone();
        for i in 0..t.links.len() {
            if let Some(spec) = &mut t.links[i] {
                *spec = spec.with_jitter(jitter);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_preset_matches_table1() {
        let t = NetTopology::ec2_fig2();
        assert_eq!(t.len(), 8);
        // n1 -> n2 is the intra-NC link: 3.7ms RTT, 333.5 Mbit/s.
        let l = t.link(0, 1).unwrap();
        assert_eq!(l.rtt(), SimDuration::from_millis_f64(3.7));
        assert!((l.mbit_per_sec() - 333.5).abs() < 1e-9);
        // n1 -> n8 (Ohio): 53.87ms, 44.5 Mbit/s.
        let l = t.link(0, 7).unwrap();
        assert_eq!(l.rtt(), SimDuration::from_millis_f64(53.87));
        assert!((l.mbit_per_sec() - 44.5).abs() < 1e-9);
        // n1 -> n3 (North Virginia): 64.12ms, 37 Mbit/s.
        let l = t.link(0, 2).unwrap();
        assert_eq!(l.rtt(), SimDuration::from_millis_f64(64.12));
        assert!((l.mbit_per_sec() - 37.0).abs() < 1e-9);
        // Fully connected, no self links.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.link(a, b).is_some(), a != b);
            }
        }
    }

    #[test]
    fn cloudlab_preset_matches_table2() {
        let t = NetTopology::cloudlab_table2();
        assert_eq!(t.len(), 5);
        assert_eq!(t.index_of("UT1"), Some(0));
        let wi = t.link(0, 2).unwrap();
        assert_eq!(wi.rtt(), SimDuration::from_millis_f64(35.612));
        assert!((wi.mbit_per_sec() - 361.82).abs() < 1e-9);
        let clem = t.link(0, 3).unwrap();
        assert_eq!(clem.rtt(), SimDuration::from_millis_f64(50.918));
        let ut2 = t.link(0, 1).unwrap();
        assert!((ut2.mbit_per_sec() - 9246.99).abs() < 1e-6);
    }

    #[test]
    fn full_mesh_links_everything() {
        let t = NetTopology::full_mesh(4, SimDuration::from_millis(1), 1e9);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.link(a, b).is_some(), a != b);
            }
        }
    }

    #[test]
    fn names_resolve() {
        let t = NetTopology::cloudlab_table2();
        assert_eq!(t.name(3), "CLEM");
        assert_eq!(t.index_of("MA"), Some(4));
        assert_eq!(t.index_of("XX"), None);
    }
}
