//! Virtual time: nanosecond-resolution instants and durations.
//!
//! Newtypes (rather than `std::time`) keep simulated time statically
//! distinct from wall-clock time and make saturating arithmetic explicit.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build from fractional milliseconds (as the paper's tables report).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1e6).round() as u64)
    }

    /// Build from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, n: u64) -> Self {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_millis_f64(3.7).as_millis_f64(), 3.7);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis_f64(), 10.0);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(10));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO); // saturates
        assert_eq!(
            SimDuration::from_millis(3) + SimDuration::from_millis(4),
            SimDuration::from_millis(7)
        );
        assert_eq!(
            SimDuration::from_millis(3).saturating_mul(4),
            SimDuration::from_millis(12)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis_f64(53.87).to_string(), "53.870ms");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_secs(1)).to_string(),
            "1.000000s"
        );
    }
}
