//! The discrete-event simulation engine.

use crate::link::{LinkState, LinkStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::NetTopology;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Wire size of a message, used for serialization-delay modeling.
/// Implementations should include per-message framing overhead if they
/// want it modeled. `Clone` is required because the network may
/// duplicate a frame in flight (see
/// [`Simulation::set_link_dup_reorder`]) — anything on a wire is
/// copyable bytes.
pub trait MsgSize: Clone {
    /// Bytes this message occupies on the wire.
    fn wire_size(&self) -> usize;
}

/// Handle identifying a pending timer, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A simulated WAN node. One actor instance runs per site; the engine
/// invokes its callbacks in virtual-time order.
pub trait Actor: Sized {
    /// The message type exchanged between actors.
    type Msg: MsgSize;

    /// Called once before the first event is processed.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// A message from `from` has arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: usize, msg: Self::Msg);

    /// A timer set via [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _timer: TimerId, _tag: u64) {}
}

/// Effects an actor can request during a callback; applied by the engine
/// after the callback returns.
enum Effect<M> {
    Send {
        to: usize,
        msg: M,
    },
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        tag: u64,
    },
    CancelTimer(TimerId),
}

/// The per-callback context handed to actors: clock, identity, message
/// sending, timers, and a deterministic RNG.
pub struct Ctx<'a, M> {
    now: SimTime,
    me: usize,
    n: usize,
    effects: &'a mut Vec<Effect<M>>,
    rng: &'a mut SmallRng,
    next_timer: &'a mut u64,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's site index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Number of sites in the simulation.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Send `msg` to site `to`. Delivery experiences the link's queueing,
    /// serialization, and propagation delays; per-link delivery is FIFO.
    /// Messages to unreachable sites (no link, or link cut) are dropped.
    pub fn send(&mut self, to: usize, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arrange for [`Actor::on_timer`] to fire after `delay` with `tag`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, delay, tag });
        id
    }

    /// Cancel a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Deterministic per-simulation RNG for workload jitter.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

enum EventKind<M> {
    Deliver {
        to: usize,
        from: usize,
        msg: M,
    },
    Fire {
        node: usize,
        timer: TimerId,
        tag: u64,
    },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulation of `n` actors connected by
/// the links of a [`NetTopology`].
pub struct Simulation<A: Actor> {
    topo: NetTopology,
    actors: Vec<A>,
    links: Vec<LinkState>,
    link_up: Vec<bool>,
    queue: BinaryHeap<Reverse<Event<A::Msg>>>,
    now: SimTime,
    seq: u64,
    next_timer: u64,
    cancelled: HashSet<u64>,
    dropped: u64,
    loss: Vec<f64>,
    /// Optional per-node egress NIC model: `(bytes_per_sec, busy_until)`.
    egress: Vec<Option<(f64, SimTime)>>,
    /// Runtime extra one-way delay per directed link (delay skew).
    extra_delay: Vec<crate::time::SimDuration>,
    /// Per-directed-link `(duplicate, reorder)` probabilities (chaos
    /// knobs; both 0 on a healthy link).
    dup_reorder: Vec<(f64, f64)>,
    rng: SmallRng,
}

impl<A: Actor> Simulation<A> {
    /// Create a simulation with one actor per topology site, then invoke
    /// every actor's [`Actor::on_start`].
    ///
    /// # Panics
    ///
    /// Panics if `actors.len() != topo.len()`.
    pub fn new(topo: NetTopology, actors: Vec<A>, seed: u64) -> Self {
        assert_eq!(actors.len(), topo.len(), "one actor per site required");
        let n = topo.len();
        let mut sim = Simulation {
            topo,
            actors,
            links: vec![LinkState::default(); n * n],
            link_up: vec![true; n * n],
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            cancelled: HashSet::new(),
            dropped: 0,
            loss: vec![0.0; n * n],
            egress: vec![None; n],
            extra_delay: vec![crate::time::SimDuration::ZERO; n * n],
            dup_reorder: vec![(0.0, 0.0); n * n],
            rng: SmallRng::seed_from_u64(seed),
        };
        for i in 0..n {
            sim.dispatch(i, |a, ctx| a.on_start(ctx));
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology this simulation runs over.
    pub fn topology(&self) -> &NetTopology {
        &self.topo
    }

    /// Immutable access to an actor (for assertions and measurement).
    pub fn actor(&self, i: usize) -> &A {
        &self.actors[i]
    }

    /// Mutable access to an actor *outside* the event loop (test setup).
    /// Effects cannot be issued here; use [`Simulation::with_ctx`] to
    /// interact with the network.
    pub fn actor_mut(&mut self, i: usize) -> &mut A {
        &mut self.actors[i]
    }

    /// Replace actor `i` wholesale — models a process crash + restart
    /// (the replacement typically rebuilds itself from a persisted
    /// snapshot). In-flight messages to the node still arrive and are
    /// handled by the replacement.
    pub fn replace_actor(&mut self, i: usize, actor: A) -> A {
        std::mem::replace(&mut self.actors[i], actor)
    }

    /// Run a closure against actor `i` with a full [`Ctx`] — the way
    /// external stimuli (client requests) enter the simulation.
    pub fn with_ctx<R>(
        &mut self,
        i: usize,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R,
    ) -> R {
        self.dispatch(i, f)
    }

    /// Statistics for the directed link `a -> b`.
    pub fn link_stats(&self, a: usize, b: usize) -> LinkStats {
        self.links[a * self.topo.len() + b].stats
    }

    /// Cut or restore the directed link `a -> b`. While down, messages
    /// sent over it are silently dropped (in-flight messages still
    /// arrive, as in a real partition).
    pub fn set_link_up(&mut self, a: usize, b: usize, up: bool) {
        let n = self.topo.len();
        self.link_up[a * n + b] = up;
    }

    /// Set an independent per-message loss probability on the directed
    /// link `a -> b` (deterministic given the simulation seed). Models a
    /// lossy datagram transport; Stabilizer's own reliability mechanism
    /// must recover (see `retransmit_millis`).
    pub fn set_link_loss(&mut self, a: usize, b: usize, probability: f64) {
        assert!((0.0..=1.0).contains(&probability), "probability in [0,1]");
        let n = self.topo.len();
        self.loss[a * n + b] = probability;
    }

    /// Cap node `a`'s total outgoing bandwidth (its NIC): messages to
    /// *all* peers share this serializer before entering their per-pair
    /// links. Off by default (per-pair links model the paper's `tc`
    /// setup, where the paper halves Table I throughputs precisely so
    /// the shared gigabit NIC never binds).
    pub fn set_egress_limit(&mut self, a: usize, bytes_per_sec: f64) {
        assert!(bytes_per_sec > 0.0);
        self.egress[a] = Some((
            bytes_per_sec,
            self.egress[a].map(|(_, b)| b).unwrap_or(SimTime::ZERO),
        ));
    }

    /// Add a runtime extra one-way delay on the directed link `a -> b`,
    /// on top of the topology's propagation delay — a `tc netem delay`
    /// change applied mid-run (route flap, congested backbone, skewed
    /// control plane). Messages already in flight keep their original
    /// arrival time, so *reducing* the skew can reorder across the change
    /// point, exactly as on a real route change; the per-link FIFO shaper
    /// still orders everything sent after the change.
    pub fn set_link_extra_delay(&mut self, a: usize, b: usize, extra: crate::time::SimDuration) {
        let n = self.topo.len();
        self.extra_delay[a * n + b] = extra;
    }

    /// The current extra delay injected on the directed link `a -> b`.
    pub fn link_extra_delay(&self, a: usize, b: usize) -> crate::time::SimDuration {
        self.extra_delay[a * self.topo.len() + b]
    }

    /// Corrupt the directed link `a -> b`: each message is independently
    /// duplicated with probability `dup` (the copy arrives strictly
    /// later) and displaced past the FIFO point with probability
    /// `reorder` (a later message may then overtake it). Both draws come
    /// from the simulation's seeded RNG, so runs stay deterministic.
    /// `(0.0, 0.0)` restores a healthy link.
    pub fn set_link_dup_reorder(&mut self, a: usize, b: usize, dup: f64, reorder: f64) {
        assert!((0.0..=1.0).contains(&dup), "dup probability in [0,1]");
        assert!(
            (0.0..=1.0).contains(&reorder),
            "reorder probability in [0,1]"
        );
        let n = self.topo.len();
        self.dup_reorder[a * n + b] = (dup, reorder);
    }

    /// The current `(duplicate, reorder)` probabilities on `a -> b`.
    pub fn link_dup_reorder(&self, a: usize, b: usize) -> (f64, f64) {
        self.dup_reorder[a * self.topo.len() + b]
    }

    /// Messages dropped due to cut or missing links, or injected loss.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Virtual time of the next queued event, if any — lets an external
    /// driver (e.g. a fault injector) interleave scheduled actions with
    /// the event loop at exact times without consuming the event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(ev)| ev.time)
    }

    /// Process the next event, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(Reverse(ev)) = self.queue.pop() else {
                return false;
            };
            debug_assert!(ev.time >= self.now, "time went backwards");
            match ev.kind {
                EventKind::Deliver { to, from, msg } => {
                    self.now = ev.time;
                    self.dispatch(to, |a, ctx| a.on_message(ctx, from, msg));
                    return true;
                }
                EventKind::Fire { node, timer, tag } => {
                    if self.cancelled.remove(&timer.0) {
                        continue; // skip cancelled timer, try next event
                    }
                    self.now = ev.time;
                    self.dispatch(node, |a, ctx| a.on_timer(ctx, timer, tag));
                    return true;
                }
            }
        }
    }

    /// Run until the event queue is empty. Returns the number of events
    /// processed.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Process all events up to and including `deadline`, then advance the
    /// clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.time > deadline {
                break;
            }
            self.step();
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Convenience: `run_until(now + d)`.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    fn dispatch<R>(&mut self, node: usize, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R) -> R {
        let mut effects: Vec<Effect<A::Msg>> = Vec::new();
        let r = {
            let mut ctx = Ctx {
                now: self.now,
                me: node,
                n: self.topo.len(),
                effects: &mut effects,
                rng: &mut self.rng,
                next_timer: &mut self.next_timer,
            };
            f(&mut self.actors[node], &mut ctx)
        };
        for eff in effects {
            self.apply(node, eff);
        }
        r
    }

    fn apply(&mut self, from: usize, eff: Effect<A::Msg>) {
        match eff {
            Effect::Send { to, msg } => {
                let n = self.topo.len();
                if from == to {
                    // Local loopback: deliver immediately (next event).
                    self.push(self.now, EventKind::Deliver { to, from, msg });
                    return;
                }
                let Some(spec) = self.topo.link(from, to) else {
                    self.dropped += 1;
                    return;
                };
                if !self.link_up[from * n + to] {
                    self.dropped += 1;
                    return;
                }
                let loss = self.loss[from * n + to];
                if loss > 0.0 {
                    use rand::Rng;
                    if self.rng.gen_bool(loss) {
                        self.dropped += 1;
                        return;
                    }
                }
                let size = msg.wire_size();
                // Shared NIC: serialize through the sender's egress
                // before the per-pair link.
                let link_clock = if let Some((bps, busy_until)) = self.egress[from] {
                    let start = busy_until.max(self.now);
                    let done = start + crate::time::SimDuration::from_secs_f64(size as f64 / bps);
                    self.egress[from] = Some((bps, done));
                    done
                } else {
                    self.now
                };
                let jitter_ns = if spec.jitter > crate::time::SimDuration::ZERO {
                    use rand::Rng;
                    self.rng.gen_range(0..=spec.jitter.as_nanos())
                } else {
                    0
                };
                // Displacement bound for dup/reorder copies: roughly one
                // propagation delay, floored so zero-latency test links
                // still displace by a visible amount.
                let disp_bound = spec.one_way.as_nanos().max(1_000_000);
                let arrival = self.links[from * n + to]
                    .transmit_jittered(spec, link_clock, size, jitter_ns)
                    + self.extra_delay[from * n + to];
                let (dup_p, reorder_p) = self.dup_reorder[from * n + to];
                if dup_p <= 0.0 && reorder_p <= 0.0 {
                    self.push(arrival, EventKind::Deliver { to, from, msg });
                    return;
                }
                // Corrupted link: the draws happen in a fixed order
                // (duplicate, then reorder) so replays stay bit-stable.
                use rand::Rng;
                let dup = dup_p > 0.0 && self.rng.gen_bool(dup_p);
                let reorder = reorder_p > 0.0 && self.rng.gen_bool(reorder_p);
                if dup {
                    let copy_at =
                        arrival + SimDuration::from_nanos(self.rng.gen_range(1..=disp_bound));
                    self.push(
                        copy_at,
                        EventKind::Deliver {
                            to,
                            from,
                            msg: msg.clone(),
                        },
                    );
                }
                // Reorder displaces the primary *past* the FIFO shaper's
                // clamp: the link's `last_arrival` keeps its un-displaced
                // value, so the next frame may legitimately overtake.
                let primary_at = if reorder {
                    arrival + SimDuration::from_nanos(self.rng.gen_range(1..=disp_bound))
                } else {
                    arrival
                };
                self.push(primary_at, EventKind::Deliver { to, from, msg });
            }
            Effect::SetTimer { id, delay, tag } => {
                let at = self.now + delay;
                self.push(
                    at,
                    EventKind::Fire {
                        node: from,
                        timer: id,
                        tag,
                    },
                );
            }
            Effect::CancelTimer(id) => {
                self.cancelled.insert(id.0);
            }
        }
    }

    fn push(&mut self, time: SimTime, kind: EventKind<A::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl MsgSize for Num {
        fn wire_size(&self) -> usize {
            100
        }
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<(SimTime, usize, u64)>,
        fired: Vec<(SimTime, u64)>,
    }
    impl Actor for Recorder {
        type Msg = Num;
        fn on_message(&mut self, ctx: &mut Ctx<'_, Num>, from: usize, msg: Num) {
            self.got.push((ctx.now(), from, msg.0));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Num>, _t: TimerId, tag: u64) {
            self.fired.push((ctx.now(), tag));
        }
    }

    fn two_nodes(ms: u64) -> Simulation<Recorder> {
        let topo = NetTopology::full_mesh(2, SimDuration::from_millis(ms), f64::INFINITY);
        Simulation::new(topo, vec![Recorder::default(), Recorder::default()], 1)
    }

    #[test]
    fn message_arrives_after_latency() {
        let mut sim = two_nodes(10);
        sim.with_ctx(0, |_, ctx| ctx.send(1, Num(7)));
        sim.run_until_idle();
        assert_eq!(
            sim.actor(1).got,
            vec![(SimTime::ZERO + SimDuration::from_millis(10), 0, 7)]
        );
    }

    #[test]
    fn per_link_fifo_order_preserved() {
        let mut sim = two_nodes(10);
        sim.with_ctx(0, |_, ctx| {
            for i in 0..10 {
                ctx.send(1, Num(i));
            }
        });
        sim.run_until_idle();
        let seqs: Vec<u64> = sim.actor(1).got.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bandwidth_serializes_messages() {
        let mut topo = NetTopology::new(&["a", "b"]);
        topo.set_symmetric(0, 1, LinkSpec::from_rtt_mbit(20.0, 8.0)); // 1 MB/s, 10ms
        let mut sim = Simulation::new(topo, vec![Recorder::default(), Recorder::default()], 1);
        sim.with_ctx(0, |_, ctx| {
            ctx.send(1, Num(0)); // 100 B => 0.1 ms tx
            ctx.send(1, Num(1));
        });
        sim.run_until_idle();
        let t0 = sim.actor(1).got[0].0;
        let t1 = sim.actor(1).got[1].0;
        assert_eq!(t0, SimTime::ZERO + SimDuration::from_micros(10_100));
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_micros(10_200));
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut sim = two_nodes(1);
        let cancel_me = sim.with_ctx(0, |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(5), 5);
            let id = ctx.set_timer(SimDuration::from_millis(7), 7);
            ctx.set_timer(SimDuration::from_millis(3), 3);
            id
        });
        sim.with_ctx(0, |_, ctx| ctx.cancel_timer(cancel_me));
        sim.run_until_idle();
        let tags: Vec<u64> = sim.actor(0).fired.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags, vec![3, 5]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = two_nodes(10);
        sim.with_ctx(0, |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            ctx.set_timer(SimDuration::from_millis(50), 2);
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(sim.actor(0).fired.len(), 1);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(20));
        sim.run_until_idle();
        assert_eq!(sim.actor(0).fired.len(), 2);
    }

    #[test]
    fn cut_links_drop_messages() {
        let mut sim = two_nodes(10);
        sim.set_link_up(0, 1, false);
        sim.with_ctx(0, |_, ctx| ctx.send(1, Num(9)));
        sim.run_until_idle();
        assert!(sim.actor(1).got.is_empty());
        assert_eq!(sim.dropped(), 1);
        sim.set_link_up(0, 1, true);
        sim.with_ctx(0, |_, ctx| ctx.send(1, Num(10)));
        sim.run_until_idle();
        assert_eq!(sim.actor(1).got.len(), 1);
    }

    #[test]
    fn self_send_is_loopback() {
        let mut sim = two_nodes(10);
        sim.with_ctx(0, |_, ctx| ctx.send(0, Num(1)));
        sim.run_until_idle();
        assert_eq!(sim.actor(0).got.len(), 1);
        assert_eq!(sim.actor(0).got[0].0, SimTime::ZERO);
    }

    #[test]
    fn deterministic_event_ordering_is_stable() {
        // Two messages scheduled for the same instant deliver in send order.
        let mut sim = two_nodes(10);
        sim.with_ctx(0, |_, ctx| ctx.send(1, Num(1)));
        sim.with_ctx(1, |_, ctx| ctx.send(0, Num(2)));
        sim.run_until_idle();
        assert_eq!(sim.actor(1).got[0].2, 1);
        assert_eq!(sim.actor(0).got[0].2, 2);
    }

    #[test]
    fn jitter_preserves_fifo_and_stays_bounded() {
        let mut topo = NetTopology::new(&["a", "b"]);
        topo.set_symmetric(
            0,
            1,
            LinkSpec::delay_only(SimDuration::from_millis(10))
                .with_jitter(SimDuration::from_millis(5)),
        );
        let mut sim = Simulation::new(topo, vec![Recorder::default(), Recorder::default()], 9);
        // Spaced sends (gap > jitter) so each draw is visible; back-to-back
        // sends would be clamped to the running maximum by the FIFO rule.
        for i in 0..100u64 {
            sim.with_ctx(0, |_, ctx| {
                ctx.send(1, Num(i));
            });
            sim.run_for(SimDuration::from_millis(20));
        }
        sim.run_until_idle();
        let got = &sim.actor(1).got;
        assert_eq!(got.len(), 100);
        let vals: Vec<u64> = got.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(vals, (0..100).collect::<Vec<_>>(), "jitter broke FIFO");
        // Each arrival lands within [10ms, 15ms] of its 20ms-grid send.
        let mut offsets = std::collections::HashSet::new();
        for (i, (t, _, _)) in got.iter().enumerate() {
            let off = t.as_millis_f64() - (i as f64) * 20.0;
            assert!((10.0..=15.0).contains(&off), "arrival offset {off}ms");
            offsets.insert((off * 1e6) as u64);
        }
        assert!(
            offsets.len() > 30,
            "jitter had no effect: {} distinct offsets",
            offsets.len()
        );
    }

    #[test]
    fn egress_limit_shares_bandwidth_across_peers() {
        // Three receivers behind fast per-pair links, but a 1 MB/s NIC
        // at the sender: 3 x 1 MB must take ~3 s total, not ~1 s.
        let mut topo = NetTopology::full_mesh(4, SimDuration::ZERO, 1e12);
        let _ = &mut topo;
        #[derive(Clone)]
        struct Big;
        impl MsgSize for Big {
            fn wire_size(&self) -> usize {
                1_000_000
            }
        }
        #[derive(Default)]
        struct Sink(Vec<SimTime>);
        impl Actor for Sink {
            type Msg = Big;
            fn on_message(&mut self, ctx: &mut Ctx<'_, Big>, _f: usize, _m: Big) {
                self.0.push(ctx.now());
            }
        }
        let actors = (0..4).map(|_| Sink::default()).collect();
        let mut sim = Simulation::new(topo, actors, 1);
        sim.set_egress_limit(0, 1_000_000.0);
        sim.with_ctx(0, |_, ctx| {
            for peer in 1..4 {
                ctx.send(peer, Big);
            }
        });
        sim.run_until_idle();
        let arrivals: Vec<f64> = (1..4).map(|i| sim.actor(i).0[0].as_secs_f64()).collect();
        let last = arrivals.iter().cloned().fold(0.0, f64::max);
        assert!(
            (2.9..3.1).contains(&last),
            "shared NIC not modeled: last at {last}s"
        );
        // Without the cap, all three would arrive at ~1 byte-time.
    }

    #[test]
    fn extra_delay_skews_one_direction_only() {
        let mut sim = two_nodes(10);
        sim.set_link_extra_delay(0, 1, SimDuration::from_millis(25));
        sim.with_ctx(0, |_, ctx| ctx.send(1, Num(1)));
        sim.with_ctx(1, |_, ctx| ctx.send(0, Num(2)));
        sim.run_until_idle();
        assert_eq!(
            sim.actor(1).got[0].0,
            SimTime::ZERO + SimDuration::from_millis(35),
            "forward direction must carry the skew"
        );
        assert_eq!(
            sim.actor(0).got[0].0,
            SimTime::ZERO + SimDuration::from_millis(10),
            "reverse direction must not"
        );
        // Clearing the skew restores the base latency.
        sim.set_link_extra_delay(0, 1, SimDuration::ZERO);
        let t0 = sim.now();
        sim.with_ctx(0, |_, ctx| ctx.send(1, Num(3)));
        sim.run_until_idle();
        assert_eq!(sim.actor(1).got[1].0, t0 + SimDuration::from_millis(10));
    }

    #[test]
    fn dup_reorder_duplicates_and_breaks_fifo() {
        // Certain duplication: one send, two deliveries, copy later.
        let mut sim = two_nodes(10);
        sim.set_link_dup_reorder(0, 1, 1.0, 0.0);
        sim.with_ctx(0, |_, ctx| ctx.send(1, Num(7)));
        sim.run_until_idle();
        let got = &sim.actor(1).got;
        assert_eq!(got.len(), 2, "frame must be duplicated");
        assert_eq!((got[0].2, got[1].2), (7, 7));
        assert!(got[1].0 > got[0].0, "the copy arrives strictly later");
        // The reverse direction is untouched.
        sim.with_ctx(1, |_, ctx| ctx.send(0, Num(1)));
        sim.run_until_idle();
        assert_eq!(sim.actor(0).got.len(), 1);

        // Heavy reordering breaks FIFO but loses nothing; clearing the
        // knob restores in-order delivery.
        let mut sim = two_nodes(10);
        sim.set_link_dup_reorder(0, 1, 0.0, 0.7);
        sim.with_ctx(0, |_, ctx| {
            for i in 0..50 {
                ctx.send(1, Num(i));
            }
        });
        sim.run_until_idle();
        let mut vals: Vec<u64> = sim.actor(1).got.iter().map(|(_, _, v)| *v).collect();
        assert_ne!(
            vals,
            (0..50).collect::<Vec<_>>(),
            "0.7 reorder on a 50-frame burst left FIFO intact"
        );
        vals.sort_unstable();
        assert_eq!(vals, (0..50).collect::<Vec<_>>(), "reorder must not lose");
        sim.set_link_dup_reorder(0, 1, 0.0, 0.0);
        let before = sim.actor(1).got.len();
        sim.with_ctx(0, |_, ctx| {
            for i in 100..110 {
                ctx.send(1, Num(i));
            }
        });
        sim.run_until_idle();
        let tail: Vec<u64> = sim.actor(1).got[before..]
            .iter()
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(tail, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn link_stats_accumulate() {
        let mut sim = two_nodes(10);
        sim.with_ctx(0, |_, ctx| {
            ctx.send(1, Num(1));
            ctx.send(1, Num(2));
        });
        sim.run_until_idle();
        let stats = sim.link_stats(0, 1);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes, 200);
    }
}
