//! Measurement probes: `ping`-style RTT and `iperf`-style bulk-transfer
//! throughput over a simulated topology. The Table I/II harnesses use
//! these to validate that the simulator reproduces the paper's configured
//! link characteristics.

use crate::sim::{Actor, Ctx, MsgSize, Simulation};
use crate::time::{SimDuration, SimTime};
use crate::topology::NetTopology;

#[derive(Clone)]
enum ProbeMsg {
    Ping,
    Pong,
    /// Bulk chunk carrying `size` payload bytes; `last` marks the final one.
    Chunk {
        size: usize,
        last: bool,
    },
    /// Receiver's note that the final chunk arrived.
    Done,
}

impl MsgSize for ProbeMsg {
    fn wire_size(&self) -> usize {
        match self {
            ProbeMsg::Ping | ProbeMsg::Pong | ProbeMsg::Done => 64,
            ProbeMsg::Chunk { size, .. } => *size,
        }
    }
}

#[derive(Default)]
struct ProbeActor {
    pong_at: Option<SimTime>,
    done_at: Option<SimTime>,
}

impl Actor for ProbeActor {
    type Msg = ProbeMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, ProbeMsg>, from: usize, msg: ProbeMsg) {
        match msg {
            ProbeMsg::Ping => ctx.send(from, ProbeMsg::Pong),
            ProbeMsg::Pong => self.pong_at = Some(ctx.now()),
            ProbeMsg::Chunk { last, .. } => {
                if last {
                    ctx.send(from, ProbeMsg::Done);
                }
            }
            ProbeMsg::Done => self.done_at = Some(ctx.now()),
        }
    }
}

/// Measure the round-trip time between sites `a` and `b` with a small
/// ping message (the serialization time of the 64-byte probe is included,
/// as it is for a real `ping`).
pub fn measure_rtt(topo: &NetTopology, a: usize, b: usize) -> SimDuration {
    let actors = (0..topo.len()).map(|_| ProbeActor::default()).collect();
    let mut sim = Simulation::new(topo.clone(), actors, 7);
    sim.with_ctx(a, |_, ctx| ctx.send(b, ProbeMsg::Ping));
    sim.run_until_idle();
    sim.actor(a)
        .pong_at
        .expect("pong lost — is there a link a<->b?")
        .since(SimTime::ZERO)
}

/// Measure achievable one-way throughput from `a` to `b` in Mbit/s by
/// streaming `total_bytes` in `chunk`-byte messages and timing until the
/// last chunk arrives (propagation delay subtracted out by the volume).
pub fn measure_throughput(
    topo: &NetTopology,
    a: usize,
    b: usize,
    total_bytes: u64,
    chunk: usize,
) -> f64 {
    let actors = (0..topo.len()).map(|_| ProbeActor::default()).collect();
    let mut sim = Simulation::new(topo.clone(), actors, 7);
    let chunks = (total_bytes as usize).div_ceil(chunk);
    sim.with_ctx(a, |_, ctx| {
        for i in 0..chunks {
            ctx.send(
                b,
                ProbeMsg::Chunk {
                    size: chunk,
                    last: i + 1 == chunks,
                },
            );
        }
    });
    sim.run_until_idle();
    let done = sim.actor(a).done_at.expect("bulk transfer never completed");
    // One-way transfer time: total time minus the return hop of `Done`.
    let rtt = measure_rtt(topo, a, b);
    let one_way_back = SimDuration::from_nanos(rtt.as_nanos() / 2);
    let elapsed = done.since(SimTime::ZERO) - one_way_back;
    (chunks * chunk) as f64 * 8.0 / 1e6 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    #[test]
    fn rtt_matches_configured_latency() {
        let topo = NetTopology::ec2_fig2();
        // n1 <-> n8 (Ohio) configured at 53.87 ms RTT; 64-byte probes add
        // negligible serialization time.
        let rtt = measure_rtt(&topo, 0, 7);
        assert!((rtt.as_millis_f64() - 53.87).abs() < 0.1, "got {rtt}");
    }

    #[test]
    fn throughput_approaches_configured_bandwidth() {
        let topo = NetTopology::ec2_fig2();
        // n1 -> n8 configured at 44.5 Mbit/s.
        let thr = measure_throughput(&topo, 0, 7, 8 * 1024 * 1024, 8192);
        assert!((thr - 44.5).abs() / 44.5 < 0.05, "got {thr} Mbit/s");
    }

    #[test]
    fn throughput_on_fast_lan() {
        let topo = NetTopology::cloudlab_table2();
        // UT1 -> UT2 configured at 9246.99 Mbit/s.
        let thr = measure_throughput(&topo, 0, 1, 64 * 1024 * 1024, 8192);
        assert!((thr - 9246.99).abs() / 9246.99 < 0.10, "got {thr} Mbit/s");
    }

    #[test]
    fn rtt_includes_serialization_of_probe() {
        let mut topo = NetTopology::new(&["a", "b"]);
        // 1 KB/s: a 64-byte probe takes 64 ms each way; zero propagation.
        topo.set_symmetric(
            0,
            1,
            LinkSpec {
                one_way: SimDuration::ZERO,
                bytes_per_sec: 1000.0,
                jitter: SimDuration::ZERO,
            },
        );
        let rtt = measure_rtt(&topo, 0, 1);
        assert!((rtt.as_millis_f64() - 128.0).abs() < 1.0, "got {rtt}");
    }
}
