//! Directed link model: propagation delay + bandwidth + FIFO queueing,
//! mirroring what the paper imposes with `tc` (§VI, Table I/II).

use crate::time::{SimDuration, SimTime};

/// Static description of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay. The paper's tables report ping RTTs;
    /// [`LinkSpec::from_rtt_mbit`] halves them.
    pub one_way: SimDuration,
    /// Bandwidth in bytes per second of virtual time.
    pub bytes_per_sec: f64,
    /// Maximum extra one-way delay, drawn uniformly per message from the
    /// simulation's deterministic RNG. Zero (the default) models a
    /// `tc netem` shaper without variance; real WANs have some. FIFO is
    /// preserved regardless (a jittered message never overtakes an
    /// earlier one on the same link).
    pub jitter: SimDuration,
}

impl LinkSpec {
    /// Build from a measured RTT in milliseconds and a throughput in
    /// Mbit/s — the units used by Table I and Table II.
    pub fn from_rtt_mbit(rtt_ms: f64, mbit_per_sec: f64) -> Self {
        LinkSpec {
            one_way: SimDuration::from_millis_f64(rtt_ms / 2.0),
            bytes_per_sec: mbit_per_sec * 1e6 / 8.0,
            jitter: SimDuration::ZERO,
        }
    }

    /// Add uniform per-message jitter of up to `jitter` one-way.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// A link with the given one-way delay and effectively infinite
    /// bandwidth (useful for tests that only care about latency).
    pub fn delay_only(one_way: SimDuration) -> Self {
        LinkSpec {
            one_way,
            bytes_per_sec: f64::INFINITY,
            jitter: SimDuration::ZERO,
        }
    }

    /// Serialization delay for a message of `size` bytes.
    pub fn tx_time(&self, size: usize) -> SimDuration {
        if self.bytes_per_sec.is_infinite() || size == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(size as f64 / self.bytes_per_sec)
        }
    }

    /// Bandwidth in Mbit/s (for reporting).
    pub fn mbit_per_sec(&self) -> f64 {
        self.bytes_per_sec * 8.0 / 1e6
    }

    /// RTT assuming a symmetric reverse link (for reporting).
    pub fn rtt(&self) -> SimDuration {
        self.one_way + self.one_way
    }
}

/// Mutable per-link simulation state plus accounting.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    /// Virtual time until which the transmitter is busy.
    pub busy_until: SimTime,
    /// Latest arrival handed out (enforces FIFO under jitter).
    pub last_arrival: SimTime,
    /// Accumulated statistics.
    pub stats: LinkStats,
}

/// Counters exposed for experiments (backlog is the key signal for the
/// pub/sub saturation figure).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Messages ever enqueued on this link.
    pub messages: u64,
    /// Payload bytes ever enqueued.
    pub bytes: u64,
    /// Worst queueing delay (time a message waited behind earlier ones).
    pub max_queue_delay: SimDuration,
}

impl LinkState {
    /// Enqueue a `size`-byte message at `now`; returns its arrival time at
    /// the far end and updates busy/accounting state. `jitter_ns` is the
    /// extra delay drawn by the caller (0 for jitter-free links); FIFO is
    /// preserved by clamping arrivals to be non-decreasing.
    pub fn transmit(&mut self, spec: &LinkSpec, now: SimTime, size: usize) -> SimTime {
        self.transmit_jittered(spec, now, size, 0)
    }

    /// [`LinkState::transmit`] with an explicit jitter draw in nanos.
    pub fn transmit_jittered(
        &mut self,
        spec: &LinkSpec,
        now: SimTime,
        size: usize,
        jitter_ns: u64,
    ) -> SimTime {
        let start = self.busy_until.max(now);
        let queue_delay = start.since(now);
        let done = start + spec.tx_time(size);
        self.busy_until = done;
        self.stats.messages += 1;
        self.stats.bytes += size as u64;
        if queue_delay > self.stats.max_queue_delay {
            self.stats.max_queue_delay = queue_delay;
        }
        let arrival =
            (done + spec.one_way + SimDuration::from_nanos(jitter_ns)).max(self.last_arrival);
        self.last_arrival = arrival;
        arrival
    }

    /// Bytes currently unsent, given `now` (approximation derived from
    /// `busy_until`; exact for constant-size backlogs).
    pub fn backlog(&self, spec: &LinkSpec, now: SimTime) -> f64 {
        if self.busy_until <= now || spec.bytes_per_sec.is_infinite() {
            0.0
        } else {
            self.busy_until.since(now).as_secs_f64() * spec.bytes_per_sec
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_is_halved_into_one_way() {
        let l = LinkSpec::from_rtt_mbit(53.87, 44.5);
        assert_eq!(l.one_way, SimDuration::from_millis_f64(26.935));
        assert!((l.mbit_per_sec() - 44.5).abs() < 1e-9);
        assert_eq!(l.rtt(), SimDuration::from_millis_f64(53.87));
    }

    #[test]
    fn tx_time_scales_with_size() {
        let l = LinkSpec::from_rtt_mbit(0.0, 8.0); // 1 MB/s
        assert_eq!(l.tx_time(1_000_000), SimDuration::from_secs(1));
        assert_eq!(l.tx_time(0), SimDuration::ZERO);
        assert_eq!(
            LinkSpec::delay_only(SimDuration::from_millis(5)).tx_time(1 << 30),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fifo_queueing_serializes_transmissions() {
        let spec = LinkSpec::from_rtt_mbit(20.0, 8.0); // 10ms one-way, 1 MB/s
        let mut st = LinkState::default();
        // Two 1 MB messages sent back-to-back at t=0.
        let a1 = st.transmit(&spec, SimTime::ZERO, 1_000_000);
        let a2 = st.transmit(&spec, SimTime::ZERO, 1_000_000);
        assert_eq!(a1, SimTime::ZERO + SimDuration::from_millis(1010));
        assert_eq!(a2, SimTime::ZERO + SimDuration::from_millis(2010));
        assert_eq!(st.stats.messages, 2);
        assert_eq!(st.stats.bytes, 2_000_000);
        assert_eq!(st.stats.max_queue_delay, SimDuration::from_secs(1));
    }

    #[test]
    fn arrivals_are_monotonic_even_with_gaps() {
        let spec = LinkSpec::from_rtt_mbit(10.0, 80.0);
        let mut st = LinkState::default();
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for i in 0..50 {
            now += SimDuration::from_micros((i % 7) * 100);
            let arr = st.transmit(&spec, now, 8192);
            assert!(arr >= last, "FIFO violated");
            last = arr;
        }
    }

    #[test]
    fn backlog_reflects_pending_bytes() {
        let spec = LinkSpec::from_rtt_mbit(0.0, 8.0); // 1 MB/s
        let mut st = LinkState::default();
        st.transmit(&spec, SimTime::ZERO, 2_000_000);
        let backlog = st.backlog(&spec, SimTime::ZERO + SimDuration::from_secs(1));
        assert!((backlog - 1_000_000.0).abs() < 1.0);
        assert_eq!(
            st.backlog(&spec, SimTime::ZERO + SimDuration::from_secs(3)),
            0.0
        );
    }
}
