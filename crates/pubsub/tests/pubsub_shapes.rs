//! Shape tests for the §VI-C/§VI-D experiments: the qualitative claims
//! of Figs. 7 and 8 must hold in the reproduction.

use stabilizer_pubsub::{fig7_point, fig8_run, Fig8Mode, System};

#[test]
fn fig7_low_rate_latency_is_one_way_delay() {
    // At 250 msg/s nothing saturates: latency per site is its RTT
    // (one-way data + one-way ack).
    let r = fig7_point(System::Stabilizer, 250.0, 500, 8192, 1);
    let by_name = |n: &str| {
        r.iter()
            .find(|s| s.name == n)
            .unwrap()
            .avg_latency
            .as_millis_f64()
    };
    assert!(by_name("UT2") < 2.0, "LAN latency {}", by_name("UT2"));
    assert!(
        (34.0..40.0).contains(&by_name("WI")),
        "WI {}",
        by_name("WI")
    );
    assert!(
        (49.0..56.0).contains(&by_name("CLEM")),
        "CLEM {}",
        by_name("CLEM")
    );
    assert!(
        (46.0..53.0).contains(&by_name("MA")),
        "MA {}",
        by_name("MA")
    );
}

#[test]
fn fig7_wan_sites_bottleneck_at_link_bandwidth() {
    // 8000 msg/s * 8 KiB = 524 Mbit/s: beyond every WAN link's capacity.
    // Throughput must plateau near each link's configured bandwidth and
    // latency must blow up relative to the unloaded case.
    let loaded = fig7_point(System::Stabilizer, 8000.0, 4000, 8192, 2);
    let wi = loaded.iter().find(|s| s.name == "WI").unwrap();
    assert!(
        (0.75 * 361.82..=361.82 * 1.05).contains(&wi.throughput_mbit),
        "WI throughput {}",
        wi.throughput_mbit
    );
    assert!(
        wi.avg_latency.as_millis_f64() > 100.0,
        "WI queued latency {}",
        wi.avg_latency
    );
    // The LAN pair does not saturate.
    let ut2 = loaded.iter().find(|s| s.name == "UT2").unwrap();
    assert!(
        ut2.avg_latency.as_millis_f64() < 5.0,
        "UT2 latency {}",
        ut2.avg_latency
    );
}

#[test]
fn fig7_both_systems_bottleneck_alike_on_wan() {
    let stab = fig7_point(System::Stabilizer, 8000.0, 3000, 8192, 3);
    let puls = fig7_point(System::PulsarLike, 8000.0, 3000, 8192, 3);
    for name in ["WI", "CLEM", "MA"] {
        let s = stab
            .iter()
            .find(|x| x.name == name)
            .unwrap()
            .throughput_mbit;
        let p = puls
            .iter()
            .find(|x| x.name == name)
            .unwrap()
            .throughput_mbit;
        let ratio = s / p;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{name}: stab {s} vs pulsar {p}"
        );
    }
}

#[test]
fn fig7_pulsar_gc_inflates_lan_latency_at_high_rate() {
    // On the 10 Gb LAN pair no backlog forms, yet the Pulsar-like broker
    // shows latency growth with rate (GC pauses); Stabilizer stays flat.
    let stab_hi = fig7_point(System::Stabilizer, 16000.0, 8000, 8192, 4);
    let puls_lo = fig7_point(System::PulsarLike, 500.0, 2000, 8192, 4);
    let puls_hi = fig7_point(System::PulsarLike, 16000.0, 8000, 8192, 4);
    let ut2 = |r: &[stabilizer_pubsub::SiteResult]| {
        r.iter()
            .find(|s| s.name == "UT2")
            .unwrap()
            .avg_latency
            .as_millis_f64()
    };
    assert!(
        ut2(&stab_hi) < 2.0,
        "Stabilizer LAN latency grew: {}",
        ut2(&stab_hi)
    );
    assert!(
        ut2(&puls_hi) > ut2(&puls_lo) * 2.0,
        "Pulsar LAN latency did not grow with rate: {} vs {}",
        ut2(&puls_lo),
        ut2(&puls_hi)
    );
}

#[test]
fn fig8_reconfiguration_moves_latency_between_levels() {
    let all = fig8_run(Fig8Mode::AllSites, 5);
    let three = fig8_run(Fig8Mode::ThreeSites, 5);
    let changing = fig8_run(Fig8Mode::Changing, 5);

    let mean = |pts: &[stabilizer_pubsub::Fig8Point]| {
        pts.iter()
            .map(|p| p.avg_latency.as_millis_f64())
            .sum::<f64>()
            / pts.len() as f64
    };
    let all_ms = mean(&all);
    let three_ms = mean(&three);
    // All sites is gated by Clemson (~51 ms RTT); three sites by
    // Massachusetts (~48 ms) — a difference of about 3 ms.
    assert!((49.0..55.0).contains(&all_ms), "all-sites at {all_ms}ms");
    assert!(
        (46.0..52.0).contains(&three_ms),
        "three-sites at {three_ms}ms"
    );
    assert!(all_ms > three_ms, "all {all_ms} <= three {three_ms}");
    // The changing series visits both levels: its per-second averages
    // span (roughly) from the three-sites level to the all-sites level.
    let lo = changing
        .iter()
        .map(|p| p.avg_latency.as_millis_f64())
        .fold(f64::MAX, f64::min);
    let hi = changing
        .iter()
        .map(|p| p.avg_latency.as_millis_f64())
        .fold(0.0, f64::max);
    assert!(
        lo < three_ms + 1.0,
        "changing never dropped to three-sites level: {lo}"
    );
    assert!(
        hi > all_ms - 2.0,
        "changing never rose to all-sites level: {hi}"
    );
}
