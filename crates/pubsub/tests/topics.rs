//! Integration tests for the multi-topic extension: subscription gossip,
//! topic isolation, and per-topic predicate reconfiguration.

use bytes::Bytes;
use stabilizer_core::NodeId;
use stabilizer_netsim::NetTopology;
use stabilizer_pubsub::{build_topic_brokers, pubsub_cfg};

fn sim() -> stabilizer_netsim::Simulation<stabilizer_pubsub::TopicBroker> {
    build_topic_brokers(&pubsub_cfg(), NetTopology::cloudlab_table2(), 1).unwrap()
}

#[test]
fn subscriptions_gossip_to_every_broker() {
    let mut sim = sim();
    sim.with_ctx(2, |b, ctx| b.subscribe_in(ctx, "stocks"))
        .unwrap();
    sim.with_ctx(4, |b, ctx| b.subscribe_in(ctx, "stocks"))
        .unwrap();
    sim.run_until_idle();
    for i in 0..5 {
        assert_eq!(
            sim.actor(i).subscribers("stocks"),
            vec![NodeId(2), NodeId(4)],
            "broker {i} has a stale view"
        );
    }
}

#[test]
fn topics_are_isolated() {
    let mut sim = sim();
    sim.with_ctx(2, |b, ctx| b.subscribe_in(ctx, "stocks"))
        .unwrap();
    sim.with_ctx(3, |b, ctx| b.subscribe_in(ctx, "news"))
        .unwrap();
    sim.run_until_idle();
    sim.with_ctx(0, |b, ctx| {
        b.publish_in(ctx, "stocks", Bytes::from_static(b"AAPL"))
    })
    .unwrap();
    sim.with_ctx(0, |b, ctx| {
        b.publish_in(ctx, "news", Bytes::from_static(b"headline!"))
    })
    .unwrap();
    sim.run_until_idle();
    let topics_at = |i: usize| -> Vec<String> {
        sim.actor(i)
            .deliveries
            .iter()
            .map(|(_, t, _)| t.clone())
            .collect()
    };
    assert_eq!(topics_at(2), vec!["stocks".to_owned()]);
    assert_eq!(topics_at(3), vec!["news".to_owned()]);
    assert!(
        topics_at(4).is_empty(),
        "unsubscribed broker received a delivery"
    );
}

#[test]
fn per_topic_predicate_tracks_only_subscribed_sites() {
    let mut sim = sim();
    // Only Wisconsin (fast-ish) subscribes: the topic frontier must not
    // wait for Clemson.
    sim.with_ctx(2, |b, ctx| b.subscribe_in(ctx, "t")).unwrap();
    sim.run_until_idle();
    let seq = sim
        .with_ctx(0, |b, ctx| {
            b.publish_in(ctx, "t", Bytes::from(vec![0u8; 8192]))
        })
        .unwrap();
    sim.run_until_idle();
    let publisher = sim.actor(0);
    assert_eq!(publisher.topic_frontier("t"), Some(seq));
    let covered_at = publisher
        .frontier_log
        .iter()
        .find(|(_, t, s)| t == "t" && *s >= seq)
        .map(|(at, _, _)| *at)
        .unwrap();
    let lat = covered_at
        .since(publisher.send_times.last().copied().unwrap())
        .as_millis_f64();
    assert!(
        (34.0..40.0).contains(&lat),
        "WI-only topic stabilized at {lat}ms"
    );
}

#[test]
fn unsubscribe_narrows_the_predicate_dynamically() {
    let mut sim = sim();
    for i in [2usize, 3] {
        sim.with_ctx(i, |b, ctx| b.subscribe_in(ctx, "t")).unwrap();
    }
    sim.run_until_idle();
    // With Clemson (3) subscribed the frontier is Clemson-gated (~51 ms).
    let s1 = sim
        .with_ctx(0, |b, ctx| {
            b.publish_in(ctx, "t", Bytes::from(vec![0u8; 1024]))
        })
        .unwrap();
    sim.run_until_idle();
    let lat = |sim: &stabilizer_netsim::Simulation<stabilizer_pubsub::TopicBroker>, seq: u64| {
        let p = sim.actor(0);
        let sent = p.send_times[seq as usize - 1];
        p.frontier_log
            .iter()
            .find(|(_, t, s)| t == "t" && *s >= seq)
            .map(|(at, _, _)| at.since(sent).as_millis_f64())
            .unwrap()
    };
    assert!(lat(&sim, s1) > 49.0, "Clemson-gated: {}", lat(&sim, s1));
    // Clemson unsubscribes; the regenerated predicate only tracks WI.
    sim.with_ctx(3, |b, ctx| b.unsubscribe_in(ctx, "t"))
        .unwrap();
    sim.run_until_idle();
    let s2 = sim
        .with_ctx(0, |b, ctx| {
            b.publish_in(ctx, "t", Bytes::from(vec![0u8; 1024]))
        })
        .unwrap();
    sim.run_until_idle();
    assert!(
        lat(&sim, s2) < 40.0,
        "WI-gated after unsubscribe: {}",
        lat(&sim, s2)
    );
}

#[test]
fn no_subscribers_means_no_tracking_predicate() {
    let mut sim = sim();
    sim.with_ctx(2, |b, ctx| b.subscribe_in(ctx, "t")).unwrap();
    sim.run_until_idle();
    assert!(sim.actor(0).topic_frontier("t").is_some());
    sim.with_ctx(2, |b, ctx| b.unsubscribe_in(ctx, "t"))
        .unwrap();
    sim.run_until_idle();
    assert_eq!(sim.actor(0).topic_frontier("t"), None);
}

#[test]
fn late_subscriber_replays_retained_history() {
    let mut sim = sim();
    // WI subscribes so the topic has traffic; MA joins late.
    sim.with_ctx(2, |b, ctx| b.subscribe_in(ctx, "t")).unwrap();
    sim.run_until_idle();
    for i in 0..5u8 {
        sim.with_ctx(0, |b, ctx| {
            b.publish_in(ctx, "t", Bytes::from(vec![i; 100]))
        })
        .unwrap();
    }
    sim.run_until_idle();
    assert!(sim.actor(4).deliveries.is_empty(), "not yet subscribed");
    let replayed = sim
        .with_ctx(4, |b, ctx| b.subscribe_with_replay_in(ctx, "t"))
        .unwrap();
    assert_eq!(replayed, 5, "history replayed from the retained mirror");
    assert_eq!(sim.actor(4).deliveries.len(), 5);
    // New messages flow normally after the catch-up.
    sim.run_until_idle();
    sim.with_ctx(0, |b, ctx| {
        b.publish_in(ctx, "t", Bytes::from_static(b"live"))
    })
    .unwrap();
    sim.run_until_idle();
    assert_eq!(sim.actor(4).deliveries.len(), 6);
}

#[test]
fn retention_limit_bounds_replay() {
    let mut sim = sim();
    sim.actor_mut(4).set_retain_limit(3);
    sim.with_ctx(2, |b, ctx| b.subscribe_in(ctx, "t")).unwrap();
    sim.run_until_idle();
    for i in 0..10u8 {
        sim.with_ctx(0, |b, ctx| b.publish_in(ctx, "t", Bytes::from(vec![i; 10])))
            .unwrap();
    }
    sim.run_until_idle();
    let replayed = sim
        .with_ctx(4, |b, ctx| b.subscribe_with_replay_in(ctx, "t"))
        .unwrap();
    assert_eq!(replayed, 3, "only the retained tail replays");
}
