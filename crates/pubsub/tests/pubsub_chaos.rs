//! The chaos invariant checker over the pub/sub brokers. `StabBroker`
//! records subscriber deliveries as `(time, seq)` of the publisher
//! stream; this adapts them to the checker's `(time, origin, seq)` log
//! so the delivery-prefix invariant is exercised too. The publisher's
//! `site_k` predicates also drive the frontier invariants for free.

use stabilizer_chaos::{InvariantChecker, NodeView};
use stabilizer_core::{ClusterConfig, NodeId, SeqNo};
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};
use stabilizer_pubsub::build_brokers;

const PUBLISHER: usize = 0;
const N: usize = 5;

type DeliveryLog = Vec<(SimTime, NodeId, SeqNo, usize)>;

#[test]
fn pubsub_workload_upholds_every_invariant_per_step() {
    // The experiments' `pubsub_cfg` runs over a loss-free network and
    // leaves retransmission off; under injected loss it must be on or
    // in-order delivery stalls at the first dropped message.
    let cfg = ClusterConfig::parse(
        "az Utah UT1 UT2\n\
         az Wisconsin WI\n\
         az Clemson CLEM\n\
         az Massachusetts MA\n\
         option send_buffer_bytes 2147483647\n\
         option retransmit_millis 50\n",
    )
    .unwrap();
    let mut sim = build_brokers(&cfg, NetTopology::cloudlab_table2(), 13).unwrap();
    for i in 1..N {
        sim.actor_mut(i).subscribe();
    }
    let mut checker = InvariantChecker::new(N, sim.actor(0).stabilizer().recorder().num_types());

    // Degrade the Wisconsin link mid-run: loss first, then a bandwidth
    // collapse, while the publisher keeps a steady stream going.
    sim.set_link_loss(PUBLISHER, 2, 0.3);
    for i in 0..30u64 {
        sim.with_ctx(PUBLISHER, |b, ctx| b.publish_one(ctx, 512))
            .unwrap();
        if i == 10 {
            sim.set_link_loss(PUBLISHER, 2, 0.0);
            sim.set_egress_limit(PUBLISHER, 50_000.0);
        }
        if i == 20 {
            sim.set_egress_limit(PUBLISHER, 1e12);
        }
        let deadline = sim.now() + SimDuration::from_millis(25);
        while sim.next_event_time().is_some_and(|t| t <= deadline) {
            sim.step();
            check(&mut checker, &sim);
        }
    }
    // Drain and do a final sweep.
    let deadline = sim.now() + SimDuration::from_secs(10);
    while sim.next_event_time().is_some_and(|t| t <= deadline) {
        sim.step();
        check(&mut checker, &sim);
    }
    // End-to-end sanity: every subscriber received the whole stream.
    for i in 1..N {
        assert_eq!(
            sim.actor(i).deliveries.len(),
            30,
            "site {i} missed deliveries"
        );
    }
}

fn check(
    checker: &mut InvariantChecker,
    sim: &stabilizer_netsim::Simulation<stabilizer_pubsub::StabBroker>,
) {
    // Adapt broker delivery logs (publisher stream only) to the
    // checker's (time, origin, seq) shape. Rebuilt per call; the
    // checker's cursors only consume the new tail.
    let dlogs: Vec<DeliveryLog> = (0..N)
        .map(|i| {
            sim.actor(i)
                .deliveries
                .iter()
                .map(|&(at, seq)| (at, NodeId(PUBLISHER as u16), seq, 0usize))
                .collect()
        })
        .collect();
    let views: Vec<NodeView<'_>> = (0..N)
        .map(|i| NodeView {
            node: sim.actor(i).stabilizer(),
            frontier_log: &[],
            delivery_log: &dlogs[i],
            catchup_log: &[],
            suspected_log: &[],
            recovered_log: &[],
            records_deliveries: i != PUBLISHER,
            dirty: None,
        })
        .collect();
    checker
        .check(sim.now(), &views)
        .expect("pub/sub workload violated a chaos invariant");
}
