//! The Stabilizer-based pub/sub broker prototype (§V-B).
//!
//! The broker wraps the Stabilizer library in a thin layer: `publish`
//! multicasts on the asynchronous data plane, `subscribe` registers a
//! delivery callback, and the publisher tracks per-subscriber progress
//! through stability-frontier predicates — which also provides the
//! end-to-end latency measurement of §VI-C ("the publisher can calculate
//! the end-to-end latency by tracking ACK arrival times and subtracting
//! the corresponding message send times").

use bytes::Bytes;
use stabilizer_core::{Action, ClusterConfig, CoreError, NodeId, SeqNo, StabilizerNode, WireMsg};
use stabilizer_dsl::AckTypeRegistry;
use stabilizer_netsim::{Actor, Ctx, NetTopology, SimDuration, SimTime, Simulation, TimerId};
use std::sync::Arc;

const TAG_PUBLISH: u64 = 10;
const TAG_RETRANSMIT: u64 = 11;

/// A paced publishing workload: `count` messages of `size` bytes at
/// `interval` spacing.
#[derive(Debug, Clone, Copy)]
pub struct PublishLoad {
    /// Total messages to publish.
    pub count: u64,
    /// Gap between consecutive publishes.
    pub interval: SimDuration,
    /// Payload size in bytes.
    pub size: usize,
}

/// One broker of the pub/sub deployment (a Stabilizer node plus the
/// publisher's measurement state).
pub struct StabBroker {
    node: StabilizerNode,
    /// Send time of each sequence number (publisher side), 1-based.
    pub send_times: Vec<SimTime>,
    /// Per-site first time the site's ACK covered each sequence number:
    /// `ack_times[site][seq-1]`.
    pub ack_times: Vec<Vec<Option<SimTime>>>,
    /// Deliveries observed at this broker (subscriber side):
    /// `(time, seq)` of the publisher stream.
    pub deliveries: Vec<(SimTime, SeqNo)>,
    /// Every frontier update observed: `(time, key, frontier)`.
    pub frontier_log: Vec<(SimTime, String, SeqNo)>,
    load: Option<PublishLoad>,
    published: u64,
    /// Subscription flags per local broker (drives the active-broker
    /// list and Fig. 8's predicate reconfiguration).
    pub subscribed: bool,
}

impl StabBroker {
    /// Build broker `me`.
    ///
    /// # Errors
    ///
    /// Propagates predicate-compile failures.
    pub fn new(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
    ) -> Result<Self, CoreError> {
        let n = cfg.num_nodes();
        let mut node = StabilizerNode::new(cfg, me, acks)?;
        // The publisher tracks each remote site individually: predicate
        // "site_k" follows site k's received counter for this stream.
        for k in 0..n {
            if k != me.0 as usize {
                node.register_predicate(me, &format!("site_{k}"), &format!("MAX(${})", k + 1))?;
            }
        }
        Ok(StabBroker {
            node,
            send_times: Vec::new(),
            ack_times: vec![Vec::new(); n],
            deliveries: Vec::new(),
            frontier_log: Vec::new(),
            load: None,
            published: 0,
            subscribed: false,
        })
    }

    /// Begin a paced publishing run.
    pub fn start_publishing(&mut self, ctx: &mut Ctx<'_, WireMsg>, load: PublishLoad) {
        self.load = Some(load);
        self.published = 0;
        self.publish_next(ctx);
    }

    /// Publish one message immediately (used by Fig. 8's fixed-rate run).
    ///
    /// # Errors
    ///
    /// Data-plane errors.
    pub fn publish_one(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        size: usize,
    ) -> Result<SeqNo, CoreError> {
        let seq = self.node.publish(Bytes::from(vec![0u8; size]))?;
        debug_assert_eq!(seq as usize, self.send_times.len() + 1);
        self.send_times.push(ctx.now());
        self.drain(ctx);
        Ok(seq)
    }

    /// Register or change a custom tracking predicate on the publisher
    /// stream (Fig. 8 uses this for all-sites / three-sites switching).
    ///
    /// # Errors
    ///
    /// DSL compile errors or unknown keys (for `change`).
    pub fn set_predicate(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        key: &str,
        source: &str,
        change: bool,
    ) -> Result<(), CoreError> {
        let me = self.node.me();
        if change {
            self.node.change_predicate(me, key, source)?;
        } else {
            self.node.register_predicate(me, key, source)?;
        }
        self.drain(ctx);
        Ok(())
    }

    /// Current frontier of a predicate on this broker's own stream.
    pub fn frontier(&self, key: &str) -> Option<SeqNo> {
        self.node
            .stability_frontier(self.node.me(), key)
            .map(|(s, _)| s)
    }

    /// Local subscribe: future deliveries invoke the recorded log (the
    /// active-broker list is the set of subscribed brokers).
    pub fn subscribe(&mut self) {
        self.subscribed = true;
    }

    /// Local unsubscribe.
    pub fn unsubscribe(&mut self) {
        self.subscribed = false;
    }

    /// The embedded Stabilizer node.
    pub fn stabilizer(&self) -> &StabilizerNode {
        &self.node
    }

    /// Per-site end-to-end latency of `seq` (publisher side): ACK arrival
    /// minus send time.
    pub fn latency_of(&self, site: usize, seq: SeqNo) -> Option<SimDuration> {
        let ack = (*self.ack_times.get(site)?.get(seq as usize - 1)?)?;
        Some(ack.since(*self.send_times.get(seq as usize - 1)?))
    }

    fn publish_next(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let Some(load) = self.load else { return };
        if self.published >= load.count {
            return;
        }
        // Publish even under backpressure pressure by growing the buffer:
        // the experiment sizes buffers generously; a real deployment
        // would propagate backpressure to the producer.
        match self.publish_one(ctx, load.size) {
            Ok(_) => {
                self.published += 1;
                if self.published < load.count {
                    ctx.set_timer(load.interval, TAG_PUBLISH);
                }
            }
            Err(_) => {
                // Buffer full: retry shortly without consuming the quota.
                ctx.set_timer(SimDuration::from_micros(200), TAG_PUBLISH);
            }
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let me = self.node.me().0 as usize;
        for action in self.node.take_actions() {
            match action {
                Action::Send { to, msg } => ctx.send(to.0 as usize, msg),
                Action::Deliver { origin, seq, .. } => {
                    if origin.0 as usize != me && self.subscribed {
                        self.deliveries.push((ctx.now(), seq));
                    } else if origin.0 as usize != me {
                        // Unsubscribed brokers still mirror (reliable
                        // broadcast keeps them consistent) but do not
                        // upcall.
                    }
                }
                Action::Frontier(update) => {
                    self.frontier_log
                        .push((ctx.now(), update.key.clone(), update.seq));
                    // Per-site predicates feed the latency table.
                    if let Some(rest) = update.key.strip_prefix("site_") {
                        if let Ok(site) = rest.parse::<usize>() {
                            let seq = update.seq as usize;
                            let table = &mut self.ack_times[site];
                            if table.len() < seq {
                                table.resize(seq, None);
                            }
                            // Monotone frontier: fill every newly covered
                            // seq with this arrival time.
                            for cell in table.iter_mut().take(seq) {
                                if cell.is_none() {
                                    *cell = Some(ctx.now());
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for StabBroker {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        // The experiments run over loss-free links, so the broker never
        // needed a retransmission driver; with `retransmit_millis`
        // configured (e.g. under injected loss) pump the reliability
        // check like the core `SimNode` driver does.
        let retransmit = self.node.config().options().retransmit_millis;
        if retransmit > 0 {
            ctx.set_timer(
                SimDuration::from_millis((retransmit / 2).max(1)),
                TAG_RETRANSMIT,
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, WireMsg>, from: usize, msg: WireMsg) {
        self.node
            .on_message(ctx.now().as_nanos(), NodeId(from as u16), msg);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WireMsg>, _t: TimerId, tag: u64) {
        match tag {
            TAG_PUBLISH => self.publish_next(ctx),
            TAG_RETRANSMIT => {
                self.node.on_retransmit_check(ctx.now().as_nanos());
                self.drain(ctx);
                let retransmit = self.node.config().options().retransmit_millis;
                ctx.set_timer(
                    SimDuration::from_millis((retransmit / 2).max(1)),
                    TAG_RETRANSMIT,
                );
            }
            _ => {}
        }
    }
}

/// Build a pub/sub deployment of Stabilizer brokers over `net`.
///
/// # Errors
///
/// Propagates configuration and predicate-compile errors.
///
/// # Panics
///
/// Panics if sizes mismatch.
pub fn build_brokers(
    cfg: &ClusterConfig,
    net: NetTopology,
    seed: u64,
) -> Result<Simulation<StabBroker>, CoreError> {
    assert_eq!(net.len(), cfg.num_nodes());
    let acks = Arc::new(AckTypeRegistry::new());
    let mut brokers = Vec::with_capacity(cfg.num_nodes());
    for i in 0..cfg.num_nodes() {
        brokers.push(StabBroker::new(
            cfg.clone(),
            NodeId(i as u16),
            Arc::clone(&acks),
        )?);
    }
    Ok(Simulation::new(net, brokers, seed))
}
