//! # Pub/sub service prototype and baseline (§V-B, §VI-C, §VI-D)
//!
//! Two geo-replicated pub/sub implementations over the same simulated
//! WAN:
//!
//! * [`StabBroker`] — the paper's prototype: a thin broker layer over
//!   Stabilizer whose publisher tracks per-subscriber progress (and thus
//!   end-to-end latency) through stability-frontier predicates, and can
//!   reconfigure the tracked predicate at runtime (Fig. 8);
//! * [`PulsarBroker`] — the Apache Pulsar stand-in: per-peer replication
//!   queues with the paper's buffering patch and a JVM GC pause model
//!   (Fig. 7's LAN latency growth).

//! ```
//! use stabilizer_pubsub::{build_topic_brokers, pubsub_cfg};
//! use stabilizer_netsim::NetTopology;
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = build_topic_brokers(&pubsub_cfg(), NetTopology::cloudlab_table2(), 1)?;
//! sim.with_ctx(2, |b, ctx| b.subscribe_in(ctx, "news"))?;
//! sim.run_until_idle();
//! sim.with_ctx(0, |b, ctx| b.publish_in(ctx, "news", Bytes::from_static(b"hi")))?;
//! sim.run_until_idle();
//! assert_eq!(sim.actor(2).deliveries.len(), 1);
//! # Ok(()) }
//! ```

pub mod experiment;
pub mod pulsar;
pub mod stab_broker;
pub mod topics;

pub use experiment::{fig7_point, fig8_run, pubsub_cfg, Fig8Mode, Fig8Point, SiteResult, System};
pub use pulsar::{build_pulsar, GcModel, PulsarBroker, PulsarLoad, PulsarMsg};
pub use stab_broker::{build_brokers, PublishLoad, StabBroker};
pub use topics::{build_topic_brokers, TopicBroker, TopicRecord};
