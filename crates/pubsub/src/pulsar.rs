//! The Pulsar-like baseline broker for the Fig. 7 comparison.
//!
//! Models the parts of Apache Pulsar's non-persistent geo-replication
//! that determine its latency/throughput shape in §VI-C:
//!
//! * per-remote-broker sender queues drained by a dispatch loop
//!   (non-blocking IO), **with the paper's patch applied**: messages to a
//!   temporarily slow link are buffered and retried in order rather than
//!   silently dropped;
//! * a JVM garbage-collection pause model: the broker "allocates" per
//!   message processed, and every time the modeled young generation
//!   fills, the dispatch loop stalls for a pause — this is the
//!   mechanism the paper blames for Pulsar's rising LAN latency
//!   ("we believe this is associated with garbage collection within its
//!   JVM").
//!
//! Substitution note (DESIGN.md): the real Pulsar is a large Java system;
//! this model reproduces the two behaviours the experiment measures —
//! shared-link saturation and allocation-driven pauses — not its feature
//! set.

use stabilizer_netsim::{
    Actor, Ctx, MsgSize, NetTopology, SimDuration, SimTime, Simulation, TimerId,
};
use std::collections::VecDeque;

const TAG_PUBLISH: u64 = 1;
const TAG_DISPATCH: u64 = 2;

/// Pulsar-model messages.
#[derive(Debug, Clone, Copy)]
pub enum PulsarMsg {
    /// A replicated message of the single experiment topic.
    Data {
        /// Sequence number (per publisher).
        seq: u64,
        /// Payload size.
        size: usize,
    },
    /// Consumer-side acknowledgment back to the publisher broker.
    Ack {
        /// Acked sequence.
        seq: u64,
    },
}

impl MsgSize for PulsarMsg {
    fn wire_size(&self) -> usize {
        match self {
            PulsarMsg::Data { size, .. } => 64 + size,
            PulsarMsg::Ack { .. } => 64,
        }
    }
}

/// JVM GC pause model parameters.
#[derive(Debug, Clone, Copy)]
pub struct GcModel {
    /// Modeled allocation per processed message, as a multiple of the
    /// message size (serialization buffers, batch wrappers, ...).
    pub alloc_factor: f64,
    /// Young-generation size in bytes; filling it triggers a pause.
    pub young_gen_bytes: f64,
    /// Stop-the-world pause per collection.
    pub pause: SimDuration,
}

impl Default for GcModel {
    fn default() -> Self {
        GcModel {
            alloc_factor: 3.0,
            young_gen_bytes: 64.0 * 1024.0 * 1024.0,
            pause: SimDuration::from_millis(12),
        }
    }
}

/// The paced publishing workload (same shape as the Stabilizer broker's).
#[derive(Debug, Clone, Copy)]
pub struct PulsarLoad {
    /// Messages to publish.
    pub count: u64,
    /// Inter-publish gap.
    pub interval: SimDuration,
    /// Payload size.
    pub size: usize,
}

/// A Pulsar-like broker. The publisher broker owns per-peer replication
/// queues; remote brokers deliver to local subscribers and ack back.
pub struct PulsarBroker {
    /// Per-peer replication queues (publisher side).
    queues: Vec<VecDeque<(u64, usize)>>,
    /// Send time per sequence (1-based index `seq-1`).
    pub send_times: Vec<SimTime>,
    /// Per-site ACK arrival times: `ack_times[site][seq-1]`.
    pub ack_times: Vec<Vec<Option<SimTime>>>,
    /// Deliveries at this broker (subscriber side).
    pub deliveries: Vec<(SimTime, u64)>,
    load: Option<PulsarLoad>,
    published: u64,
    next_seq: u64,
    gc: GcModel,
    allocated: f64,
    /// Dispatch loop blocked until this time by a GC pause.
    gc_until: SimTime,
    dispatch_scheduled: bool,
    /// Total GC pauses taken (exposed for the ablation bench).
    pub gc_pauses: u64,
}

impl PulsarBroker {
    /// A broker in an `n`-site deployment.
    pub fn new(n: usize, gc: GcModel) -> Self {
        PulsarBroker {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            send_times: Vec::new(),
            ack_times: vec![Vec::new(); n],
            deliveries: Vec::new(),
            load: None,
            published: 0,
            next_seq: 0,
            gc,
            allocated: 0.0,
            gc_until: SimTime::ZERO,
            dispatch_scheduled: false,
            gc_pauses: 0,
        }
    }

    /// Begin a paced publishing run.
    pub fn start_publishing(&mut self, ctx: &mut Ctx<'_, PulsarMsg>, load: PulsarLoad) {
        self.load = Some(load);
        self.published = 0;
        self.publish_next(ctx);
    }

    /// Latency of `seq` at `site` (ACK arrival minus send time).
    pub fn latency_of(&self, site: usize, seq: u64) -> Option<SimDuration> {
        let ack = (*self.ack_times.get(site)?.get(seq as usize - 1)?)?;
        Some(ack.since(*self.send_times.get(seq as usize - 1)?))
    }

    fn publish_next(&mut self, ctx: &mut Ctx<'_, PulsarMsg>) {
        let Some(load) = self.load else { return };
        if self.published >= load.count {
            return;
        }
        self.next_seq += 1;
        self.published += 1;
        self.send_times.push(ctx.now());
        let me = ctx.me();
        for peer in 0..ctx.num_nodes() {
            if peer != me {
                self.queues[peer].push_back((self.next_seq, load.size));
            }
        }
        self.charge_allocation(ctx, load.size);
        self.schedule_dispatch(ctx);
        if self.published < load.count {
            ctx.set_timer(load.interval, TAG_PUBLISH);
        }
    }

    /// Account allocation and trigger a modeled GC pause when the young
    /// generation fills.
    fn charge_allocation(&mut self, ctx: &mut Ctx<'_, PulsarMsg>, size: usize) {
        self.allocated += size as f64 * self.gc.alloc_factor;
        if self.allocated >= self.gc.young_gen_bytes {
            self.allocated = 0.0;
            self.gc_pauses += 1;
            let resume = ctx.now() + self.gc.pause;
            if resume > self.gc_until {
                self.gc_until = resume;
            }
        }
    }

    fn schedule_dispatch(&mut self, ctx: &mut Ctx<'_, PulsarMsg>) {
        if self.dispatch_scheduled {
            return;
        }
        self.dispatch_scheduled = true;
        let delay = if ctx.now() < self.gc_until {
            self.gc_until.since(ctx.now())
        } else {
            SimDuration::ZERO
        };
        ctx.set_timer(delay, TAG_DISPATCH);
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, PulsarMsg>) {
        self.dispatch_scheduled = false;
        if ctx.now() < self.gc_until {
            // Stop-the-world: try again when the collector finishes.
            self.schedule_dispatch(ctx);
            return;
        }
        let mut any_left = false;
        for peer in 0..self.queues.len() {
            // Drain a bounded batch per loop iteration (Pulsar's
            // dispatcher fairness), buffering the rest — the paper's
            // patched behaviour: never drop, always retry in order.
            for _ in 0..16 {
                let Some((seq, size)) = self.queues[peer].pop_front() else {
                    break;
                };
                ctx.send(peer, PulsarMsg::Data { seq, size });
                self.charge_allocation(ctx, size);
            }
            any_left |= !self.queues[peer].is_empty();
        }
        if any_left {
            self.dispatch_scheduled = true;
            ctx.set_timer(SimDuration::from_micros(100), TAG_DISPATCH);
        }
    }
}

impl Actor for PulsarBroker {
    type Msg = PulsarMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, PulsarMsg>, from: usize, msg: PulsarMsg) {
        match msg {
            PulsarMsg::Data { seq, size } => {
                self.deliveries.push((ctx.now(), seq));
                self.charge_allocation(ctx, size);
                ctx.send(from, PulsarMsg::Ack { seq });
            }
            PulsarMsg::Ack { seq } => {
                let table = &mut self.ack_times[from];
                if table.len() < seq as usize {
                    table.resize(seq as usize, None);
                }
                if table[seq as usize - 1].is_none() {
                    table[seq as usize - 1] = Some(ctx.now());
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, PulsarMsg>, _t: TimerId, tag: u64) {
        match tag {
            TAG_PUBLISH => self.publish_next(ctx),
            TAG_DISPATCH => self.dispatch(ctx),
            _ => {}
        }
    }
}

/// Build a Pulsar-like deployment over `net`.
pub fn build_pulsar(net: NetTopology, gc: GcModel, seed: u64) -> Simulation<PulsarBroker> {
    let n = net.len();
    let brokers = (0..n).map(|_| PulsarBroker::new(n, gc)).collect();
    Simulation::new(net, brokers, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_netsim::{NetTopology, Simulation};

    fn lan(n: usize) -> NetTopology {
        NetTopology::full_mesh(n, SimDuration::from_micros(50), 1e9)
    }

    #[test]
    fn publishing_delivers_and_acks() {
        let mut sim = build_pulsar(lan(3), GcModel::default(), 1);
        sim.with_ctx(0, |b, ctx| {
            b.start_publishing(
                ctx,
                PulsarLoad {
                    count: 10,
                    interval: SimDuration::from_millis(1),
                    size: 512,
                },
            )
        });
        sim.run_until_idle();
        for peer in 1..3 {
            assert_eq!(sim.actor(peer).deliveries.len(), 10, "peer {peer}");
        }
        for seq in 1..=10 {
            assert!(
                sim.actor(0).latency_of(1, seq).is_some(),
                "seq {seq} unacked"
            );
        }
    }

    #[test]
    fn gc_pauses_trigger_on_allocation_and_inflate_latency() {
        let tight = GcModel {
            alloc_factor: 3.0,
            young_gen_bytes: 64.0 * 1024.0, // tiny young gen: pause often
            pause: SimDuration::from_millis(10),
        };
        let mut sim = build_pulsar(lan(2), tight, 2);
        sim.with_ctx(0, |b, ctx| {
            b.start_publishing(
                ctx,
                PulsarLoad {
                    count: 100,
                    interval: SimDuration::from_micros(100),
                    size: 8192,
                },
            )
        });
        sim.run_until_idle();
        let broker = sim.actor(0);
        assert!(broker.gc_pauses > 5, "only {} pauses", broker.gc_pauses);
        // Worst-case latency reflects the stop-the-world pauses.
        let max_ms = (1..=100)
            .filter_map(|s| broker.latency_of(1, s))
            .map(|d| d.as_millis_f64())
            .fold(0.0, f64::max);
        assert!(max_ms >= 10.0, "max latency {max_ms}ms shows no pause");
    }

    #[test]
    fn no_gc_pauses_with_a_huge_young_gen() {
        let roomy = GcModel {
            alloc_factor: 1.0,
            young_gen_bytes: 1e12,
            pause: SimDuration::from_millis(10),
        };
        let mut sim = build_pulsar(lan(2), roomy, 3);
        sim.with_ctx(0, |b, ctx| {
            b.start_publishing(
                ctx,
                PulsarLoad {
                    count: 50,
                    interval: SimDuration::from_micros(100),
                    size: 8192,
                },
            )
        });
        sim.run_until_idle();
        assert_eq!(sim.actor(0).gc_pauses, 0);
    }

    #[test]
    fn queued_messages_are_never_dropped() {
        // The paper's patch: a slow link buffers rather than discards.
        let mut topo = NetTopology::new(&["pub", "slow"]);
        topo.set_symmetric(0, 1, stabilizer_netsim::LinkSpec::from_rtt_mbit(10.0, 1.0));
        let mut sim = Simulation::new(
            topo,
            vec![
                PulsarBroker::new(2, GcModel::default()),
                PulsarBroker::new(2, GcModel::default()),
            ],
            4,
        );
        sim.with_ctx(0, |b, ctx| {
            b.start_publishing(
                ctx,
                PulsarLoad {
                    count: 200,
                    interval: SimDuration::from_micros(10),
                    size: 8192,
                },
            )
        });
        sim.run_until_idle();
        let seqs: Vec<u64> = sim.actor(1).deliveries.iter().map(|(_, s)| *s).collect();
        assert_eq!(seqs, (1..=200).collect::<Vec<u64>>(), "drops or reordering");
    }
}
