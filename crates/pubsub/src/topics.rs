//! Multi-topic pub/sub — the extension the paper defers ("like support
//! for multiple topics, persistence would be easy to introduce").
//!
//! Topics ride on the same Stabilizer streams: every broker publishes
//! `Publish`/`Subscribe`/`Unsubscribe` records on its own stream, and
//! since every broker mirrors every stream, subscription state converges
//! everywhere without a separate membership protocol. A publishing
//! broker maintains, per topic, a stability predicate over exactly the
//! sites that currently have subscribers (the "active broker list" of
//! §V-B), rebuilding it with `change_predicate` as subscriptions come
//! and go — the mechanism behind the Fig. 8 experiment, generalized to
//! per-topic granularity.

use bytes::Bytes;
use stabilizer_core::{Action, ClusterConfig, CoreError, NodeId, SeqNo, StabilizerNode, WireMsg};
use stabilizer_dsl::AckTypeRegistry;
use stabilizer_netsim::{Actor, Ctx, NetTopology, SimTime, Simulation, TimerId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Records carried in broker stream messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicRecord {
    /// A message of `topic`.
    Publish {
        /// Topic name.
        topic: String,
        /// Payload.
        body: Bytes,
    },
    /// The sending broker gained its first local subscriber of `topic`.
    Subscribe {
        /// Topic name.
        topic: String,
    },
    /// The sending broker lost its last local subscriber of `topic`.
    Unsubscribe {
        /// Topic name.
        topic: String,
    },
}

impl TopicRecord {
    const TAG_PUBLISH: u8 = 0;
    const TAG_SUBSCRIBE: u8 = 1;
    const TAG_UNSUBSCRIBE: u8 = 2;

    /// Serialize for the data plane.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::new();
        let (tag, topic, body) = match self {
            TopicRecord::Publish { topic, body } => (Self::TAG_PUBLISH, topic, Some(body)),
            TopicRecord::Subscribe { topic } => (Self::TAG_SUBSCRIBE, topic, None),
            TopicRecord::Unsubscribe { topic } => (Self::TAG_UNSUBSCRIBE, topic, None),
        };
        out.push(tag);
        out.extend_from_slice(&(topic.len() as u16).to_le_bytes());
        out.extend_from_slice(topic.as_bytes());
        if let Some(body) = body {
            out.extend_from_slice(&(body.len() as u32).to_le_bytes());
            out.extend_from_slice(body);
        }
        Bytes::from(out)
    }

    /// Deserialize a record produced by [`TopicRecord::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(buf: &[u8]) -> Result<TopicRecord, CoreError> {
        let fail = |m: &str| CoreError::Wire(format!("topic record: {m}"));
        let tag = *buf.first().ok_or_else(|| fail("empty"))?;
        if buf.len() < 3 {
            return Err(fail("truncated"));
        }
        let tlen = u16::from_le_bytes(buf[1..3].try_into().unwrap()) as usize;
        if buf.len() < 3 + tlen {
            return Err(fail("truncated topic"));
        }
        let topic = std::str::from_utf8(&buf[3..3 + tlen])
            .map_err(|_| fail("topic not UTF-8"))?
            .to_owned();
        let rest = &buf[3 + tlen..];
        match tag {
            Self::TAG_PUBLISH => {
                if rest.len() < 4 {
                    return Err(fail("truncated body length"));
                }
                let blen = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
                if rest.len() != 4 + blen {
                    return Err(fail("body length mismatch"));
                }
                Ok(TopicRecord::Publish {
                    topic,
                    body: Bytes::copy_from_slice(&rest[4..]),
                })
            }
            Self::TAG_SUBSCRIBE if rest.is_empty() => Ok(TopicRecord::Subscribe { topic }),
            Self::TAG_UNSUBSCRIBE if rest.is_empty() => Ok(TopicRecord::Unsubscribe { topic }),
            Self::TAG_SUBSCRIBE | Self::TAG_UNSUBSCRIBE => Err(fail("trailing bytes")),
            _ => Err(fail("unknown tag")),
        }
    }
}

/// A multi-topic broker in the simulator.
pub struct TopicBroker {
    node: StabilizerNode,
    /// Topics with local subscribers.
    local_subs: BTreeSet<String>,
    /// Global subscription map: topic -> subscribed sites (converges via
    /// mirrored streams).
    remote_subs: BTreeMap<String, BTreeSet<NodeId>>,
    /// Messages delivered to local subscribers: `(time, topic, body len)`.
    pub deliveries: Vec<(SimTime, String, usize)>,
    /// Frontier log of per-topic tracking predicates.
    pub frontier_log: Vec<(SimTime, String, SeqNo)>,
    /// Send time per own-stream seq (1-based).
    pub send_times: Vec<SimTime>,
    /// Retained messages for replay to late subscribers (newest last),
    /// capped at [`TopicBroker::retain_limit`].
    retained: Vec<(String, Bytes)>,
    retain_limit: usize,
}

impl TopicBroker {
    /// Build broker `me`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn new(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
    ) -> Result<Self, CoreError> {
        Ok(TopicBroker {
            node: StabilizerNode::new(cfg, me, acks)?,
            local_subs: BTreeSet::new(),
            remote_subs: BTreeMap::new(),
            deliveries: Vec::new(),
            frontier_log: Vec::new(),
            send_times: Vec::new(),
            retained: Vec::new(),
            retain_limit: 10_000,
        })
    }

    /// Cap the per-broker message-retention buffer used by
    /// [`TopicBroker::subscribe_with_replay_in`] (default 10,000).
    pub fn set_retain_limit(&mut self, limit: usize) {
        self.retain_limit = limit;
        let len = self.retained.len();
        if len > limit {
            self.retained.drain(0..len - limit);
        }
    }

    /// Subscribe and immediately replay every retained message of
    /// `topic` into the delivery log — the "persistence" extension the
    /// paper defers: late subscribers catch up from the broker's
    /// retained mirror rather than missing history.
    ///
    /// # Errors
    ///
    /// Data-plane errors while announcing.
    pub fn subscribe_with_replay_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        topic: &str,
    ) -> Result<usize, CoreError> {
        self.subscribe_in(ctx, topic)?;
        let mut replayed = 0;
        let now = ctx.now();
        let matches: Vec<usize> = self
            .retained
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| t == topic)
            .map(|(i, _)| i)
            .collect();
        for i in matches {
            let (t, body) = &self.retained[i];
            self.deliveries.push((now, t.clone(), body.len()));
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Publish `body` on `topic`. The returned sequence number can be
    /// waited on via the topic's tracking predicate.
    ///
    /// # Errors
    ///
    /// Data-plane errors.
    pub fn publish_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        topic: &str,
        body: Bytes,
    ) -> Result<SeqNo, CoreError> {
        let rec = TopicRecord::Publish {
            topic: topic.to_owned(),
            body,
        };
        let seq = self.node.publish(rec.to_bytes())?;
        self.send_times.push(ctx.now());
        self.drain(ctx);
        Ok(seq)
    }

    /// Subscribe locally to `topic`; announces to all brokers when this
    /// is the first local subscriber.
    ///
    /// # Errors
    ///
    /// Data-plane errors while announcing.
    pub fn subscribe_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        topic: &str,
    ) -> Result<(), CoreError> {
        if self.local_subs.insert(topic.to_owned()) {
            let me = self.node.me();
            self.remote_subs
                .entry(topic.to_owned())
                .or_default()
                .insert(me);
            self.node.publish(
                TopicRecord::Subscribe {
                    topic: topic.to_owned(),
                }
                .to_bytes(),
            )?;
            self.send_times.push(ctx.now());
            self.refresh_predicate(topic);
            self.drain(ctx);
        }
        Ok(())
    }

    /// Drop the local subscription to `topic`.
    ///
    /// # Errors
    ///
    /// Data-plane errors while announcing.
    pub fn unsubscribe_in(
        &mut self,
        ctx: &mut Ctx<'_, WireMsg>,
        topic: &str,
    ) -> Result<(), CoreError> {
        if self.local_subs.remove(topic) {
            let me = self.node.me();
            self.remote_subs
                .entry(topic.to_owned())
                .or_default()
                .remove(&me);
            self.node.publish(
                TopicRecord::Unsubscribe {
                    topic: topic.to_owned(),
                }
                .to_bytes(),
            )?;
            self.send_times.push(ctx.now());
            self.refresh_predicate(topic);
            self.drain(ctx);
        }
        Ok(())
    }

    /// Sites currently known to subscribe to `topic`.
    pub fn subscribers(&self, topic: &str) -> Vec<NodeId> {
        self.remote_subs
            .get(topic)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Current frontier of the topic's tracking predicate ("every
    /// subscribed site received it"), if anyone subscribes.
    pub fn topic_frontier(&self, topic: &str) -> Option<SeqNo> {
        self.node
            .stability_frontier(self.node.me(), &Self::key(topic))
            .map(|(s, _)| s)
    }

    /// The embedded Stabilizer node.
    pub fn stabilizer(&self) -> &StabilizerNode {
        &self.node
    }

    fn key(topic: &str) -> String {
        format!("topic:{topic}")
    }

    /// Rebuild the tracking predicate for `topic` from the current
    /// remote-subscriber set (§V-B's dynamically managed predicate).
    fn refresh_predicate(&mut self, topic: &str) {
        let me = self.node.me();
        let subs: Vec<NodeId> = self
            .remote_subs
            .get(topic)
            .map(|s| s.iter().copied().filter(|n| *n != me).collect())
            .unwrap_or_default();
        let key = Self::key(topic);
        if subs.is_empty() {
            self.node.unregister_predicate(me, &key);
            return;
        }
        let operands: Vec<String> = subs.iter().map(|n| format!("${}", n.0 + 1)).collect();
        let source = format!("MIN({})", operands.join(", "));
        let existing = self.node.stability_frontier(me, &key).is_some();
        let result = if existing {
            self.node.change_predicate(me, &key, &source)
        } else {
            self.node.register_predicate(me, &key, &source)
        };
        debug_assert!(result.is_ok(), "generated predicate must compile: {source}");
    }

    fn apply_record(&mut self, now: SimTime, origin: NodeId, payload: &Bytes) {
        match TopicRecord::decode(payload) {
            Ok(TopicRecord::Publish { topic, body }) => {
                if self.local_subs.contains(&topic) {
                    self.deliveries.push((now, topic.clone(), body.len()));
                }
                self.retained.push((topic, body));
                if self.retained.len() > self.retain_limit {
                    self.retained.remove(0);
                }
            }
            Ok(TopicRecord::Subscribe { topic }) => {
                self.remote_subs
                    .entry(topic.clone())
                    .or_default()
                    .insert(origin);
                self.refresh_predicate(&topic);
            }
            Ok(TopicRecord::Unsubscribe { topic }) => {
                self.remote_subs
                    .entry(topic.clone())
                    .or_default()
                    .remove(&origin);
                self.refresh_predicate(&topic);
            }
            Err(e) => debug_assert!(false, "undecodable topic record from {origin}: {e}"),
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        for action in self.node.take_actions() {
            match action {
                Action::Send { to, msg } => ctx.send(to.0 as usize, msg),
                Action::Deliver {
                    origin, payload, ..
                } => self.apply_record(ctx.now(), origin, &payload),
                Action::Frontier(u) => {
                    if let Some(topic) = u.key.strip_prefix("topic:") {
                        self.frontier_log.push((ctx.now(), topic.to_owned(), u.seq));
                    }
                }
                _ => {}
            }
        }
    }
}

impl Actor for TopicBroker {
    type Msg = WireMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, WireMsg>, from: usize, msg: WireMsg) {
        self.node
            .on_message(ctx.now().as_nanos(), NodeId(from as u16), msg);
        self.drain(ctx);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, WireMsg>, _t: TimerId, _tag: u64) {}
}

/// Build a multi-topic broker deployment over `net`.
///
/// # Errors
///
/// Propagates configuration errors.
///
/// # Panics
///
/// Panics if sizes mismatch.
pub fn build_topic_brokers(
    cfg: &ClusterConfig,
    net: NetTopology,
    seed: u64,
) -> Result<Simulation<TopicBroker>, CoreError> {
    assert_eq!(net.len(), cfg.num_nodes());
    let acks = Arc::new(AckTypeRegistry::new());
    let mut brokers = Vec::with_capacity(cfg.num_nodes());
    for i in 0..cfg.num_nodes() {
        brokers.push(TopicBroker::new(
            cfg.clone(),
            NodeId(i as u16),
            Arc::clone(&acks),
        )?);
    }
    Ok(Simulation::new(net, brokers, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip() {
        for rec in [
            TopicRecord::Publish {
                topic: "stocks".into(),
                body: Bytes::from_static(b"AAPL"),
            },
            TopicRecord::Publish {
                topic: String::new(),
                body: Bytes::new(),
            },
            TopicRecord::Subscribe {
                topic: "news".into(),
            },
            TopicRecord::Unsubscribe {
                topic: "news".into(),
            },
        ] {
            assert_eq!(TopicRecord::decode(&rec.to_bytes()).unwrap(), rec);
        }
    }

    #[test]
    fn malformed_records_rejected() {
        assert!(TopicRecord::decode(&[]).is_err());
        assert!(TopicRecord::decode(&[9, 0, 0]).is_err());
        let bytes = TopicRecord::Subscribe { topic: "t".into() }.to_bytes();
        for cut in 0..bytes.len() {
            assert!(TopicRecord::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.to_vec();
        trailing.push(1);
        assert!(TopicRecord::decode(&trailing).is_err());
    }
}
