//! The §VI-C and §VI-D experiments: Fig. 7 (latency and throughput vs
//! sending rate, Stabilizer vs the Pulsar-like baseline) and Fig. 8
//! (dynamic predicate reconfiguration).

use crate::pulsar::{build_pulsar, GcModel, PulsarLoad};
use crate::stab_broker::{build_brokers, PublishLoad};
use stabilizer_core::ClusterConfig;
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};

/// Which system to run a Fig. 7 point on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The Stabilizer pub/sub prototype.
    Stabilizer,
    /// The Pulsar-like baseline.
    PulsarLike,
}

/// Result for one `(system, rate)` point at one subscriber site.
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// Site index in the CloudLab topology.
    pub site: usize,
    /// Site name.
    pub name: String,
    /// Mean end-to-end latency over delivered messages.
    pub avg_latency: SimDuration,
    /// Throughput in Mbit/s: total payload divided by the span from the
    /// first send to the site's last delivery (§VI-C's definition).
    pub throughput_mbit: f64,
    /// Messages that reached the site.
    pub delivered: u64,
    /// Raw per-message end-to-end latencies (nanoseconds, in sequence
    /// order over delivered messages) — feed these to a telemetry
    /// histogram for distribution plots instead of re-running.
    pub latencies_ns: Vec<u64>,
}

/// CloudLab cluster config matching [`NetTopology::cloudlab_table2`],
/// with a publisher-friendly buffer.
pub fn pubsub_cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az Utah UT1 UT2\n\
         az Wisconsin WI\n\
         az Clemson CLEM\n\
         az Massachusetts MA\n\
         option send_buffer_bytes 2147483647\n",
    )
    .expect("static config parses")
}

/// Run one Fig. 7 point: publish `count` messages of `size` bytes at
/// `rate` msg/s from UT1 and report per-site latency/throughput.
pub fn fig7_point(
    system: System,
    rate: f64,
    count: u64,
    size: usize,
    seed: u64,
) -> Vec<SiteResult> {
    let net = NetTopology::cloudlab_table2();
    let interval = SimDuration::from_secs_f64(1.0 / rate);
    match system {
        System::Stabilizer => {
            let cfg = pubsub_cfg();
            let mut sim = build_brokers(&cfg, net.clone(), seed).expect("cfg valid");
            for i in 1..5 {
                sim.actor_mut(i).subscribe();
            }
            sim.with_ctx(0, |b, ctx| {
                b.start_publishing(
                    ctx,
                    PublishLoad {
                        count,
                        interval,
                        size,
                    },
                )
            });
            sim.run_until_idle();
            collect(
                &net,
                count,
                size,
                |site, seq| sim.actor(0).latency_of(site, seq),
                |site| sim.actor(site).deliveries.iter().map(|(t, _)| *t).max(),
            )
        }
        System::PulsarLike => {
            let mut sim = build_pulsar(net.clone(), GcModel::default(), seed);
            sim.with_ctx(0, |b, ctx| {
                b.start_publishing(
                    ctx,
                    PulsarLoad {
                        count,
                        interval,
                        size,
                    },
                )
            });
            sim.run_until_idle();
            collect(
                &net,
                count,
                size,
                |site, seq| sim.actor(0).latency_of(site, seq),
                |site| sim.actor(site).deliveries.iter().map(|(t, _)| *t).max(),
            )
        }
    }
}

fn collect(
    net: &NetTopology,
    count: u64,
    size: usize,
    latency_of: impl Fn(usize, u64) -> Option<SimDuration>,
    last_delivery: impl Fn(usize) -> Option<SimTime>,
) -> Vec<SiteResult> {
    let mut out = Vec::new();
    for site in 1..net.len() {
        let mut sum_ns = 0u128;
        let mut n = 0u64;
        let mut latencies_ns = Vec::new();
        for seq in 1..=count {
            if let Some(lat) = latency_of(site, seq) {
                sum_ns += lat.as_nanos() as u128;
                latencies_ns.push(lat.as_nanos());
                n += 1;
            }
        }
        let avg = if n > 0 {
            SimDuration::from_nanos((sum_ns / n as u128) as u64)
        } else {
            SimDuration::ZERO
        };
        let span = last_delivery(site)
            .map(|t| t.since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO);
        let bits = (count * size as u64 * 8) as f64;
        let throughput = if span > SimDuration::ZERO {
            bits / 1e6 / span.as_secs_f64()
        } else {
            0.0
        };
        out.push(SiteResult {
            site,
            name: net.name(site).to_owned(),
            avg_latency: avg,
            throughput_mbit: throughput,
            delivered: n,
            latencies_ns,
        });
    }
    out
}

/// One Fig. 8 series point: per-second average end-to-end latency of the
/// tracked predicate.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Point {
    /// Second since the run started.
    pub second: u64,
    /// Mean latency of messages sent in that second.
    pub avg_latency: SimDuration,
}

/// Which Fig. 8 configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig8Mode {
    /// Static `all sites` predicate.
    AllSites,
    /// Static `three sites` predicate.
    ThreeSites,
    /// Flip between the two every five seconds (`change_predicate`).
    Changing,
}

const ALL_SITES: &str = "MIN($ALLWNODES-$MYWNODE)";
const THREE_SITES: &str = "KTH_MAX(3, $ALLWNODES-$MYWNODE)";

/// Run the Fig. 8 reliable-broadcast experiment: 1600 × 8 KiB messages at
/// 80 msg/s from UT1, latency measured against the chosen predicate.
pub fn fig8_run(mode: Fig8Mode, seed: u64) -> Vec<Fig8Point> {
    const COUNT: u64 = 1600;
    const RATE: f64 = 80.0;
    const SIZE: usize = 8192;
    let cfg = pubsub_cfg();
    let net = NetTopology::cloudlab_table2();
    let mut sim = build_brokers(&cfg, net, seed).expect("cfg valid");
    for i in 1..5 {
        sim.actor_mut(i).subscribe();
    }
    let initial = match mode {
        Fig8Mode::ThreeSites => THREE_SITES,
        _ => ALL_SITES,
    };
    sim.with_ctx(0, |b, ctx| b.set_predicate(ctx, "track", initial, false))
        .unwrap();
    sim.with_ctx(0, |b, ctx| {
        b.start_publishing(
            ctx,
            PublishLoad {
                count: COUNT,
                interval: SimDuration::from_secs_f64(1.0 / RATE),
                size: SIZE,
            },
        )
    });

    // Drive the run second by second, flipping the predicate every 5 s in
    // Changing mode (the simulated client subscribing/unsubscribing on
    // the slowest site, Clemson).
    let total_secs = (COUNT as f64 / RATE).ceil() as u64;
    let mut use_all = true;
    for sec in 0..=total_secs {
        if mode == Fig8Mode::Changing && sec > 0 && sec % 5 == 0 {
            use_all = !use_all;
            let src = if use_all { ALL_SITES } else { THREE_SITES };
            sim.with_ctx(0, |b, ctx| b.set_predicate(ctx, "track", src, true))
                .unwrap();
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(sec + 1));
    }
    sim.run_until_idle();

    // Latency of each message against the tracked predicate: first
    // frontier-log entry (key "track") covering its seq.
    let broker = sim.actor(0);
    let mut reach: Vec<Option<SimTime>> = vec![None; COUNT as usize];
    let mut covered = 0usize;
    for (t, u) in broker_frontier_log(broker) {
        let upto = (u as usize).min(COUNT as usize);
        while covered < upto {
            reach[covered] = Some(t);
            covered += 1;
        }
    }

    let mut per_second: Vec<(u128, u64)> = vec![(0, 0); total_secs as usize + 2];
    for (i, sent) in broker.send_times.iter().enumerate().take(COUNT as usize) {
        if let Some(Some(done)) = reach.get(i) {
            let sec = sent.as_secs_f64() as u64;
            let lat = done.since(*sent);
            per_second[sec as usize].0 += lat.as_nanos() as u128;
            per_second[sec as usize].1 += 1;
        }
    }
    per_second
        .into_iter()
        .enumerate()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(second, (sum, n))| Fig8Point {
            second: second as u64,
            avg_latency: SimDuration::from_nanos((sum / n as u128) as u64),
        })
        .collect()
}

/// Timestamped `(time, frontier)` entries of the "track" predicate.
/// NOTE: generation changes may move the frontier backwards; the Fig. 8
/// gap is handled by only filling *new* sequence numbers (monotone
/// coverage), per the paper's "the user should be responsible for
/// handling such a gap".
fn broker_frontier_log(broker: &crate::stab_broker::StabBroker) -> Vec<(SimTime, u64)> {
    broker
        .frontier_log
        .iter()
        .filter(|(_, key, _)| key == "track")
        .map(|(t, _, s)| (*t, *s))
        .collect()
}
