//! The canonical event trace: an [`AppHooks`] observer appends every
//! protocol upcall, the harness appends every fault application and
//! workload action, and the result hashes to a single `u64` that must be
//! byte-identical across runs of the same `(plan, workload, seed)`.

use bytes::Bytes;
use stabilizer_core::sim_driver::AppHooks;
use stabilizer_core::{FrontierUpdate, NodeId, SeqNo, WaitToken};
use stabilizer_netsim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// One observed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A payload delivery upcall.
    Deliver {
        /// Stream origin.
        origin: u16,
        /// Sequence number.
        seq: SeqNo,
        /// Payload length (contents are elided; length feeds the hash).
        len: usize,
    },
    /// A frontier advance upcall.
    Frontier {
        /// Stream whose frontier moved.
        stream: u16,
        /// Predicate key.
        key: String,
        /// New frontier.
        seq: SeqNo,
        /// Predicate generation.
        generation: u32,
    },
    /// A completed `waitfor`.
    WaitDone {
        /// The wait token.
        token: u64,
    },
    /// A suspicion upcall.
    Suspected {
        /// The suspect.
        peer: u16,
    },
    /// A §III-E out-of-band stream fast-forward (state transfer).
    CatchUp {
        /// The fast-forwarded stream.
        stream: u16,
        /// Sequence delivery resumes after.
        seq: SeqNo,
    },
    /// A fault operation or workload action applied by the harness.
    Harness {
        /// Human-readable description (stable across runs).
        what: String,
    },
}

/// A trace event with its virtual time and observing node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time in nanoseconds.
    pub at_nanos: u64,
    /// Observing node (or the acting node, for harness events).
    pub node: u16,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The append-only event trace of one run.
#[derive(Debug, Default)]
pub struct EventTrace {
    /// Events in observation order (deterministic per seed).
    pub events: Vec<TraceEvent>,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

impl EventTrace {
    /// FNV-1a over a stable encoding of every event. Two runs of the
    /// same scenario must produce equal hashes; any divergence means
    /// nondeterminism leaked into the stack.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for ev in &self.events {
            fnv(&mut h, &ev.at_nanos.to_le_bytes());
            fnv(&mut h, &ev.node.to_le_bytes());
            match &ev.kind {
                TraceEventKind::Deliver { origin, seq, len } => {
                    fnv(&mut h, b"D");
                    fnv(&mut h, &origin.to_le_bytes());
                    fnv(&mut h, &seq.to_le_bytes());
                    fnv(&mut h, &(*len as u64).to_le_bytes());
                }
                TraceEventKind::Frontier {
                    stream,
                    key,
                    seq,
                    generation,
                } => {
                    fnv(&mut h, b"F");
                    fnv(&mut h, &stream.to_le_bytes());
                    fnv(&mut h, key.as_bytes());
                    fnv(&mut h, &seq.to_le_bytes());
                    fnv(&mut h, &generation.to_le_bytes());
                }
                TraceEventKind::WaitDone { token } => {
                    fnv(&mut h, b"W");
                    fnv(&mut h, &token.to_le_bytes());
                }
                TraceEventKind::Suspected { peer } => {
                    fnv(&mut h, b"S");
                    fnv(&mut h, &peer.to_le_bytes());
                }
                TraceEventKind::CatchUp { stream, seq } => {
                    fnv(&mut h, b"C");
                    fnv(&mut h, &stream.to_le_bytes());
                    fnv(&mut h, &seq.to_le_bytes());
                }
                TraceEventKind::Harness { what } => {
                    fnv(&mut h, b"H");
                    fnv(&mut h, what.as_bytes());
                }
            }
        }
        h
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Shared handle: every node's observer and the harness append to one
/// trace. (`Rc`: the simulation is single-threaded by construction.)
pub type SharedTrace = Rc<RefCell<EventTrace>>;

/// Create an empty shared trace.
pub fn shared_trace() -> SharedTrace {
    Rc::new(RefCell::new(EventTrace::default()))
}

/// The [`AppHooks`] implementation that records every upcall into the
/// shared trace. Attach one per node via `build_cluster_with_hooks`.
/// Optionally fans each upcall out to a telemetry
/// [`MetricsObserver`](stabilizer_telemetry::MetricsObserver) so the
/// same simulated run also yields latency histograms.
pub struct ChaosObserver {
    node: u16,
    trace: SharedTrace,
    metrics: Option<stabilizer_telemetry::MetricsObserver>,
}

impl ChaosObserver {
    /// Observer for node `node` appending into `trace`.
    pub fn new(node: u16, trace: SharedTrace) -> Self {
        ChaosObserver {
            node,
            trace,
            metrics: None,
        }
    }

    /// Also forward every upcall to `metrics` (a telemetry hub's
    /// per-node observer), when given.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Option<stabilizer_telemetry::MetricsObserver>) -> Self {
        self.metrics = metrics;
        self
    }
}

impl AppHooks for ChaosObserver {
    fn on_deliver(&mut self, now: SimTime, origin: NodeId, seq: SeqNo, payload: &Bytes) {
        self.trace.borrow_mut().events.push(TraceEvent {
            at_nanos: now.as_nanos(),
            node: self.node,
            kind: TraceEventKind::Deliver {
                origin: origin.0,
                seq,
                len: payload.len(),
            },
        });
        if let Some(m) = &mut self.metrics {
            AppHooks::on_deliver(m, now, origin, seq, payload);
        }
    }

    fn on_frontier(&mut self, now: SimTime, update: &FrontierUpdate) {
        self.trace.borrow_mut().events.push(TraceEvent {
            at_nanos: now.as_nanos(),
            node: self.node,
            kind: TraceEventKind::Frontier {
                stream: update.stream.0,
                key: update.key.clone(),
                seq: update.seq,
                generation: update.generation,
            },
        });
        if let Some(m) = &mut self.metrics {
            AppHooks::on_frontier(m, now, update);
        }
    }

    fn on_wait_done(&mut self, now: SimTime, token: WaitToken) {
        self.trace.borrow_mut().events.push(TraceEvent {
            at_nanos: now.as_nanos(),
            node: self.node,
            kind: TraceEventKind::WaitDone { token },
        });
        if let Some(m) = &mut self.metrics {
            AppHooks::on_wait_done(m, now, token);
        }
    }

    fn on_suspected(&mut self, now: SimTime, node: NodeId) {
        self.trace.borrow_mut().events.push(TraceEvent {
            at_nanos: now.as_nanos(),
            node: self.node,
            kind: TraceEventKind::Suspected { peer: node.0 },
        });
        if let Some(m) = &mut self.metrics {
            AppHooks::on_suspected(m, now, node);
        }
    }

    fn on_catch_up(&mut self, now: SimTime, stream: NodeId, seq: SeqNo) {
        self.trace.borrow_mut().events.push(TraceEvent {
            at_nanos: now.as_nanos(),
            node: self.node,
            kind: TraceEventKind::CatchUp {
                stream: stream.0,
                seq,
            },
        });
        if let Some(m) = &mut self.metrics {
            AppHooks::on_catch_up(m, now, stream, seq);
        }
    }

    // Transfer-chunk and join events feed the telemetry trace ring and
    // counters only: they are NOT part of the canonical event trace, so
    // pinned per-seed trace hashes from earlier releases stay valid.
    fn on_transfer_chunk(
        &mut self,
        now: SimTime,
        to: NodeId,
        stream: NodeId,
        seq: SeqNo,
        len: usize,
        done: bool,
    ) {
        if let Some(m) = &mut self.metrics {
            AppHooks::on_transfer_chunk(m, now, to, stream, seq, len, done);
        }
    }

    fn on_join(&mut self, now: SimTime, streams: usize) {
        if let Some(m) = &mut self.metrics {
            AppHooks::on_join(m, now, streams);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_order_and_content_sensitive() {
        let mk = |seq| TraceEvent {
            at_nanos: 5,
            node: 1,
            kind: TraceEventKind::Deliver {
                origin: 0,
                seq,
                len: 10,
            },
        };
        let a = EventTrace {
            events: vec![mk(1), mk(2)],
        };
        let b = EventTrace {
            events: vec![mk(2), mk(1)],
        };
        let c = EventTrace {
            events: vec![mk(1), mk(2)],
        };
        assert_eq!(a.hash(), c.hash());
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), EventTrace::default().hash());
    }
}
