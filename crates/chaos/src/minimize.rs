//! Greedy fault-plan minimization.
//!
//! Given a failing plan and a "does it still fail?" oracle (typically
//! [`Scenario::run_with_plan`] checked for the same violation), remove
//! fault events one at a time, keeping each removal that preserves the
//! failure, until no single event can be removed — a 1-minimal core.
//! Because the harness is deterministic, the oracle is too, so the
//! minimization itself is reproducible.
//!
//! [`Scenario::run_with_plan`]: crate::scenario::Scenario::run_with_plan

use crate::plan::FaultPlan;

/// Shrink `plan` to a 1-minimal still-failing core under `still_fails`.
///
/// The oracle is called O(k²) times for a k-event plan in the worst
/// case; chaos plans are ≤ 5 events, so this is at most a few dozen
/// replays.
pub fn minimize_plan(
    plan: &FaultPlan,
    mut still_fails: impl FnMut(&FaultPlan) -> bool,
) -> FaultPlan {
    let mut current = plan.clone();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < current.events.len() {
            let mut candidate = current.clone();
            candidate.events.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                shrunk = true;
                // Do not advance: the event now at `i` is untried.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, FaultEvent};
    use stabilizer_netsim::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // The "bug" needs the node-3 crash; everything else is noise.
        let culprit = FaultEvent {
            at: ms(100),
            fault: Fault::CrashRestart {
                node: 3,
                down_for: ms(200),
            },
        };
        let noise = |at: u64, node: usize| FaultEvent {
            at: ms(at),
            fault: Fault::DelaySkew {
                from: node,
                to: (node + 1) % 5,
                extra: ms(30),
                clear_after: ms(100),
            },
        };
        let plan = FaultPlan {
            events: vec![noise(10, 0), culprit.clone(), noise(50, 1), noise(90, 2)],
        };
        let fails = |p: &FaultPlan| {
            p.events
                .iter()
                .any(|e| matches!(e.fault, Fault::CrashRestart { node: 3, .. }))
        };
        let minimal = minimize_plan(&plan, fails);
        assert_eq!(minimal.events, vec![culprit]);
    }

    #[test]
    fn needs_two_events_keeps_both() {
        // Failure requires *both* the partition and the crash.
        let a = FaultEvent {
            at: ms(10),
            fault: Fault::Partition {
                side: vec![0],
                heal_after: ms(100),
            },
        };
        let b = FaultEvent {
            at: ms(200),
            fault: Fault::CrashRestart {
                node: 1,
                down_for: ms(100),
            },
        };
        let noise = FaultEvent {
            at: ms(300),
            fault: Fault::AsymmetricLoss {
                from: 0,
                to: 1,
                probability: 0.2,
                clear_after: ms(50),
            },
        };
        let plan = FaultPlan {
            events: vec![a.clone(), noise, b.clone()],
        };
        let fails = |p: &FaultPlan| {
            let has_partition = p
                .events
                .iter()
                .any(|e| matches!(e.fault, Fault::Partition { .. }));
            let has_crash = p
                .events
                .iter()
                .any(|e| matches!(e.fault, Fault::CrashRestart { .. }));
            has_partition && has_crash
        };
        let minimal = minimize_plan(&plan, fails);
        assert_eq!(minimal.events, vec![a, b]);
    }

    #[test]
    fn oracle_call_budget_is_small() {
        let noise = |at: u64| FaultEvent {
            at: ms(at),
            fault: Fault::DelaySkew {
                from: 0,
                to: 1,
                extra: ms(30),
                clear_after: ms(100),
            },
        };
        let plan = FaultPlan {
            events: (0..5).map(|i| noise(10 + i * 10)).collect(),
        };
        let mut calls = 0;
        let _ = minimize_plan(&plan, |_| {
            calls += 1;
            true // everything fails: shrinks to empty
        });
        assert!(calls <= 25, "oracle called {calls} times for 5 events");
    }
}
