//! The chaos harness: runs a simulated Stabilizer cluster while
//! executing a compiled [`FaultPlan`] and a timed workload, checking
//! every invariant after every simulator step.
//!
//! The run is fully determined by `(config, topology, workload, plan,
//! seed)`: faults are applied at exact virtual times interleaved with
//! the event loop (never "when convenient"), the workload is a sorted
//! schedule, and all randomness comes from the simulator's seeded RNG.

use crate::invariants::{ChaosObservable, InvariantChecker, InvariantViolation, NodeView};
use crate::plan::{FaultPlan, Op, PlanError, TimedOp};
use crate::trace::{shared_trace, ChaosObserver, SharedTrace, TraceEvent, TraceEventKind};
use bytes::Bytes;
use stabilizer_core::sim_driver::{build_cluster_with_hooks, SimNode};
use stabilizer_core::{ClusterConfig, CoreError, Snapshot, StabilizerNode};
use stabilizer_dsl::{NodeId, SeqNo, RECEIVED};
use stabilizer_netsim::{Actor, NetTopology, SimDuration, SimTime, Simulation};
use stabilizer_telemetry::Telemetry;
use std::sync::Arc;

/// Trace `node` value for cluster-wide harness actions.
const HARNESS_NODE: u16 = u16::MAX;

/// One timed workload action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkItem {
    /// `node` publishes a `len`-byte payload on its stream.
    Publish {
        /// Publishing node.
        node: usize,
        /// Payload size.
        len: usize,
    },
    /// `node` swaps the predicate under `key` for `stream` (§III-D
    /// `change_predicate`; bumps the predicate generation).
    ChangePredicate {
        /// Acting node.
        node: usize,
        /// Stream whose predicate changes.
        stream: usize,
        /// Predicate key.
        key: String,
        /// New predicate source.
        source: String,
    },
    /// `node` blocks a `waitfor` until `stream`'s frontier under `key`
    /// reaches `seq`.
    WaitFor {
        /// Waiting node.
        node: usize,
        /// Stream to wait on.
        stream: usize,
        /// Predicate key.
        key: String,
        /// Target sequence number.
        seq: SeqNo,
    },
}

/// A workload action scheduled at a virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedWork {
    /// When to act, relative to the run's start.
    pub at: SimDuration,
    /// What to do.
    pub item: WorkItem,
}

/// Setup failure (before any event runs).
#[derive(Debug)]
pub enum ChaosError {
    /// The fault plan is structurally invalid.
    Plan(PlanError),
    /// Cluster construction failed (e.g. a predicate didn't compile).
    Core(CoreError),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Plan(e) => write!(f, "{e}"),
            ChaosError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<PlanError> for ChaosError {
    fn from(e: PlanError) -> Self {
        ChaosError::Plan(e)
    }
}

impl From<CoreError> for ChaosError {
    fn from(e: CoreError) -> Self {
        ChaosError::Core(e)
    }
}

/// Summary of a clean (violation-free) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// FNV-1a hash of the full event trace — the determinism fingerprint.
    pub trace_hash: u64,
    /// Number of trace events.
    pub trace_events: usize,
    /// Simulator steps executed.
    pub steps: u64,
    /// Messages dropped by cut links / injected loss.
    pub dropped: u64,
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
}

enum ScheduledKind {
    Fault(Op),
    Work(WorkItem),
}

struct Scheduled {
    at: SimTime,
    kind: ScheduledKind,
}

/// The harness itself. Build with [`ChaosHarness::new`], run with
/// [`ChaosHarness::run`], then inspect the cluster through
/// [`ChaosHarness::sim`].
pub struct ChaosHarness {
    sim: Simulation<SimNode<ChaosObserver>>,
    cfg: ClusterConfig,
    trace: SharedTrace,
    checker: InvariantChecker,
    schedule: Vec<Scheduled>,
    next_action: usize,
    crashed: Vec<Option<Snapshot>>,
    /// Nodes that have not joined the cluster yet ([`Fault::Join`]):
    /// their links stay down and their workload is skipped until the
    /// join op boots them fresh.
    absent: Vec<bool>,
    /// Desired per-link state from partition faults, independent of
    /// crashes. The effective link `a -> b` is up iff `desired_up[a*n+b]`
    /// AND neither endpoint is crashed — so a partition healing during a
    /// crash window does not resurrect the crashed node's links, and a
    /// restart does not punch through a still-active partition.
    desired_up: Vec<bool>,
    /// Desired per-node timer-cadence multiplier from clock-skew faults.
    /// Restart and join rebuild the actor, so the harness re-applies the
    /// active skew — a reboot does not reset a node's broken clock.
    timer_scale: Vec<f64>,
    steps: u64,
    n: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl ChaosHarness {
    /// Build the cluster, compile the plan, and merge it with the
    /// workload into one deterministic schedule.
    ///
    /// # Errors
    ///
    /// Fails on an invalid plan or a config whose predicates don't
    /// compile.
    pub fn new(
        cfg: &ClusterConfig,
        net: NetTopology,
        seed: u64,
        plan: &FaultPlan,
        workload: Vec<TimedWork>,
    ) -> Result<Self, ChaosError> {
        Self::new_with_telemetry(cfg, net, seed, plan, workload, None)
    }

    /// [`ChaosHarness::new`] with an optional telemetry hub: every
    /// node's upcalls additionally feed a
    /// [`MetricsObserver`](stabilizer_telemetry::MetricsObserver), and
    /// publishes are stamped so the hub can compute publish→deliver and
    /// publish→stable latency histograms. Use a hub built with
    /// [`Telemetry::new_sim`] so timestamps stay deterministic.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ChaosHarness::new`].
    pub fn new_with_telemetry(
        cfg: &ClusterConfig,
        net: NetTopology,
        seed: u64,
        plan: &FaultPlan,
        workload: Vec<TimedWork>,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self, ChaosError> {
        let n = cfg.num_nodes();
        let ops = plan.compile(n)?;
        if let Some(t) = &telemetry {
            t.record_placement(cfg.placement());
        }
        let trace = shared_trace();
        let hook_trace = trace.clone();
        let hook_telemetry = telemetry.clone();
        let mut sim = build_cluster_with_hooks(cfg, net, seed, |i| {
            ChaosObserver::new(i as u16, hook_trace.clone()).with_metrics(
                hook_telemetry
                    .as_ref()
                    .map(|t| t.observer(NodeId(i as u16))),
            )
        })?;
        // Journal recorder writes from the very first step so the
        // invariant checker can examine only dirty cells instead of
        // rescanning every ACK table after every event.
        for i in 0..n {
            sim.actor_mut(i).inner_mut().enable_ack_journal();
        }
        if let Some(t) = &telemetry {
            // f* per key across every vantage in the cluster: the
            // weakest vantage bounds the deployment, so record the min.
            let mut min_tol = std::collections::BTreeMap::new();
            for i in 0..n {
                for (_stream, key, tol) in sim.actor(i).inner().predicate_tolerances() {
                    let e = min_tol.entry(key.to_owned()).or_insert(tol);
                    *e = (*e).min(tol);
                }
            }
            for (key, tol) in min_tol {
                t.record_predicate_tolerance(&key, tol);
            }
        }
        let types = sim.actor(0).inner().recorder().num_types();
        let mut schedule: Vec<Scheduled> = ops
            .into_iter()
            .map(|TimedOp { at, op }| Scheduled {
                at: SimTime::ZERO + at,
                kind: ScheduledKind::Fault(op),
            })
            .chain(
                workload
                    .into_iter()
                    .map(|TimedWork { at, item }| Scheduled {
                        at: SimTime::ZERO + at,
                        kind: ScheduledKind::Work(item),
                    }),
            )
            .collect();
        schedule.sort_by_key(|s| s.at); // stable: faults stay before work on ties
        let mut harness = ChaosHarness {
            sim,
            cfg: cfg.clone(),
            trace,
            checker: InvariantChecker::new(n, types).with_placement(cfg.placement().clone()),
            schedule,
            next_action: 0,
            crashed: vec![None; n],
            absent: vec![false; n],
            desired_up: vec![true; n * n],
            timer_scale: vec![1.0; n],
            steps: 0,
            n,
            telemetry,
        };
        // Late joiners are absent from the first step: cut their links
        // before any event runs (the pre-join actor idles in isolation
        // and is replaced wholesale by the join op).
        for (node, _) in plan.join_nodes() {
            harness.absent[node] = true;
            for (a, b) in FaultPlan::crash_pairs(node, n) {
                harness.sync_link(a, b);
            }
        }
        Ok(harness)
    }

    /// Reconcile the simulator's link `a -> b` with the layered state.
    fn sync_link(&mut self, a: usize, b: usize) {
        let up = self.desired_up[a * self.n + b]
            && self.crashed[a].is_none()
            && self.crashed[b].is_none()
            && !self.absent[a]
            && !self.absent[b];
        self.sim.set_link_up(a, b, up);
    }

    /// The underlying simulation (for post-run assertions).
    pub fn sim(&self) -> &Simulation<SimNode<ChaosObserver>> {
        &self.sim
    }

    /// Mutable access to the underlying simulation, for tests that
    /// probe or drive nodes directly after a run.
    pub fn sim_mut(&mut self) -> &mut Simulation<SimNode<ChaosObserver>> {
        &mut self.sim
    }

    /// The shared event trace.
    pub fn trace(&self) -> &SharedTrace {
        &self.trace
    }

    /// Current trace hash (the determinism fingerprint).
    pub fn trace_hash(&self) -> u64 {
        self.trace.borrow().hash()
    }

    /// Run until `horizon` (virtual time from the start), interleaving
    /// scheduled faults and workload with the event loop and checking
    /// every invariant after every step.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] detected.
    pub fn run(&mut self, horizon: SimDuration) -> Result<RunReport, InvariantViolation> {
        let deadline = SimTime::ZERO + horizon;
        loop {
            let next_action = self
                .schedule
                .get(self.next_action)
                .map(|s| s.at)
                .filter(|&t| t <= deadline);
            let next_event = self.sim.next_event_time().filter(|&t| t <= deadline);
            match (next_action, next_event) {
                // Ties go to the scheduled action: a fault at time T
                // affects every event with time >= T.
                (Some(ta), te) if te.is_none_or(|te| ta <= te) => {
                    self.apply_action()?;
                }
                (_, Some(_)) => {
                    self.sim.step();
                    self.steps += 1;
                    self.check()?;
                }
                // `(Some(_), None)` is consumed by the first arm; the
                // compiler cannot see through the guard.
                _ => break,
            }
        }
        Ok(RunReport {
            trace_hash: self.trace_hash(),
            trace_events: self.trace.borrow().len(),
            steps: self.steps,
            dropped: self.sim.dropped(),
            final_time: self.sim.now(),
        })
    }

    /// Virtual-time twin of
    /// [`ChaosTcpCluster::verify_liveness`](crate::tcp_harness::ChaosTcpCluster::verify_liveness):
    /// call after [`ChaosHarness::run`] has executed the whole schedule
    /// (every fault cleared, every crashed node restarted). Keeps
    /// stepping the simulator — safety-checking every step — until every
    /// published message has stabilized: each node's RECEIVED for every
    /// stream reaches the origin's last published sequence, and each
    /// origin's own frontier under every startup predicate reaches it
    /// too. The wait is bounded by `bound` of *virtual* time past the
    /// current simulator clock, so a stalled cluster fails fast and
    /// deterministically instead of wall-clock hanging.
    ///
    /// # Errors
    ///
    /// A `post-fault-liveness` violation naming the first lagging node,
    /// or any safety violation observed while waiting.
    pub fn verify_liveness(&mut self, bound: SimDuration) -> Result<(), InvariantViolation> {
        let keys: Vec<String> = self.cfg.predicates().map(|(k, _)| k.to_owned()).collect();
        let targets: Vec<SeqNo> = (0..self.n)
            .map(|s| self.sim.actor(s).inner().last_published())
            .collect();
        let until = self.sim.now() + bound;
        loop {
            match self.liveness_gap(&keys, &targets) {
                None => return Ok(()),
                Some((node, detail)) => {
                    // Timers re-arm forever, so the queue only runs dry
                    // past `until`; either way the gap is now a verdict.
                    if self.sim.next_event_time().filter(|&t| t <= until).is_none() {
                        return Err(InvariantViolation {
                            at: self.sim.now(),
                            node,
                            property: "post-fault-liveness",
                            detail: format!("{detail}{}", self.render_blame()),
                        });
                    }
                    self.sim.step();
                    self.steps += 1;
                    self.check()?;
                }
            }
        }
    }

    /// Frontier blame from every node's diagnoser, tagged with the
    /// observing node.
    pub fn stall_reports(&self) -> Vec<(u16, stabilizer_core::StallReport)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for report in self.sim.actor(i).inner().explain_all() {
                out.push((i as u16, report));
            }
        }
        out
    }

    /// One-line blame summary of every stalled frontier, appended to
    /// `post-fault-liveness` violations so the failure names the actual
    /// culprit (node, stream) pairs instead of just the first laggard.
    fn render_blame(&self) -> String {
        let stalled: Vec<String> = self
            .stall_reports()
            .iter()
            .filter(|(_, r)| r.stalled)
            .map(|(i, r)| format!("node {i} sees: {}", r.render_human()))
            .collect();
        if stalled.is_empty() {
            String::new()
        } else {
            format!("; blame: {}", stalled.join(" | "))
        }
    }

    /// The first node still short of full stabilization, if any. Only a
    /// stream's replicas are expected to (or allowed to) receive it, so
    /// the per-node scan is scoped to the replica set.
    fn liveness_gap(&self, keys: &[String], targets: &[SeqNo]) -> Option<(u16, String)> {
        let placement = self.cfg.placement();
        for (s, &target) in targets.iter().enumerate() {
            if target == 0 {
                continue;
            }
            let stream = NodeId(s as u16);
            for i in 0..self.n {
                if i == s || !placement.is_replica(stream, NodeId(i as u16)) {
                    continue;
                }
                let got =
                    self.sim
                        .actor(i)
                        .inner()
                        .recorder()
                        .get(stream, NodeId(i as u16), RECEIVED);
                if got < target {
                    return Some((
                        i as u16,
                        format!(
                            "node {i} has received only {got}/{target} of stream {s} \
                             after faults cleared"
                        ),
                    ));
                }
            }
            for key in keys {
                let frontier = self
                    .sim
                    .actor(s)
                    .inner()
                    .stability_frontier(stream, key)
                    .map(|(seq, _gen)| seq)
                    .unwrap_or(0);
                if frontier < target {
                    return Some((
                        s as u16,
                        format!(
                            "origin {s}'s frontier for predicate {key} is {frontier}/{target} \
                             after faults cleared"
                        ),
                    ));
                }
            }
        }
        None
    }

    fn check(&mut self) -> Result<(), InvariantViolation> {
        let now = self.sim.now();
        // Drain each node's dirty-cell journal first (mutable pass),
        // then build the immutable views the checker consumes.
        let dirty: Vec<Vec<_>> = (0..self.n)
            .map(|i| self.sim.actor_mut(i).inner_mut().take_ack_journal())
            .collect();
        let sim = &self.sim;
        let views: Vec<NodeView<'_>> = (0..self.n)
            .zip(dirty)
            .map(|(i, d)| NodeView {
                dirty: Some(d),
                ..sim.actor(i).chaos_view()
            })
            .collect();
        self.checker.check(now, &views)
    }

    fn note(&mut self, at: SimTime, node: u16, what: String) {
        self.trace.borrow_mut().events.push(TraceEvent {
            at_nanos: at.as_nanos(),
            node,
            kind: TraceEventKind::Harness { what },
        });
    }

    fn apply_action(&mut self) -> Result<(), InvariantViolation> {
        let Scheduled { at, kind } = &self.schedule[self.next_action];
        let at = *at;
        self.next_action += 1;
        // `kind` borrows self.schedule; clone the small payload out so
        // the mutating appliers below can borrow self freely.
        match kind {
            ScheduledKind::Fault(op) => {
                let op = op.clone();
                self.apply_fault(at, op)?;
            }
            ScheduledKind::Work(item) => {
                let item = item.clone();
                self.apply_work(at, item);
            }
        }
        self.check()
    }

    fn apply_fault(&mut self, at: SimTime, op: Op) -> Result<(), InvariantViolation> {
        match op {
            Op::SetLinks { pairs, up } => {
                for &(a, b) in &pairs {
                    self.desired_up[a * self.n + b] = up;
                    self.sync_link(a, b);
                }
                self.note(
                    at,
                    HARNESS_NODE,
                    format!(
                        "links {} ({} pairs)",
                        if up { "up" } else { "down" },
                        pairs.len()
                    ),
                );
            }
            Op::SetLoss {
                from,
                to,
                probability,
            } => {
                self.sim.set_link_loss(from, to, probability);
                self.note(
                    at,
                    from as u16,
                    format!("loss {from}->{to} = {probability}"),
                );
            }
            Op::SetEgress {
                node,
                bytes_per_sec,
            } => {
                self.sim.set_egress_limit(node, bytes_per_sec);
                self.note(
                    at,
                    node as u16,
                    format!("egress {node} = {bytes_per_sec} B/s"),
                );
            }
            Op::SetDelay { from, to, extra } => {
                self.sim.set_link_extra_delay(from, to, extra);
                self.note(at, from as u16, format!("delay {from}->{to} += {extra}"));
            }
            Op::SetTimerScale { node, scale } => {
                self.timer_scale[node] = scale;
                self.sim.actor_mut(node).set_timer_scale(scale);
                self.note(at, node as u16, format!("timer scale {node} = {scale}"));
            }
            Op::SetDupReorder {
                from,
                to,
                dup,
                reorder,
            } => {
                self.sim.set_link_dup_reorder(from, to, dup, reorder);
                self.note(
                    at,
                    from as u16,
                    format!("dup/reorder {from}->{to} = {dup}/{reorder}"),
                );
            }
            Op::ForgeAck { node, ahead } => self.forge_ack(at, node, ahead),
            Op::Crash { node } => self.crash(at, node),
            Op::Restart { node } => self.restart(at, node),
            Op::Join { node } => self.join(at, node),
        }
        Ok(())
    }

    /// Byzantine ACK forgery: the node broadcasts an `AckBatch` claiming
    /// every stream reached `ahead` past what it actually received. Its
    /// own recorder is untouched — receivers' journaled belief writes are
    /// what the `belief-beyond-truth` invariant must flag.
    fn forge_ack(&mut self, at: SimTime, node: usize, ahead: u64) {
        if self.crashed[node].is_some() || self.absent[node] {
            self.note(at, node as u16, "forge_ack skipped (node down)".to_string());
            return;
        }
        let n = self.n;
        self.sim.with_ctx(node, |actor, ctx| {
            let me = NodeId(node as u16);
            let batch: Vec<stabilizer_core::Ack> = (0..n)
                .map(|s| {
                    let stream = NodeId(s as u16);
                    let truth = actor.inner().recorder().get(stream, me, RECEIVED);
                    stabilizer_core::Ack {
                        stream,
                        ty: RECEIVED,
                        seq: truth + ahead,
                    }
                })
                .collect();
            for peer in 0..n {
                if peer != node {
                    ctx.send(peer, stabilizer_core::WireMsg::AckBatch(batch.clone()));
                }
            }
        });
        self.note(at, node as u16, format!("forge_ack {node} ahead {ahead}"));
    }

    /// Crash: persist the control plane through the byte format (what
    /// the integrated storage system would store), then cut the node off.
    /// The old actor keeps consuming in-flight messages as a "zombie",
    /// but nothing it does escapes (links down) or survives (the restart
    /// rebuilds from the snapshot).
    fn crash(&mut self, at: SimTime, node: usize) {
        let snapshot = self.sim.actor(node).inner().snapshot();
        let snapshot =
            Snapshot::from_bytes(&snapshot.to_bytes()).expect("snapshot byte format round-trips");
        self.crashed[node] = Some(snapshot);
        for (a, b) in FaultPlan::crash_pairs(node, self.n) {
            self.sync_link(a, b);
        }
        self.note(at, node as u16, format!("crash {node}"));
    }

    /// Restart: rebuild from the snapshot, fast-forward each remote
    /// stream to the snapshot's RECEIVED cell (§III-E state transfer —
    /// the mirror recovers everything it had durably acknowledged from
    /// the integrated storage system), reconnect, and re-arm timers.
    fn restart(&mut self, at: SimTime, node: usize) {
        let snapshot = self.crashed[node]
            .take()
            .expect("plan validation guarantees restart follows crash");
        let acks = Arc::clone(self.sim.actor(node).inner().ack_types());
        let mut restored =
            StabilizerNode::restore(self.cfg.clone(), NodeId(node as u16), acks, snapshot)
                .expect("predicates compiled at startup recompile on restore");
        for s in 0..self.n {
            if s == node {
                continue;
            }
            let high = restored
                .recorder()
                .get(NodeId(s as u16), NodeId(node as u16), RECEIVED);
            restored.fast_forward_stream(NodeId(s as u16), high);
        }
        let observer = ChaosObserver::new(node as u16, self.trace.clone()).with_metrics(
            self.telemetry
                .as_ref()
                .map(|t| t.observer(NodeId(node as u16))),
        );
        let mut fresh = SimNode::new(restored, observer);
        // A reboot does not fix a skewed clock: the timers the restart
        // arms below must already run at the faulted cadence.
        if self.timer_scale[node] != 1.0 {
            fresh.set_timer_scale(self.timer_scale[node]);
        }
        self.sim.replace_actor(node, fresh);
        // `crashed[node]` was taken above, so sync restores each link to
        // its partition-desired state (not unconditionally up).
        for (a, b) in FaultPlan::crash_pairs(node, self.n) {
            self.sync_link(a, b);
        }
        // `replace_actor` does not re-run the actor lifecycle: dispatch
        // `on_start` manually to re-arm the periodic timers, begin
        // §III-E catch-up (a no-op unless `transfer_millis` is set),
        // and drain the actions the restore + fast-forward queued up.
        self.sim.with_ctx(node, |actor, ctx| {
            actor.on_start(ctx);
            actor.begin_catch_up_at(ctx.now());
            let actions = actor.inner_mut().take_actions();
            actor.process_actions(ctx, actions);
        });
        self.checker
            .note_restart(node, self.sim.actor(node).inner());
        // The fresh machine starts with journaling off; the resync above
        // re-baselined the shadow, so journaling resumes from here.
        self.sim.actor_mut(node).inner_mut().enable_ack_journal();
        self.note(at, node as u16, format!("restart {node}"));
    }

    /// Join: boot a brand-new, history-less node into the running
    /// cluster. The node gets the cluster configuration (the
    /// "distribution" step of a membership change), opens its links, and
    /// starts §III-E catch-up against every live stream.
    fn join(&mut self, at: SimTime, node: usize) {
        let acks = Arc::clone(self.sim.actor(node).inner().ack_types());
        let fresh = StabilizerNode::new(self.cfg.clone(), NodeId(node as u16), acks)
            .expect("predicates compiled at startup recompile on join");
        let observer = ChaosObserver::new(node as u16, self.trace.clone()).with_metrics(
            self.telemetry
                .as_ref()
                .map(|t| t.observer(NodeId(node as u16))),
        );
        let mut booted = SimNode::new(fresh, observer);
        if self.timer_scale[node] != 1.0 {
            booted.set_timer_scale(self.timer_scale[node]);
        }
        self.sim.replace_actor(node, booted);
        self.absent[node] = false;
        for (a, b) in FaultPlan::crash_pairs(node, self.n) {
            self.sync_link(a, b);
        }
        self.sim.with_ctx(node, |actor, ctx| {
            actor.on_start(ctx);
            actor.begin_catch_up_at(ctx.now());
            let actions = actor.inner_mut().take_actions();
            actor.process_actions(ctx, actions);
        });
        self.checker
            .note_restart(node, self.sim.actor(node).inner());
        self.sim.actor_mut(node).inner_mut().enable_ack_journal();
        self.note(at, node as u16, format!("join {node}"));
    }

    fn apply_work(&mut self, at: SimTime, item: WorkItem) {
        let node = match &item {
            WorkItem::Publish { node, .. }
            | WorkItem::ChangePredicate { node, .. }
            | WorkItem::WaitFor { node, .. } => *node,
        };
        if self.crashed[node].is_some() || self.absent[node] {
            self.note(at, node as u16, format!("skipped (node down): {item:?}"));
            return;
        }
        match item {
            WorkItem::Publish { node, len } => {
                let fill = (node as u8).wrapping_add(len as u8);
                let res = self.sim.with_ctx(node, |actor, ctx| {
                    actor.publish_in(ctx, Bytes::from(vec![fill; len]))
                });
                match res {
                    Ok(seq) => {
                        if let Some(t) = &self.telemetry {
                            t.note_publish(at.as_nanos(), NodeId(node as u16), seq, len);
                        }
                        self.note(at, node as u16, format!("publish seq {seq} ({len} B)"));
                    }
                    // Backpressure (buffer full under a partition) is a
                    // legitimate outcome, not a failure.
                    Err(e) => self.note(at, node as u16, format!("publish refused: {e}")),
                }
            }
            WorkItem::ChangePredicate {
                node,
                stream,
                key,
                source,
            } => {
                let res = self.sim.with_ctx(node, |actor, ctx| {
                    actor.change_predicate_in(ctx, NodeId(stream as u16), &key, &source)
                });
                match res {
                    Ok(()) => self.note(
                        at,
                        node as u16,
                        format!("change_predicate stream {stream} key {key} to {source}"),
                    ),
                    Err(e) => self.note(at, node as u16, format!("change_predicate refused: {e}")),
                }
            }
            WorkItem::WaitFor {
                node,
                stream,
                key,
                seq,
            } => {
                let res = self.sim.with_ctx(node, |actor, ctx| {
                    actor.waitfor_in(ctx, NodeId(stream as u16), &key, seq)
                });
                match res {
                    Ok(token) => self.note(
                        at,
                        node as u16,
                        format!("waitfor stream {stream} key {key} seq {seq} -> token {token}"),
                    ),
                    Err(e) => self.note(at, node as u16, format!("waitfor refused: {e}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, FaultEvent};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn small_cfg() -> ClusterConfig {
        ClusterConfig::parse(
            "az A n0 n1\naz B n2\n\
             predicate All MIN($ALLWNODES-$MYWNODE)\n\
             option ack_flush_micros 1000\n\
             option heartbeat_millis 50\n\
             option retransmit_millis 100\n",
        )
        .unwrap()
    }

    fn publishes(node: usize, n: usize, every: u64) -> Vec<TimedWork> {
        (0..n)
            .map(|i| TimedWork {
                at: SimDuration::from_millis(10 + i as u64 * every),
                item: WorkItem::Publish { node, len: 64 },
            })
            .collect()
    }

    #[test]
    fn clean_run_is_violation_free_and_delivers() {
        let cfg = small_cfg();
        let net = NetTopology::full_mesh(3, ms(5), 1e9);
        let mut h =
            ChaosHarness::new(&cfg, net, 7, &FaultPlan::default(), publishes(0, 10, 20)).unwrap();
        let report = h.run(ms(800)).unwrap();
        assert!(report.steps > 0);
        // Every peer delivered the whole stream.
        for i in 1..3 {
            assert_eq!(
                h.sim().actor(i).inner().recorder().get(
                    NodeId(0),
                    NodeId(i as u16),
                    stabilizer_dsl::DELIVERED
                ),
                10
            );
        }
    }

    #[test]
    fn crash_restart_preserves_invariants_and_stream() {
        let cfg = small_cfg();
        let net = NetTopology::full_mesh(3, ms(5), 1e9);
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: ms(100),
                fault: Fault::CrashRestart {
                    node: 2,
                    down_for: ms(150),
                },
            }],
        };
        let mut h = ChaosHarness::new(&cfg, net, 11, &plan, publishes(0, 12, 40)).unwrap();
        let report = h.run(ms(1500)).unwrap();
        assert!(report.dropped > 0, "the crash window should drop traffic");
        // The restarted node caught back up via retransmission.
        assert_eq!(
            h.sim().actor(2).inner().recorder().get(
                NodeId(0),
                NodeId(2),
                stabilizer_dsl::DELIVERED
            ),
            12
        );
    }

    #[test]
    fn identical_runs_have_identical_trace_hashes() {
        let run = || {
            let cfg = small_cfg();
            let net = NetTopology::full_mesh(3, ms(5), 1e9);
            let plan = FaultPlan {
                events: vec![FaultEvent {
                    at: ms(50),
                    fault: Fault::Partition {
                        side: vec![0],
                        heal_after: ms(100),
                    },
                }],
            };
            let mut h = ChaosHarness::new(&cfg, net, 42, &plan, publishes(1, 8, 25)).unwrap();
            h.run(ms(1000)).unwrap().trace_hash
        };
        assert_eq!(run(), run());
    }
}
