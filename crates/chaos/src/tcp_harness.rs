//! The TCP chaos harness: runs a real threaded-transport cluster behind
//! the fault-injecting proxy ([`crate::tcp_proxy`]), drives the same
//! declarative [`FaultPlan`] and workload vocabulary as the simulator
//! harness, and checks the same invariants — over real sockets, real
//! threads, and wall-clock time.
//!
//! The division of labor with [`ChaosHarness`](crate::ChaosHarness):
//! the simulator explores schedules deterministically; this harness
//! validates that the *transport* (framing, reconnect repair,
//! thread/lock discipline) upholds the same safety properties under the
//! same faults. A wall-clock run is not bit-reproducible, but the same
//! `(plan, workload, seed)` must always produce the same **verdict** and
//! converge to the same final protocol state — the replay tests pin
//! that.
//!
//! ## Consistent cuts over threads
//!
//! The checker needs a simultaneous view of all nodes. [`check_now`]
//! locks every node's state machine in index order (safe: each runtime
//! thread only ever takes its own node's lock), then reads each node's
//! observer log. Observers run *under* the node lock
//! ([`stabilizer_core::RuntimeObserver`]), so each per-node view is
//! internally consistent; across nodes, freezing believers before (or
//! after) truth-holders is safe either way because acknowledgments only
//! flow forward from the acking node.
//!
//! ## Crash ordering
//!
//! A TCP crash is a sequence, and its order is what preserves
//! belief ≤ truth: **cut** the node's links (down + epoch-kill every
//! proxied connection), **drain** (wait for the old conn threads to
//! exit, so nothing more escapes), **snapshot** the control plane (now a
//! superset of everything that escaped), then **shut down** the runtime.
//! The dead incarnation's handle is kept as a "zombie" so the checker
//! can keep viewing its frozen state while the node is down. Restart
//! kills the links a second time — discarding any held frames the
//! zombie wrote between snapshot and shutdown — before pointing the
//! proxy at the restarted node's fresh listener.
//!
//! [`check_now`]: ChaosTcpCluster::check_now

use crate::harness::{ChaosError, TimedWork, WorkItem};
use crate::invariants::{InvariantChecker, InvariantViolation, NodeView};
use crate::plan::{FaultPlan, Op, TimedOp};
use crate::tcp_proxy::ProxyNet;
use bytes::Bytes;
use stabilizer_core::{
    shared_runtime_log, AckTypeRegistry, ClusterConfig, CoreError, LogObserver, NodeId,
    ObserverChain, RuntimeObserver, SharedRuntimeLog, Snapshot,
};
use stabilizer_dsl::{SeqNo, RECEIVED};
use stabilizer_netsim::SimTime;
use stabilizer_telemetry::Telemetry;
use stabilizer_transport::{spawn_node_with, NodeHandle, SpawnOptions};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the run loop re-checks invariants between scheduled events.
const CHECK_EVERY: Duration = Duration::from_millis(5);

/// Bound on the crash-time connection drain (exceeding it is a harness
/// bug, not a protocol violation — conn threads poll every few ms).
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// Post-cut settle time letting the zombie's readers finish frames that
/// were already forwarded, so the snapshot covers them.
const SETTLE: Duration = Duration::from_millis(50);

/// Summary of a clean TCP chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpRunReport {
    /// Invariant sweeps performed.
    pub checks: u64,
    /// Frames dropped by injected loss.
    pub dropped: u64,
    /// Wall-clock duration of the run, nanoseconds.
    pub elapsed_nanos: u64,
}

enum ScheduledKind {
    Fault(Op),
    Work(WorkItem),
}

struct Scheduled {
    at: Duration,
    kind: ScheduledKind,
}

/// An N-node threaded-transport cluster behind fault-injecting proxies.
/// Build with [`ChaosTcpCluster::new`], run with
/// [`ChaosTcpCluster::run`], then optionally
/// [`ChaosTcpCluster::verify_liveness`].
pub struct ChaosTcpCluster {
    cfg: ClusterConfig,
    n: usize,
    seed: u64,
    proxy: ProxyNet,
    acks: Arc<AckTypeRegistry>,
    nodes: Vec<NodeHandle>,
    logs: Vec<SharedRuntimeLog>,
    checker: InvariantChecker,
    schedule: Vec<Scheduled>,
    next_action: usize,
    /// Crash snapshots of currently-down nodes.
    snapshots: Vec<Option<Snapshot>>,
    /// Whether each node is currently crashed (its handle is a zombie).
    down: Vec<bool>,
    /// Desired per-link state from partition faults; the effective link
    /// is up iff desired AND neither endpoint is down (same layering as
    /// the simulator harness).
    desired_up: Vec<bool>,
    /// Desired per-node timer-cadence multiplier from clock-skew faults;
    /// re-applied after restart/join (a reboot does not fix a skewed
    /// clock).
    timer_scale: Vec<f64>,
    restarts: u64,
    checks: u64,
    started: Instant,
    telemetry: Option<Arc<Telemetry>>,
    /// Address node 0's runtime serves live telemetry on (re-applied
    /// when node 0 restarts or joins).
    serve: Option<String>,
}

/// Observer for one TCP node: the invariant checker's log, plus the
/// telemetry hub's metrics observer when a hub is attached.
fn make_observer(
    log: &SharedRuntimeLog,
    telemetry: Option<&Arc<Telemetry>>,
    node: NodeId,
) -> Box<dyn RuntimeObserver> {
    match telemetry {
        None => Box::new(LogObserver::new(log.clone())),
        Some(t) => Box::new(
            ObserverChain::new()
                .with(Box::new(LogObserver::new(log.clone())))
                .with(Box::new(t.observer(node))),
        ),
    }
}

impl ChaosTcpCluster {
    /// Boot the cluster behind proxies and merge the compiled plan with
    /// the workload into one wall-clock schedule.
    ///
    /// # Errors
    ///
    /// Fails on an invalid plan, a predicate that does not compile, or a
    /// socket setup error.
    pub fn new(
        cfg: &ClusterConfig,
        seed: u64,
        plan: &FaultPlan,
        workload: Vec<TimedWork>,
    ) -> Result<Self, ChaosError> {
        Self::new_with_telemetry(cfg, seed, plan, workload, None)
    }

    /// [`ChaosTcpCluster::new`] with an optional telemetry hub: every
    /// node gets transport counters plus a
    /// [`MetricsObserver`](stabilizer_telemetry::MetricsObserver) chained
    /// after the invariant log, and publishes are stamped for the
    /// latency histograms. Use a hub built with
    /// [`Telemetry::new_wall_clock`] so all nodes share one epoch.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ChaosTcpCluster::new`].
    pub fn new_with_telemetry(
        cfg: &ClusterConfig,
        seed: u64,
        plan: &FaultPlan,
        workload: Vec<TimedWork>,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self, ChaosError> {
        Self::build(cfg, seed, plan, workload, telemetry, None)
    }

    /// [`ChaosTcpCluster::new_with_telemetry`] that additionally serves
    /// the hub live over HTTP from node 0's runtime (`/metrics`,
    /// `/metrics.json`, `/trace`, `/stall`) while the scenario runs;
    /// read the bound address back with
    /// [`ChaosTcpCluster::serve_addr`]. Node 0 re-binds the endpoint if
    /// it is crash-restarted or joined mid-run.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ChaosTcpCluster::new`], plus a bind
    /// failure on `serve_addr`.
    pub fn new_with_telemetry_serving(
        cfg: &ClusterConfig,
        seed: u64,
        plan: &FaultPlan,
        workload: Vec<TimedWork>,
        telemetry: Arc<Telemetry>,
        serve_addr: &str,
    ) -> Result<Self, ChaosError> {
        Self::build(
            cfg,
            seed,
            plan,
            workload,
            Some(telemetry),
            Some(serve_addr.to_string()),
        )
    }

    fn build(
        cfg: &ClusterConfig,
        seed: u64,
        plan: &FaultPlan,
        workload: Vec<TimedWork>,
        telemetry: Option<Arc<Telemetry>>,
        serve: Option<String>,
    ) -> Result<Self, ChaosError> {
        let n = cfg.num_nodes();
        let ops = plan.compile(n)?;
        let proxy = ProxyNet::new(n, seed)
            .map_err(|e| ChaosError::Core(CoreError::Config(format!("proxy: {e}"))))?;

        // Late joiners ([`crate::Fault::Join`]) are absent from boot:
        // cut their links before any node spawns so the placeholder
        // incarnation idles in isolation until the join op replaces it.
        let mut down = vec![false; n];
        for (node, _) in plan.join_nodes() {
            down[node] = true;
            for (a, b) in FaultPlan::crash_pairs(node, n) {
                proxy.set_link_up(a, b, false);
            }
        }

        // Bind every node's listener and register all destinations
        // before any node spawns, so no proxy connection can observe a
        // missing destination.
        let mut listeners = Vec::with_capacity(n);
        for i in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| ChaosError::Core(CoreError::Config(format!("bind: {e}"))))?;
            let addr = l
                .local_addr()
                .map_err(|e| ChaosError::Core(CoreError::Config(format!("addr: {e}"))))?;
            proxy.set_dest(i, addr);
            listeners.push(l);
        }

        let acks = Arc::new(AckTypeRegistry::new());
        let mut nodes = Vec::with_capacity(n);
        let mut logs = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let log = shared_runtime_log();
            let peer_addrs = (0..n)
                .filter(|j| *j != i)
                .map(|j| (NodeId(j as u16), proxy.proxy_addr(i, j)))
                .collect();
            let node = spawn_node_with(
                cfg.clone(),
                NodeId(i as u16),
                Arc::clone(&acks),
                listener,
                peer_addrs,
                SpawnOptions {
                    observer: Some(make_observer(&log, telemetry.as_ref(), NodeId(i as u16))),
                    snapshot: None,
                    jitter_seed: seed,
                    telemetry: telemetry.clone(),
                    metrics_dump: None,
                    serve_addr: if i == 0 { serve.clone() } else { None },
                },
            )
            .map_err(ChaosError::Core)?;
            // Journal recorder writes from the first frame so the
            // checker's ACK pass examines dirty cells only.
            node.handle().lock_state().enable_ack_journal();
            nodes.push(node.handle());
            logs.push(log);
        }

        let types = nodes[0].lock_state().recorder().num_types();
        let mut schedule: Vec<Scheduled> = ops
            .into_iter()
            .map(|TimedOp { at, op }| Scheduled {
                at: Duration::from_nanos(at.as_nanos()),
                kind: ScheduledKind::Fault(op),
            })
            .chain(
                workload
                    .into_iter()
                    .map(|TimedWork { at, item }| Scheduled {
                        at: Duration::from_nanos(at.as_nanos()),
                        kind: ScheduledKind::Work(item),
                    }),
            )
            .collect();
        schedule.sort_by_key(|s| s.at); // stable: faults stay before work on ties

        Ok(ChaosTcpCluster {
            cfg: cfg.clone(),
            n,
            seed,
            proxy,
            acks,
            nodes,
            logs,
            checker: InvariantChecker::new(n, types).with_placement(cfg.placement().clone()),
            schedule,
            next_action: 0,
            snapshots: vec![None; n],
            down,
            desired_up: vec![true; n * n],
            timer_scale: vec![1.0; n],
            restarts: 0,
            checks: 0,
            started: Instant::now(),
            telemetry,
            serve,
        })
    }

    /// The current handle of node `i` (a frozen zombie while crashed).
    pub fn handle(&self, i: usize) -> NodeHandle {
        self.nodes[i].clone()
    }

    /// Bound address of the live telemetry endpoint (node 0's), when
    /// built with [`ChaosTcpCluster::new_with_telemetry_serving`].
    pub fn serve_addr(&self) -> Option<std::net::SocketAddr> {
        self.nodes[0].serve_addr()
    }

    /// Nanoseconds since the cluster booted, as the checker's timestamp.
    fn now(&self) -> SimTime {
        SimTime(self.started.elapsed().as_nanos() as u64)
    }

    fn sync_link(&self, a: usize, b: usize) {
        let up = self.desired_up[a * self.n + b] && !self.down[a] && !self.down[b];
        self.proxy.set_link_up(a, b, up);
    }

    /// Run one invariant sweep over a consistent cut of all nodes.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_now(&mut self) -> Result<(), InvariantViolation> {
        let now = self.now();
        // Lock order: all node states (index order), then all logs —
        // runtime threads take their own node lock then their own log
        // lock, so this global order cannot deadlock.
        let mut states: Vec<_> = self.nodes.iter().map(|h| h.lock_state()).collect();
        // Drain the dirty-cell journals while the cut is held, before
        // the guards are borrowed immutably by the views.
        let dirty: Vec<Vec<_>> = states.iter_mut().map(|s| s.take_ack_journal()).collect();
        let logs: Vec<_> = self.logs.iter().map(|l| l.lock()).collect();
        let views: Vec<NodeView<'_>> = (0..self.n)
            .zip(dirty)
            .map(|(i, d)| NodeView {
                node: &states[i],
                frontier_log: &logs[i].frontier_log,
                delivery_log: &logs[i].delivery_log,
                suspected_log: &logs[i].suspected_log,
                recovered_log: &logs[i].recovered_log,
                catchup_log: &logs[i].catchup_log,
                records_deliveries: true,
                dirty: Some(d),
            })
            .collect();
        self.checks += 1;
        self.checker.check(now, &views)
    }

    /// Execute the schedule against wall-clock time, checking invariants
    /// after every event and every [`CHECK_EVERY`] in between, until
    /// `horizon` has elapsed *and* the schedule is exhausted.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] detected.
    pub fn run(&mut self, horizon: Duration) -> Result<TcpRunReport, InvariantViolation> {
        self.started = Instant::now();
        loop {
            let elapsed = self.started.elapsed();
            while self
                .schedule
                .get(self.next_action)
                .is_some_and(|s| s.at <= elapsed)
            {
                self.apply_next_action();
                self.check_now()?;
            }
            self.check_now()?;
            if elapsed >= horizon && self.next_action >= self.schedule.len() {
                break;
            }
            std::thread::sleep(CHECK_EVERY);
        }
        Ok(TcpRunReport {
            checks: self.checks,
            dropped: self.proxy.dropped(),
            elapsed_nanos: self.started.elapsed().as_nanos() as u64,
        })
    }

    /// Wall-clock-bounded liveness: once the schedule has run (all
    /// faults cleared, all crashed nodes restarted), every published
    /// message must stabilize within `deadline` — every node's RECEIVED
    /// for each stream reaches the origin's last published sequence, and
    /// each origin's own frontier under every startup predicate reaches
    /// it too. Safety keeps being checked while waiting.
    ///
    /// # Errors
    ///
    /// A `post-fault-liveness` violation naming the first lagging node,
    /// or any safety violation observed while waiting.
    pub fn verify_liveness(&mut self, deadline: Duration) -> Result<(), InvariantViolation> {
        let keys: Vec<String> = self.cfg.predicates().map(|(k, _)| k.to_owned()).collect();
        let targets: Vec<SeqNo> = self.nodes.iter().map(|h| h.last_published()).collect();
        let until = Instant::now() + deadline;
        loop {
            self.check_now()?;
            match self.liveness_gap(&keys, &targets) {
                None => return Ok(()),
                Some((node, detail)) if Instant::now() >= until => {
                    return Err(InvariantViolation {
                        at: self.now(),
                        node,
                        property: "post-fault-liveness",
                        detail: format!("{detail}{}", self.render_blame()),
                    });
                }
                Some(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Frontier blame from every node's diagnoser, tagged with the
    /// observing node (crashed nodes' zombie state included — its view
    /// froze at the crash, which is exactly what stalled).
    pub fn stall_reports(&self) -> Vec<(u16, stabilizer_core::StallReport)> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for report in node.explain_all() {
                out.push((i as u16, report));
            }
        }
        out
    }

    /// One-line blame summary of every stalled frontier, appended to
    /// `post-fault-liveness` violations so the failure names the actual
    /// culprit (node, stream) pairs instead of just the first laggard.
    fn render_blame(&self) -> String {
        let stalled: Vec<String> = self
            .stall_reports()
            .iter()
            .filter(|(_, r)| r.stalled)
            .map(|(i, r)| format!("node {i} sees: {}", r.render_human()))
            .collect();
        if stalled.is_empty() {
            String::new()
        } else {
            format!("; blame: {}", stalled.join(" | "))
        }
    }

    /// The first node still short of full stabilization, if any. Only a
    /// stream's replicas are expected to (or allowed to) receive it, so
    /// the per-node scan is scoped to the replica set.
    fn liveness_gap(&self, keys: &[String], targets: &[SeqNo]) -> Option<(u16, String)> {
        let placement = self.cfg.placement();
        for (s, &target) in targets.iter().enumerate() {
            if target == 0 {
                continue;
            }
            for i in 0..self.n {
                if i == s || !placement.is_replica(NodeId(s as u16), NodeId(i as u16)) {
                    continue;
                }
                let got = self.nodes[i].received_of(NodeId(s as u16));
                if got < target {
                    return Some((
                        i as u16,
                        format!(
                            "node {i} has received only {got}/{target} of stream {s} \
                             after faults cleared"
                        ),
                    ));
                }
            }
            for key in keys {
                let frontier = self.nodes[s]
                    .stability_frontier(NodeId(s as u16), key)
                    .map(|(seq, _gen)| seq)
                    .unwrap_or(0);
                if frontier < target {
                    return Some((
                        s as u16,
                        format!(
                            "origin {s}'s frontier for predicate {key} is {frontier}/{target} \
                             after faults cleared"
                        ),
                    ));
                }
            }
        }
        None
    }

    fn apply_next_action(&mut self) {
        let Scheduled { kind, .. } = &self.schedule[self.next_action];
        self.next_action += 1;
        match kind {
            ScheduledKind::Fault(op) => {
                let op = op.clone();
                self.apply_fault(op);
            }
            ScheduledKind::Work(item) => {
                let item = item.clone();
                self.apply_work(item);
            }
        }
    }

    fn apply_fault(&mut self, op: Op) {
        match op {
            Op::SetLinks { pairs, up } => {
                for &(a, b) in &pairs {
                    self.desired_up[a * self.n + b] = up;
                    self.sync_link(a, b);
                }
            }
            Op::SetLoss {
                from,
                to,
                probability,
            } => self.proxy.set_loss(from, to, probability),
            Op::SetEgress {
                node,
                bytes_per_sec,
            } => self.proxy.set_rate(node, bytes_per_sec),
            Op::SetDelay { from, to, extra } => {
                self.proxy.set_delay(from, to, extra.as_nanos());
            }
            Op::SetTimerScale { node, scale } => {
                self.timer_scale[node] = scale;
                self.nodes[node].set_timer_scale(scale);
            }
            Op::SetDupReorder {
                from,
                to,
                dup,
                reorder,
            } => self.proxy.set_dup_reorder(from, to, dup, reorder),
            Op::ForgeAck { node, ahead } => self.forge_ack(node, ahead),
            Op::Crash { node } => self.crash(node),
            Op::Restart { node } => self.restart(node),
            Op::Join { node } => self.join(node),
        }
    }

    /// Byzantine ACK forgery, mirroring the simulator harness: build the
    /// over-claiming batch from the forger's real recorder state, then
    /// deliver it to every peer as if it had arrived from the forger on
    /// the wire. The forger's own recorder is untouched.
    fn forge_ack(&mut self, node: usize, ahead: u64) {
        if self.down[node] {
            return; // a crashed node cannot forge
        }
        let me = NodeId(node as u16);
        let batch: Vec<stabilizer_core::Ack> = {
            let state = self.nodes[node].lock_state();
            (0..self.n)
                .map(|s| {
                    let stream = NodeId(s as u16);
                    let truth = state.recorder().get(stream, me, RECEIVED);
                    stabilizer_core::Ack {
                        stream,
                        ty: RECEIVED,
                        seq: truth + ahead,
                    }
                })
                .collect()
        };
        for peer in 0..self.n {
            if peer != node && !self.down[peer] {
                self.nodes[peer]
                    .inject_message(me, stabilizer_core::WireMsg::AckBatch(batch.clone()));
            }
        }
    }

    /// Crash `node`: cut, drain, snapshot, shut down — in that order
    /// (see module docs for why the order is load-bearing).
    fn crash(&mut self, node: usize) {
        self.down[node] = true;
        for (a, b) in FaultPlan::crash_pairs(node, self.n) {
            self.sync_link(a, b);
        }
        self.proxy.kill_links_of(node);
        self.proxy.drain_links_of(node, DRAIN_TIMEOUT);
        std::thread::sleep(SETTLE);
        let snapshot = self.nodes[node].snapshot();
        let snapshot =
            Snapshot::from_bytes(&snapshot.to_bytes()).expect("snapshot byte format round-trips");
        self.snapshots[node] = Some(snapshot);
        self.nodes[node].shutdown();
    }

    /// Restart `node` from its crash snapshot on a fresh listener,
    /// repointing the proxy so peers reconnect transparently.
    fn restart(&mut self, node: usize) {
        let snapshot = self.snapshots[node]
            .take()
            .expect("plan validation guarantees restart follows crash");
        // Discard anything the zombie wrote into held connections after
        // the snapshot, and force peers onto fresh (hello-first) streams.
        self.proxy.kill_links_of(node);
        self.proxy.drain_links_of(node, DRAIN_TIMEOUT);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind restart listener");
        self.proxy
            .set_dest(node, listener.local_addr().expect("restart addr"));
        let log = shared_runtime_log();
        let peer_addrs = (0..self.n)
            .filter(|j| *j != node)
            .map(|j| (NodeId(j as u16), self.proxy.proxy_addr(node, j)))
            .collect();
        self.restarts += 1;
        let restarted = spawn_node_with(
            self.cfg.clone(),
            NodeId(node as u16),
            Arc::clone(&self.acks),
            listener,
            peer_addrs,
            SpawnOptions {
                observer: Some(make_observer(
                    &log,
                    self.telemetry.as_ref(),
                    NodeId(node as u16),
                )),
                snapshot: Some(snapshot),
                jitter_seed: self.seed ^ (self.restarts << 48),
                telemetry: self.telemetry.clone(),
                metrics_dump: None,
                serve_addr: if node == 0 { self.serve.clone() } else { None },
            },
        )
        .expect("predicates compiled at startup recompile on restore");
        self.nodes[node] = restarted.handle();
        // A reboot does not fix a skewed clock.
        if self.timer_scale[node] != 1.0 {
            self.nodes[node].set_timer_scale(self.timer_scale[node]);
        }
        self.logs[node] = log;
        // Resync the checker *before* opening the links: once traffic
        // flows, the fresh log gains entries the reset cursors must not
        // double-count against the restored baseline.
        {
            let mut state = self.nodes[node].lock_state();
            self.checker.note_restart(node, &state);
            // The restored machine starts unjournaled; the resync above
            // re-baselined the shadow, so journaling resumes from here.
            state.enable_ack_journal();
        }
        self.down[node] = false;
        for (a, b) in FaultPlan::crash_pairs(node, self.n) {
            self.sync_link(a, b);
        }
    }

    /// Join `node` as a brand-new member: discard the boot-era
    /// placeholder incarnation (a joining node has no history), spawn
    /// fresh with the distributed cluster config and **no snapshot**,
    /// open its links, and start §III-E catch-up on every stream.
    fn join(&mut self, node: usize) {
        self.proxy.kill_links_of(node);
        self.proxy.drain_links_of(node, DRAIN_TIMEOUT);
        self.nodes[node].shutdown();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind join listener");
        self.proxy
            .set_dest(node, listener.local_addr().expect("join addr"));
        let log = shared_runtime_log();
        let peer_addrs = (0..self.n)
            .filter(|j| *j != node)
            .map(|j| (NodeId(j as u16), self.proxy.proxy_addr(node, j)))
            .collect();
        self.restarts += 1;
        let joined = spawn_node_with(
            self.cfg.clone(),
            NodeId(node as u16),
            Arc::clone(&self.acks),
            listener,
            peer_addrs,
            SpawnOptions {
                observer: Some(make_observer(
                    &log,
                    self.telemetry.as_ref(),
                    NodeId(node as u16),
                )),
                snapshot: None,
                jitter_seed: self.seed ^ (self.restarts << 48),
                telemetry: self.telemetry.clone(),
                metrics_dump: None,
                serve_addr: if node == 0 { self.serve.clone() } else { None },
            },
        )
        .expect("predicates compiled at startup recompile on join");
        self.nodes[node] = joined.handle();
        if self.timer_scale[node] != 1.0 {
            self.nodes[node].set_timer_scale(self.timer_scale[node]);
        }
        self.logs[node] = log;
        {
            let mut state = self.nodes[node].lock_state();
            self.checker.note_restart(node, &state);
            state.enable_ack_journal();
        }
        self.down[node] = false;
        for (a, b) in FaultPlan::crash_pairs(node, self.n) {
            self.sync_link(a, b);
        }
        // Fresh spawns don't auto-request catch-up (only the
        // restore-from-snapshot path does): kick it off explicitly.
        self.nodes[node].begin_catch_up();
    }

    fn apply_work(&mut self, item: WorkItem) {
        let node = match &item {
            WorkItem::Publish { node, .. }
            | WorkItem::ChangePredicate { node, .. }
            | WorkItem::WaitFor { node, .. } => *node,
        };
        if self.down[node] {
            return; // a crashed node cannot act
        }
        match item {
            WorkItem::Publish { node, len } => {
                // Same deterministic fill as the simulator harness, so
                // differential runs publish identical payloads.
                let fill = (node as u8).wrapping_add(len as u8);
                // Backpressure (buffer full under a partition) is a
                // legitimate outcome, not a failure.
                let res = self.nodes[node]
                    .publish(Bytes::from(vec![fill; len]), Duration::from_millis(20));
                if let (Ok(seq), Some(t)) = (res, &self.telemetry) {
                    t.note_publish_now(NodeId(node as u16), seq, len);
                }
            }
            WorkItem::ChangePredicate {
                node,
                stream,
                key,
                source,
            } => {
                let _ = self.nodes[node].change_predicate(NodeId(stream as u16), &key, &source);
            }
            WorkItem::WaitFor {
                node,
                stream,
                key,
                seq,
            } => {
                // Non-blocking: completion lands in the wait-done log.
                let _ = self.nodes[node].begin_waitfor(NodeId(stream as u16), &key, seq);
            }
        }
    }

    /// The §III-E catch-up events observed on `node`'s *current*
    /// incarnation: `(stream, seq)` fast-forwards, in order. Non-empty
    /// after a recovery that had to skip past the donor's retained log.
    pub fn catchup_events(&self, node: usize) -> Vec<(u16, SeqNo)> {
        self.logs[node]
            .lock()
            .catchup_log
            .iter()
            .map(|&(_, stream, seq)| (stream.0, seq))
            .collect()
    }

    /// Per-node delivery order `(origin, seq)` as observed by the
    /// upcalls, for differential comparison against the simulator.
    pub fn delivery_order(&self, node: usize) -> Vec<(u16, SeqNo)> {
        self.logs[node]
            .lock()
            .delivery_log
            .iter()
            .map(|&(_, origin, seq, _)| (origin.0, seq))
            .collect()
    }

    /// Every node's RECEIVED cell for every stream:
    /// `table[node][stream]`.
    pub fn received_table(&self) -> Vec<Vec<SeqNo>> {
        (0..self.n)
            .map(|i| {
                let state = self.nodes[i].lock_state();
                let me = state.me();
                (0..self.n)
                    .map(|s| state.recorder().get(NodeId(s as u16), me, RECEIVED))
                    .collect()
            })
            .collect()
    }

    /// A node's current frontier for `(stream, key)`.
    pub fn frontier(&self, node: usize, stream: usize, key: &str) -> Option<SeqNo> {
        self.nodes[node]
            .stability_frontier(NodeId(stream as u16), key)
            .map(|(seq, _gen)| seq)
    }

    /// Stop every node runtime and the proxy mesh.
    pub fn shutdown(&self) {
        for h in &self.nodes {
            h.shutdown();
        }
        self.proxy.shutdown();
    }
}

impl Drop for ChaosTcpCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
