//! Randomized chaos scenarios with seed replay.
//!
//! [`Scenario::from_seed`] expands a single `u64` into everything a run
//! needs — topology, cluster config, timed workload, fault plan, and
//! horizon — using only the seeded RNG, so the same seed always yields
//! the same scenario and (because the harness itself is deterministic)
//! the same event trace. A failing seed is therefore a complete bug
//! report: [`ChaosFailure`] prints the one-line replay command.

use crate::harness::{ChaosHarness, RunReport, TimedWork, WorkItem};
use crate::invariants::InvariantViolation;
use crate::plan::{Fault, FaultEvent, FaultPlan};
use rand::prelude::*;
use stabilizer_core::ClusterConfig;
use stabilizer_netsim::{NetTopology, SimDuration};
use stabilizer_telemetry::Telemetry;
use std::fmt;
use std::sync::Arc;

/// Which network the scenario runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyKind {
    /// The paper's Fig. 2 EC2 deployment (8 nodes, 4 regions).
    Ec2Fig2,
    /// The paper's Table 2 CloudLab deployment (5 nodes).
    CloudlabTable2,
    /// A uniform full mesh.
    FullMesh {
        /// Cluster size.
        n: usize,
        /// One-way propagation delay in milliseconds.
        one_way_ms: u64,
    },
}

impl TopologyKind {
    /// Build the simulator topology.
    pub fn build(&self) -> NetTopology {
        match self {
            TopologyKind::Ec2Fig2 => NetTopology::ec2_fig2(),
            TopologyKind::CloudlabTable2 => NetTopology::cloudlab_table2(),
            TopologyKind::FullMesh { n, one_way_ms } => {
                NetTopology::full_mesh(*n, SimDuration::from_millis(*one_way_ms), 1e9)
            }
        }
    }

    /// Cluster size.
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologyKind::Ec2Fig2 => 8,
            TopologyKind::CloudlabTable2 => 5,
            TopologyKind::FullMesh { n, .. } => *n,
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Ec2Fig2 => write!(f, "ec2_fig2"),
            TopologyKind::CloudlabTable2 => write!(f, "cloudlab_table2"),
            TopologyKind::FullMesh { n, one_way_ms } => {
                write!(f, "full_mesh(n={n}, {one_way_ms}ms)")
            }
        }
    }
}

/// A fully expanded scenario; see [`Scenario::from_seed`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// Network shape.
    pub topology: TopologyKind,
    /// Cluster configuration text (parseable by `ClusterConfig::parse`).
    pub cfg_text: String,
    /// Timed workload.
    pub workload: Vec<TimedWork>,
    /// Fault schedule.
    pub plan: FaultPlan,
    /// Virtual run length.
    pub horizon: SimDuration,
}

/// A scenario run that tripped an invariant. `Display` includes the
/// replay command.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The failing seed.
    pub seed: u64,
    /// The violation the checker reported.
    pub violation: InvariantViolation,
    /// The fault plan that was active (input to the minimizer).
    pub plan: FaultPlan,
    /// Scenario summary for the report.
    pub summary: String,
}

impl ChaosFailure {
    /// The command that reruns exactly this scenario.
    pub fn replay_command(&self) -> String {
        format!(
            "CHAOS_SEED={} cargo test -p stabilizer-chaos --test chaos_sweep \
             replay_from_env -- --nocapture",
            self.seed
        )
    }
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos scenario seed {} failed: {}",
            self.seed, self.violation
        )?;
        writeln!(f, "scenario: {}", self.summary)?;
        writeln!(f, "fault plan: {:?}", self.plan)?;
        write!(f, "replay with: {}", self.replay_command())
    }
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

impl Scenario {
    /// Expand `seed` into a scenario. Pure function of the seed.
    pub fn from_seed(seed: u64) -> Scenario {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topology = match rng.gen_range(0u32..3) {
            0 => TopologyKind::Ec2Fig2,
            1 => TopologyKind::CloudlabTable2,
            _ => TopologyKind::FullMesh {
                // Small meshes shake out protocol corner cases; the
                // 12-16 node draws exercise scale (wide partitions,
                // correlated crashes, aggregated frontiers).
                n: if rng.gen_bool(0.6) {
                    rng.gen_range(4usize..=6)
                } else {
                    rng.gen_range(12usize..=16)
                },
                one_way_ms: rng.gen_range(2u64..=30),
            },
        };
        let n = topology.num_nodes();
        let horizon_ms = rng.gen_range(1500u64..=2500);
        let active_ms = horizon_ms * 3 / 5;

        let cfg_text = Self::gen_config(&mut rng, n, seed);
        let (workload, publishers) = Self::gen_workload(&mut rng, n, active_ms);
        let plan = Self::gen_plan(&mut rng, n, active_ms);
        let _ = publishers;

        Scenario {
            seed,
            topology,
            cfg_text,
            workload,
            plan,
            horizon: ms(horizon_ms),
        }
    }

    /// [`Scenario::from_seed`], then arm a Byzantine ACK forgery on top:
    /// after every benign fault has cleared (the forgery is scheduled
    /// past the original horizon, and the horizon is extended to leave
    /// delivery runway), a randomly drawn node broadcasts ACKs far ahead
    /// of its true receive state. The run is *expected* to fail with the
    /// `belief-beyond-truth` violation
    /// ([`FaultPlan::expected_violation`]); a byzantine scenario that
    /// runs clean means the invariant checker has a hole.
    pub fn from_seed_byzantine(seed: u64) -> Scenario {
        let mut s = Scenario::from_seed(seed);
        // Independent RNG stream: the forger draw must not disturb the
        // benign seed -> scenario mapping above.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB12A_47CE_ACC0_FA3E);
        let n = s.topology.num_nodes();
        let at = s.horizon + ms(300);
        s.horizon = s.horizon + ms(800);
        s.plan.events.push(FaultEvent {
            at,
            fault: Fault::ByzantineAck {
                node: rng.gen_range(0..n),
                // Far beyond anything the bounded workload publishes, so
                // honest progress between forgery and check can never
                // legitimize the claim.
                ahead: 1_000_000,
            },
        });
        s
    }

    fn gen_config(rng: &mut SmallRng, n: usize, seed: u64) -> String {
        let mut cfg = String::new();
        // Contiguous az split into 2..=3 groups (or fewer for tiny n).
        let az_count = rng.gen_range(2usize..=3.min(n));
        let mut boundaries: Vec<usize> = Vec::new();
        while boundaries.len() < az_count - 1 {
            let b = rng.gen_range(1..n);
            if !boundaries.contains(&b) {
                boundaries.push(b);
            }
        }
        boundaries.sort_unstable();
        boundaries.push(n);
        let mut start = 0;
        for (az, &end) in boundaries.iter().enumerate() {
            cfg.push_str(&format!("az AZ{az}"));
            for i in start..end {
                cfg.push_str(&format!(" w{i}"));
            }
            cfg.push('\n');
            start = end;
        }
        // Partial replication: a slice of seeds pins each stream to a
        // small replica set instead of the full mesh, so the sweep
        // exercises placement-scoped routing, acks, and recovery. Two
        // shapes: disjoint 3-groups (replica sets never share a node
        // across groups) and an overlapping ring (adjacent sets share
        // two nodes). Every set keeps >= 3 members so a Byzantine
        // forger always has honest replica peers to detect it.
        //
        // The placement draws come from an independent RNG stream (same
        // pattern as the byzantine overlay) so the seed -> scenario
        // mapping for topology, workload, and faults — which the pinned
        // liveness/blame seeds depend on — is untouched.
        let mut prng = SmallRng::seed_from_u64(seed ^ 0x0123_4567_89AB_CDEF);
        if n >= 5 && prng.gen_bool(0.35) {
            if n >= 6 && prng.gen_bool(0.5) {
                // Disjoint groups of 3; the last group absorbs the
                // remainder (a group of 4 or 5 for n % 3 != 0).
                let groups = n / 3;
                for i in 0..n {
                    let g = (i / 3).min(groups - 1);
                    let start = g * 3;
                    let end = if g == groups - 1 { n } else { start + 3 };
                    cfg.push_str(&format!("replicate w{i}"));
                    for m in start..end {
                        cfg.push_str(&format!(" w{m}"));
                    }
                    cfg.push('\n');
                }
            } else {
                for i in 0..n {
                    cfg.push_str(&format!(
                        "replicate w{i} w{i} w{} w{}\n",
                        (i + 1) % n,
                        (i + 2) % n
                    ));
                }
            }
        }
        // Topology-independent predicates over the full node set; "All"
        // is always present (the workload's change/wait targets). Under
        // a partial placement the core restricts each compiled predicate
        // to the stream's replica set at registration time.
        cfg.push_str("predicate All MIN($ALLWNODES-$MYWNODE)\n");
        if rng.gen_bool(0.6) {
            cfg.push_str("predicate One MAX($ALLWNODES-$MYWNODE)\n");
        }
        if rng.gen_bool(0.6) {
            cfg.push_str("predicate Maj KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)\n");
        }
        cfg.push_str(&format!(
            "option ack_flush_micros {}\n",
            rng.gen_range(1000u64..=4000)
        ));
        cfg.push_str("option heartbeat_millis 50\n");
        cfg.push_str("option failure_timeout_millis 300\n");
        cfg.push_str("option retransmit_millis 100\n");
        // §III-E state transfer is always armed: crash windows longer
        // than the failure timeout evict the suspect from send-buffer
        // retention, and the restarted node must recover through
        // snapshot + retained-log replay. Fixed values (no RNG draws)
        // keep the seed -> scenario mapping for everything else stable.
        cfg.push_str("option retain_log_bytes 1048576\n");
        cfg.push_str("option transfer_millis 40\n");
        cfg.push_str("option transfer_window 16\n");
        if rng.gen_bool(0.3) {
            cfg.push_str("option auto_exclude_suspects true\n");
        }
        cfg
    }

    fn gen_workload(rng: &mut SmallRng, n: usize, active_ms: u64) -> (Vec<TimedWork>, Vec<usize>) {
        let mut publishers = vec![rng.gen_range(0..n)];
        if rng.gen_bool(0.5) {
            let second = rng.gen_range(0..n);
            if second != publishers[0] {
                publishers.push(second);
            }
        }
        let mut workload = Vec::new();
        for &p in &publishers {
            let count = rng.gen_range(6u64..=15);
            for _ in 0..count {
                workload.push(TimedWork {
                    at: ms(rng.gen_range(10..active_ms)),
                    item: WorkItem::Publish {
                        node: p,
                        len: rng.gen_range(32usize..=400),
                    },
                });
            }
            if rng.gen_bool(0.5) {
                // Swap the All predicate mid-stream: generation bump under
                // load, the exact path the frontier-regression invariant
                // guards.
                workload.push(TimedWork {
                    at: ms(rng.gen_range(active_ms / 2..active_ms)),
                    item: WorkItem::ChangePredicate {
                        node: p,
                        stream: p,
                        key: "All".to_string(),
                        source: "MAX($ALLWNODES-$MYWNODE)".to_string(),
                    },
                });
            }
            if rng.gen_bool(0.5) {
                workload.push(TimedWork {
                    at: ms(rng.gen_range(10..active_ms / 2)),
                    item: WorkItem::WaitFor {
                        node: p,
                        stream: p,
                        key: "All".to_string(),
                        seq: rng.gen_range(1..=count),
                    },
                });
            }
        }
        workload.sort_by_key(|w| w.at);
        (workload, publishers)
    }

    fn gen_plan(rng: &mut SmallRng, n: usize, active_ms: u64) -> FaultPlan {
        let mut events = Vec::new();
        let mut crashed_nodes: Vec<usize> = Vec::new();
        let mut joined_nodes: Vec<usize> = Vec::new();
        let count = rng.gen_range(1usize..=5);
        for _ in 0..count {
            let at = ms(rng.gen_range(50..active_ms));
            let fault = match rng.gen_range(0u32..9) {
                0 => {
                    let size = rng.gen_range(1..n);
                    let mut all: Vec<usize> = (0..n).collect();
                    for i in 0..size {
                        let j = rng.gen_range(i..n);
                        all.swap(i, j);
                    }
                    let mut side = all[..size].to_vec();
                    side.sort_unstable();
                    Fault::Partition {
                        side,
                        heal_after: ms(rng.gen_range(100u64..=400)),
                    }
                }
                1 => {
                    let from = rng.gen_range(0..n);
                    let to = (from + rng.gen_range(1..n)) % n;
                    Fault::AsymmetricLoss {
                        from,
                        to,
                        probability: rng.gen_range(0.05f64..0.4),
                        clear_after: ms(rng.gen_range(100u64..=500)),
                    }
                }
                2 => Fault::BandwidthCollapse {
                    node: rng.gen_range(0..n),
                    bytes_per_sec: rng.gen_range(20_000.0f64..200_000.0),
                    restore_after: ms(rng.gen_range(100u64..=400)),
                },
                3 => {
                    let node = rng.gen_range(0..n);
                    if crashed_nodes.contains(&node) || joined_nodes.contains(&node) {
                        // One crash window per node keeps windows trivially
                        // disjoint (and a crash must not precede a join);
                        // substitute a loss burst.
                        Fault::AsymmetricLoss {
                            from: node,
                            to: (node + 1) % n,
                            probability: 0.3,
                            clear_after: ms(200),
                        }
                    } else {
                        crashed_nodes.push(node);
                        Fault::CrashRestart {
                            node,
                            down_for: ms(rng.gen_range(150u64..=400)),
                        }
                    }
                }
                4 => {
                    let from = rng.gen_range(0..n);
                    let to = (from + rng.gen_range(1..n)) % n;
                    Fault::DelaySkew {
                        from,
                        to,
                        extra: ms(rng.gen_range(20u64..=80)),
                        clear_after: ms(rng.gen_range(100u64..=400)),
                    }
                }
                5 => {
                    // Membership change: the node sits out from boot and
                    // joins live, catching up via §III-E transfer. One
                    // join per node, never for a node that also crashes
                    // (the join would have to precede the crash).
                    let node = rng.gen_range(0..n);
                    if joined_nodes.contains(&node) || crashed_nodes.contains(&node) {
                        Fault::AsymmetricLoss {
                            from: node,
                            to: (node + 1) % n,
                            probability: 0.3,
                            clear_after: ms(200),
                        }
                    } else {
                        joined_nodes.push(node);
                        Fault::Join { node }
                    }
                }
                6 => {
                    // Clock skew: one node's timers run fast (factor < 1)
                    // or slow (factor > 1) until the skew clears.
                    let factor = if rng.gen_bool(0.5) {
                        rng.gen_range(0.25f64..0.8)
                    } else {
                        rng.gen_range(1.5f64..4.0)
                    };
                    Fault::ClockSkew {
                        node: rng.gen_range(0..n),
                        factor,
                        clear_after: ms(rng.gen_range(100u64..=400)),
                    }
                }
                7 => {
                    let from = rng.gen_range(0..n);
                    let to = (from + rng.gen_range(1..n)) % n;
                    Fault::DupReorder {
                        from,
                        to,
                        dup_probability: rng.gen_range(0.05f64..0.5),
                        reorder_probability: rng.gen_range(0.05f64..0.5),
                        clear_after: ms(rng.gen_range(100u64..=500)),
                    }
                }
                _ => {
                    // Correlated crash: a batch of nodes goes down within
                    // one window (a zone outage), restarting staggered.
                    // Reuses the one-crash-window-per-node budget.
                    let avail: Vec<usize> = (0..n)
                        .filter(|i| !crashed_nodes.contains(i) && !joined_nodes.contains(i))
                        .collect();
                    // Need >= 2 victims while leaving at least one node up.
                    let max_k = avail.len().min(n - 1).min(3);
                    if max_k < 2 {
                        let from = rng.gen_range(0..n);
                        Fault::AsymmetricLoss {
                            from,
                            to: (from + rng.gen_range(1..n)) % n,
                            probability: 0.3,
                            clear_after: ms(200),
                        }
                    } else {
                        let k = rng.gen_range(2..=max_k);
                        let mut pool = avail;
                        let mut nodes = Vec::with_capacity(k);
                        for _ in 0..k {
                            nodes.push(pool.swap_remove(rng.gen_range(0..pool.len())));
                        }
                        nodes.sort_unstable();
                        crashed_nodes.extend(nodes.iter().copied());
                        Fault::CorrelatedCrash {
                            nodes,
                            spread: ms(rng.gen_range(0u64..=50)),
                            down_for: ms(rng.gen_range(150u64..=300)),
                            stagger: ms(rng.gen_range(0u64..=80)),
                        }
                    }
                }
            };
            events.push(FaultEvent { at, fault });
        }
        FaultPlan { events }
    }

    /// One-line summary for failure reports.
    pub fn summary(&self) -> String {
        format!(
            "topology {} ({} nodes), {} workload items, {} faults, horizon {}",
            self.topology,
            self.topology.num_nodes(),
            self.workload.len(),
            self.plan.events.len(),
            self.horizon
        )
    }

    /// Build and run the scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ChaosFailure`] (with replay command) on any invariant
    /// violation.
    ///
    /// # Panics
    ///
    /// Panics if the generated config or plan is invalid — that would be
    /// a bug in the generator itself, not in the system under test.
    pub fn run(&self) -> Result<RunReport, ChaosFailure> {
        self.run_with_plan(&self.plan)
    }

    /// [`Scenario::run`] with a substituted fault plan (the minimizer
    /// re-runs the same scenario under shrunken plans).
    ///
    /// # Errors
    ///
    /// Returns a [`ChaosFailure`] on any invariant violation.
    ///
    /// # Panics
    ///
    /// Panics if the generated config or the plan is invalid.
    pub fn run_with_plan(&self, plan: &FaultPlan) -> Result<RunReport, ChaosFailure> {
        self.run_instrumented(plan, None)
    }

    /// [`Scenario::run`] feeding an attached telemetry hub: publishes
    /// are stamped and every upcall is mirrored into the hub's metrics
    /// and trace ring, so the run yields stability-latency histograms
    /// alongside the invariant verdict. Build the hub with
    /// [`Telemetry::new_sim`] (or `new_sim_with_trace`) so its
    /// timestamps are the simulator's deterministic virtual clock.
    ///
    /// # Errors
    ///
    /// Returns a [`ChaosFailure`] on any invariant violation.
    ///
    /// # Panics
    ///
    /// Panics if the generated config or plan is invalid.
    pub fn run_with_telemetry(&self, telemetry: Arc<Telemetry>) -> Result<RunReport, ChaosFailure> {
        self.run_instrumented(&self.plan, Some(telemetry))
    }

    fn run_instrumented(
        &self,
        plan: &FaultPlan,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<RunReport, ChaosFailure> {
        let cfg = ClusterConfig::parse(&self.cfg_text).expect("generated config parses");
        let mut harness = ChaosHarness::new_with_telemetry(
            &cfg,
            self.topology.build(),
            self.seed,
            plan,
            self.workload.clone(),
            telemetry,
        )
        .expect("generated scenario is valid");
        harness.run(self.horizon).map_err(|violation| ChaosFailure {
            seed: self.seed,
            violation,
            plan: plan.clone(),
            summary: self.summary(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..50u64 {
            let a = Scenario::from_seed(seed);
            let b = Scenario::from_seed(seed);
            assert_eq!(a.cfg_text, b.cfg_text);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.horizon, b.horizon);
            ClusterConfig::parse(&a.cfg_text).expect("config parses");
            a.plan
                .validate(a.topology.num_nodes())
                .expect("plan validates");
            assert!(!a.workload.is_empty());
        }
    }

    #[test]
    fn generator_draws_the_new_faults_and_large_meshes() {
        let (mut skew, mut dup, mut corr, mut large) = (false, false, false, false);
        for seed in 0..400u64 {
            let s = Scenario::from_seed(seed);
            if matches!(s.topology, TopologyKind::FullMesh { n, .. } if n >= 12) {
                large = true;
            }
            for ev in &s.plan.events {
                match ev.fault {
                    Fault::ClockSkew { .. } => skew = true,
                    Fault::DupReorder { .. } => dup = true,
                    Fault::CorrelatedCrash { .. } => corr = true,
                    _ => {}
                }
            }
        }
        assert!(skew, "no seed in 0..400 drew ClockSkew");
        assert!(dup, "no seed in 0..400 drew DupReorder");
        assert!(corr, "no seed in 0..400 drew CorrelatedCrash");
        assert!(large, "no seed in 0..400 drew a 12-16 node mesh");
    }

    #[test]
    fn generator_draws_partial_placements() {
        let (mut ring, mut disjoint, mut large_partial) = (false, false, false);
        for seed in 0..400u64 {
            let s = Scenario::from_seed(seed);
            if !s.cfg_text.contains("replicate ") {
                continue;
            }
            let cfg = ClusterConfig::parse(&s.cfg_text).expect("placement config parses");
            let p = cfg.placement();
            let n = s.topology.num_nodes();
            assert!(
                !p.is_full_replication(),
                "seed {seed}: replicate lines but full map"
            );
            let sets: Vec<_> = (0..n)
                .map(|i| p.replicas(stabilizer_core::NodeId(i as u16)).to_vec())
                .collect();
            for set in &sets {
                assert!(set.len() >= 3, "seed {seed}: replica set smaller than 3");
            }
            let overlapping = sets.iter().enumerate().any(|(i, a)| {
                sets.iter()
                    .enumerate()
                    .any(|(j, b)| i != j && a != b && a.iter().any(|x| b.contains(x)))
            });
            if overlapping {
                ring = true;
            } else {
                disjoint = true;
            }
            if n >= 12 {
                large_partial = true;
            }
        }
        assert!(ring, "no seed in 0..400 drew an overlapping ring placement");
        assert!(disjoint, "no seed in 0..400 drew disjoint replica groups");
        assert!(
            large_partial,
            "no seed in 0..400 drew a partial placement on a 12-16 node mesh"
        );
    }

    #[test]
    fn byzantine_generation_is_deterministic_and_additive() {
        for seed in 0..50u64 {
            let a = Scenario::from_seed_byzantine(seed);
            let b = Scenario::from_seed_byzantine(seed);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.horizon, b.horizon);
            a.plan
                .validate(a.topology.num_nodes())
                .expect("byzantine plan validates");
            assert_eq!(a.plan.expected_violation(), Some("belief-beyond-truth"));
            // The benign prefix is exactly the benign scenario's plan:
            // the forgery rides on top without disturbing the mapping.
            let benign = Scenario::from_seed(seed);
            let k = benign.plan.events.len();
            assert_eq!(a.plan.events[..k], benign.plan.events[..]);
            assert_eq!(a.plan.events.len(), k + 1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::from_seed(1);
        let b = Scenario::from_seed(2);
        assert!(a.cfg_text != b.cfg_text || a.workload != b.workload || a.plan != b.plan);
    }
}
