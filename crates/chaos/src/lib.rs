//! Deterministic chaos harness for the Stabilizer reproduction.
//!
//! Three pieces, designed to compose with every application crate in
//! the workspace:
//!
//! - **Fault plans** ([`plan`]): declarative schedules of partitions,
//!   asymmetric loss, bandwidth collapse, crash/restart, and
//!   control-plane delay skew, compiled to primitive timed operations.
//! - **Invariant checking** ([`invariants`]): a shadow-state checker
//!   run after *every* simulator step, verifying predicate-independent
//!   safety properties (ACK monotonicity, belief ≤ truth, delivery
//!   prefixes, frontier monotonicity per generation, suspicion
//!   bookkeeping) through the [`AppHooks`]-level observer seam.
//! - **Randomized scenarios with seed replay** ([`scenario`]): a run is
//!   fully determined by `(topology, workload, fault plan, u64 seed)`;
//!   a violation prints a one-line replay command, and the greedy
//!   minimizer ([`minimize`]) shrinks the fault plan to a minimal
//!   still-failing core.
//!
//! The same fault plans and invariant checker also run against the
//! *real* threaded TCP transport: [`tcp_proxy`] routes every inter-node
//! connection through a fault-injecting proxy, and [`tcp_harness`]
//! drives a proxied cluster through a plan plus workload under
//! wall-clock time, closing the gap between simulated and real-socket
//! executions.
//!
//! [`AppHooks`]: stabilizer_core::sim_driver::AppHooks

#![warn(missing_docs)]

pub mod harness;
pub mod invariants;
pub mod minimize;
pub mod plan;
pub mod scenario;
pub mod tcp_harness;
pub mod tcp_proxy;
pub mod trace;

pub use harness::{ChaosError, ChaosHarness, RunReport, TimedWork, WorkItem};
pub use invariants::{ChaosObservable, InvariantChecker, InvariantViolation, NodeView};
pub use minimize::minimize_plan;
pub use plan::{Fault, FaultEvent, FaultPlan, Op, PlanError, TimedOp};
pub use scenario::{ChaosFailure, Scenario, TopologyKind};
pub use tcp_harness::{ChaosTcpCluster, TcpRunReport};
pub use tcp_proxy::ProxyNet;
pub use trace::{shared_trace, ChaosObserver, EventTrace, SharedTrace, TraceEvent, TraceEventKind};
